//! # dftmsn — DFT-MSN cross-layer data delivery (ICDCS 2007 reproduction)
//!
//! Facade crate re-exporting the whole workspace. Most users only need
//! [`prelude`]:
//!
//! ```
//! use dftmsn::prelude::*;
//!
//! let params = ScenarioParams::paper_default().with_duration_secs(200);
//! let report = Simulation::builder(params, ProtocolKind::Opt).seed(1).build().run();
//! assert!(report.delivery_ratio() >= 0.0);
//! ```
//!
//! See the `dftmsn-core` crate documentation for the protocol itself, and
//! `DESIGN.md` / `EXPERIMENTS.md` in the repository root for the paper
//! mapping.

#![forbid(unsafe_code)]

pub use dftmsn_core as core;
pub use dftmsn_metrics as metrics;
pub use dftmsn_mobility as mobility;
pub use dftmsn_radio as radio;
pub use dftmsn_sim as sim;

/// The most commonly used items, re-exported in one place.
pub mod prelude {
    pub use dftmsn_core::behavior::{BehaviorTable, LifetimeTracker, NodeBehavior};
    pub use dftmsn_core::faults::{FaultKind, FaultPlan};
    pub use dftmsn_core::observe::{MetricsRecorder, ObserveRow, ObserveSeries, WorldSnapshot};
    pub use dftmsn_core::params::{ProtocolParams, ScenarioParams};
    pub use dftmsn_core::policy::{ForwardingPolicy, MeetingRate, Policy, PolicySpec, TwoHopRelay};
    pub use dftmsn_core::report::SimReport;
    pub use dftmsn_core::trace::{DropReason, SharedTrace, TeeSink, TraceEvent, TraceSink};
    pub use dftmsn_core::variants::{ProtocolKind, VariantConfig};
    pub use dftmsn_core::world::{
        CkptError, MobilityMode, Resumed, ShardStats, Simulation, SimulationBuilder, CKPT_MAGIC,
    };
    pub use dftmsn_sim::rng::SimRng;
    pub use dftmsn_sim::time::{SimDuration, SimTime};
}
