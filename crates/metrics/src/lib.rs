//! # dftmsn-metrics — measurement substrate for the DFT-MSN reproduction
//!
//! Small, dependency-light building blocks for collecting and reporting
//! simulation results:
//!
//! * [`stats`] — streaming mean/variance/min/max with mergeable state and
//!   normal-approximation confidence intervals;
//! * [`histogram`] — fixed-bucket histograms with approximate quantiles;
//! * [`timeseries`] — monotone `(t, v)` series with step interpolation;
//! * [`table`] — titled result tables rendered as aligned text or CSV,
//!   the output format of every regenerated figure/table;
//! * [`viz`] — terminal sparklines, bar charts and grid heatmaps;
//! * [`json`] — a minimal dependency-free JSON writer for exports.
//!
//! # Examples
//!
//! ```
//! use dftmsn_metrics::stats::RunningStats;
//!
//! let mut delays = RunningStats::new();
//! for d in [120.0, 340.0, 95.0] {
//!     delays.record(d);
//! }
//! println!("mean delay {:.1} ± {:.1}", delays.mean(), delays.ci95_half_width());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod json;
pub mod stats;
pub mod table;
pub mod timeseries;
pub mod viz;

pub use histogram::Histogram;
pub use json::Json;
pub use stats::RunningStats;
pub use table::{Cell, Table};
pub use timeseries::TimeSeries;
pub use viz::{bar_chart, heatmap, sparkline};
