//! Fixed-bucket histograms for delay and queue-occupancy distributions.

use serde::{Deserialize, Serialize};

/// A linear fixed-bucket histogram over `[lo, hi)` with overflow/underflow
/// buckets.
///
/// # Examples
///
/// ```
/// use dftmsn_metrics::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 100.0, 10);
/// h.record(5.0);
/// h.record(15.0);
/// h.record(150.0); // overflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(1), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, the bounds are not finite, or `n == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        assert!(n > 0, "need at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Number of regular buckets.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The `[lo, hi)` half-open range of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.buckets.len(), "bucket {i} out of range");
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Records one observation (NaN counts as overflow, pessimistically).
    pub fn record(&mut self, x: f64) {
        if x.is_nan() || x >= self.hi {
            self.overflow += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let i = (((x - self.lo) / w) as usize).min(self.buckets.len() - 1);
            self.buckets[i] += 1;
        }
    }

    /// Count in regular bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the top of the range (and NaNs).
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations, including under/overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Approximate quantile `q ∈ [0, 1]` by linear interpolation inside the
    /// containing bucket. Under/overflow observations clamp to the range
    /// ends. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = q * total as f64;
        let mut seen = self.underflow as f64;
        if target <= seen {
            return Some(self.lo);
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            let next = seen + c as f64;
            if target <= next && c > 0 {
                let (b_lo, b_hi) = self.bucket_range(i);
                let frac = (target - seen) / c as f64;
                return Some(b_lo + frac * (b_hi - b_lo));
            }
            seen = next;
        }
        Some(self.hi)
    }

    /// The full state `(lo, hi, buckets, underflow, overflow)`, for
    /// checkpointing.
    #[must_use]
    pub fn raw_parts(&self) -> (f64, f64, &[u64], u64, u64) {
        (
            self.lo,
            self.hi,
            &self.buckets,
            self.underflow,
            self.overflow,
        )
    }

    /// Reconstructs a histogram from [`raw_parts`](Self::raw_parts) output.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (same rules as [`new`](Self::new)).
    #[must_use]
    pub fn from_raw_parts(
        lo: f64,
        hi: f64,
        buckets: Vec<u64>,
        underflow: u64,
        overflow: u64,
    ) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        assert!(!buckets.is_empty(), "need at least one bucket");
        Histogram {
            lo,
            hi,
            buckets,
            underflow,
            overflow,
        }
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if ranges or bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.buckets.len() == other.buckets.len(),
            "histogram geometry mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(0.0);
        h.record(1.99);
        h.record(2.0);
        h.record(9.99);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(4), 1);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-0.1);
        h.record(10.0);
        h.record(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 1.5, "median {median}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > 95.0);
    }

    #[test]
    fn empty_quantile_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 2);
        let mut b = Histogram::new(0.0, 10.0, 2);
        a.record(1.0);
        b.record(1.0);
        b.record(6.0);
        a.merge(&b);
        assert_eq!(a.bucket_count(0), 2);
        assert_eq!(a.bucket_count(1), 1);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 10.0, 2);
        let b = Histogram::new(0.0, 10.0, 3);
        a.merge(&b);
    }

    #[test]
    fn bucket_ranges_tile_the_domain() {
        let h = Histogram::new(2.0, 12.0, 5);
        let mut expected_lo = 2.0;
        for i in 0..5 {
            let (lo, hi) = h.bucket_range(i);
            assert!((lo - expected_lo).abs() < 1e-12);
            assert!((hi - lo - 2.0).abs() < 1e-12);
            expected_lo = hi;
        }
    }
}
