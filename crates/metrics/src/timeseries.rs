//! Sampled time series (e.g. queue occupancy or ξ evolution over a run).

use serde::{Deserialize, Serialize};

/// A monotone-time sequence of `(t, value)` samples.
///
/// # Examples
///
/// ```
/// use dftmsn_metrics::timeseries::TimeSeries;
///
/// let mut ts = TimeSeries::new("xi");
/// ts.push(0.0, 0.0);
/// ts.push(10.0, 0.4);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.value_at(5.0), Some(0.0)); // step interpolation
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    t: Vec<f64>,
    v: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new(name: &str) -> Self {
        TimeSeries {
            name: name.to_owned(),
            t: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous sample or either value is
    /// non-finite.
    pub fn push(&mut self, t: f64, v: f64) {
        assert!(t.is_finite() && v.is_finite(), "non-finite sample");
        if let Some(&last) = self.t.last() {
            assert!(t >= last, "time went backwards: {t} < {last}");
        }
        self.t.push(t);
        self.v.push(v);
    }

    /// Iterates `(t, v)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.t.iter().copied().zip(self.v.iter().copied())
    }

    /// The last sample, if any.
    #[must_use]
    pub fn last(&self) -> Option<(f64, f64)> {
        Some((*self.t.last()?, *self.v.last()?))
    }

    /// Step ("sample and hold") interpolation: the value of the most recent
    /// sample at or before `t`, or `None` before the first sample.
    #[must_use]
    pub fn value_at(&self, t: f64) -> Option<f64> {
        let idx = self.t.partition_point(|&x| x <= t);
        if idx == 0 {
            None
        } else {
            Some(self.v[idx - 1])
        }
    }

    /// Time-weighted mean over the recorded span (step interpolation).
    /// Returns `None` with fewer than two samples.
    #[must_use]
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.t.len() < 2 {
            return None;
        }
        let mut acc = 0.0;
        for i in 0..self.t.len() - 1 {
            acc += self.v[i] * (self.t[i + 1] - self.t[i]);
        }
        let span = self.t.last().unwrap() - self.t[0];
        (span > 0.0).then(|| acc / span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut ts = TimeSeries::new("x");
        ts.push(0.0, 1.0);
        ts.push(1.0, 2.0);
        let all: Vec<_> = ts.iter().collect();
        assert_eq!(all, vec![(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(ts.last(), Some((1.0, 2.0)));
    }

    #[test]
    fn step_interpolation() {
        let mut ts = TimeSeries::new("x");
        ts.push(10.0, 1.0);
        ts.push(20.0, 2.0);
        assert_eq!(ts.value_at(5.0), None);
        assert_eq!(ts.value_at(10.0), Some(1.0));
        assert_eq!(ts.value_at(15.0), Some(1.0));
        assert_eq!(ts.value_at(25.0), Some(2.0));
    }

    #[test]
    fn time_weighted_mean_weights_by_duration() {
        let mut ts = TimeSeries::new("x");
        ts.push(0.0, 0.0);
        ts.push(9.0, 10.0); // value 0 held for 9 s
        ts.push(10.0, 10.0); // value 10 held for 1 s
        let mean = ts.time_weighted_mean().unwrap();
        assert!((mean - 1.0).abs() < 1e-12, "got {mean}");
    }

    #[test]
    fn mean_undefined_for_short_series() {
        let mut ts = TimeSeries::new("x");
        assert_eq!(ts.time_weighted_mean(), None);
        ts.push(0.0, 1.0);
        assert_eq!(ts.time_weighted_mean(), None);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn non_monotone_time_panics() {
        let mut ts = TimeSeries::new("x");
        ts.push(2.0, 0.0);
        ts.push(1.0, 0.0);
    }

    #[test]
    fn equal_timestamps_allowed() {
        let mut ts = TimeSeries::new("x");
        ts.push(1.0, 0.0);
        ts.push(1.0, 5.0);
        assert_eq!(ts.value_at(1.0), Some(5.0));
    }
}
