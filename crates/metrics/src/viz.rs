//! Terminal visualizations: sparklines, horizontal bar charts and grid
//! heatmaps — enough to eyeball a ξ gradient or a delay distribution
//! without leaving the terminal.

/// The eight-level block ramp used by sparklines and heatmaps.
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn level(x: f64, lo: f64, hi: f64) -> usize {
    if !x.is_finite() || hi <= lo {
        return 0;
    }
    let t = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((t * (RAMP.len() - 1) as f64).round()) as usize
}

/// Renders a one-line sparkline of the values, auto-scaled to their range.
///
/// Empty input renders an empty string; non-finite values render as the
/// lowest level.
///
/// # Examples
///
/// ```
/// use dftmsn_metrics::viz::sparkline;
///
/// let s = sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// assert!(s.ends_with('█'));
/// ```
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    values.iter().map(|&v| RAMP[level(v, lo, hi)]).collect()
}

/// Chunk-means `values` down to at most `width` points so a sparkline
/// fits the terminal while every sample still contributes to some chunk.
///
/// Inputs shorter than `width` are returned unchanged; `width == 0`
/// yields an empty vector (nothing can be drawn in zero columns).
///
/// # Examples
///
/// ```
/// use dftmsn_metrics::viz::resample;
///
/// assert_eq!(resample(&[1.0, 2.0, 3.0, 4.0], 2), vec![1.5, 3.5]);
/// assert_eq!(resample(&[1.0, 2.0], 8), vec![1.0, 2.0]);
/// ```
#[must_use]
pub fn resample(values: &[f64], width: usize) -> Vec<f64> {
    if width == 0 {
        return Vec::new();
    }
    if values.len() <= width {
        return values.to_vec();
    }
    (0..width)
        .map(|i| {
            let lo = i * values.len() / width;
            let hi = ((i + 1) * values.len() / width).max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Renders labelled horizontal bars, scaled so the largest value spans
/// `width` characters. Values must be non-negative; the numeric value is
/// appended after each bar.
///
/// # Panics
///
/// Panics if `width == 0` or any value is negative/non-finite.
#[must_use]
pub fn bar_chart(rows: &[(&str, f64)], width: usize) -> String {
    assert!(width > 0, "width must be positive");
    assert!(
        rows.iter().all(|&(_, v)| v.is_finite() && v >= 0.0),
        "bar values must be non-negative"
    );
    let max = rows.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for &(label, v) in rows {
        let n = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$}  {}{} {v:.3}\n",
            "█".repeat(n),
            " ".repeat(width - n)
        ));
    }
    out
}

/// Renders a row-major grid of values as a block heatmap, auto-scaled;
/// row 0 is printed at the bottom (matching map coordinates where y grows
/// upward).
///
/// # Panics
///
/// Panics if `cols == 0` or `values.len()` is not a multiple of `cols`.
#[must_use]
pub fn heatmap(values: &[f64], cols: usize) -> String {
    assert!(cols > 0, "cols must be positive");
    assert!(
        values.len().is_multiple_of(cols),
        "value count {} not a multiple of {} columns",
        values.len(),
        cols
    );
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let rows = values.len() / cols;
    let mut out = String::new();
    for r in (0..rows).rev() {
        for c in 0..cols {
            let ch = RAMP[level(values[r * cols + c], lo, hi)];
            out.push(ch);
            out.push(ch); // double width ≈ square cells
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_spans_the_ramp() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
    }

    #[test]
    fn sparkline_of_constants_is_flat() {
        let s = sparkline(&[3.0, 3.0, 3.0]);
        let chars: Vec<char> = s.chars().collect();
        assert!(chars.iter().all(|&c| c == chars[0]));
    }

    #[test]
    fn sparkline_handles_empty_and_nan() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[f64::NAN, 1.0, 2.0]);
        assert_eq!(s.chars().count(), 3);
    }

    #[test]
    fn resample_chunk_means_down_to_width() {
        let values: Vec<f64> = (0..10).map(f64::from).collect();
        let r = resample(&values, 5);
        assert_eq!(r, vec![0.5, 2.5, 4.5, 6.5, 8.5]);
    }

    #[test]
    fn resample_uneven_chunks_cover_every_sample() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = resample(&values, 2);
        assert_eq!(r.len(), 2);
        // Chunks [0,2) and [2,5): means 1.5 and 4.0.
        assert_eq!(r, vec![1.5, 4.0]);
    }

    #[test]
    fn resample_short_input_passes_through() {
        let values = [7.0, 8.0];
        assert_eq!(resample(&values, 2), values.to_vec());
        assert_eq!(resample(&values, 100), values.to_vec());
    }

    #[test]
    fn resample_empty_and_zero_width_are_empty() {
        assert!(resample(&[], 10).is_empty());
        assert!(resample(&[1.0, 2.0, 3.0], 0).is_empty());
        assert!(resample(&[], 0).is_empty());
    }

    #[test]
    fn bars_scale_to_width() {
        let chart = bar_chart(&[("a", 10.0), ("bb", 5.0)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].matches('█').count(), 10);
        assert_eq!(lines[1].matches('█').count(), 5);
        assert!(lines[0].contains("10.000"));
    }

    #[test]
    fn zero_bars_render_empty() {
        let chart = bar_chart(&[("x", 0.0)], 8);
        assert_eq!(chart.lines().next().unwrap().matches('█').count(), 0);
    }

    #[test]
    fn heatmap_dimensions() {
        let vals: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let map = heatmap(&vals, 4);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 8));
        // The largest value (index 11, top row) renders full blocks on the
        // first printed line.
        assert!(lines[0].ends_with("██"));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn ragged_heatmap_panics() {
        let _ = heatmap(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bars_panic() {
        let _ = bar_chart(&[("x", -1.0)], 5);
    }
}
