//! A minimal JSON value builder and writer.
//!
//! The workspace deliberately avoids a JSON dependency; this module
//! provides just enough — objects, arrays, strings, numbers, booleans,
//! null, correct escaping — to export reports and tables for external
//! plotting. Output is deterministic: object keys keep insertion order.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`, the common
    /// convention).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or appends) a field to an object, builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Renders compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => Self::write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(3u64).render(), "3");
        assert_eq!(Json::from(3.5).render(), "3.5");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn objects_keep_order_and_nest() {
        let j = Json::object()
            .field("b", 1u64)
            .field("a", Json::from(vec![1.0, 2.0]))
            .field("c", Json::object().field("x", "y"));
        assert_eq!(j.render(), r#"{"b":1,"a":[1,2],"c":{"x":"y"}}"#);
    }

    #[test]
    fn strings_escape_correctly() {
        let j = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(100.0).render(), "100");
        assert_eq!(Json::from(0.25).render(), "0.25");
        assert_eq!(Json::from(-2.0).render(), "-2");
    }

    #[test]
    fn display_matches_render() {
        let j = Json::from(vec!["x", "y"]);
        assert_eq!(format!("{j}"), j.render());
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_array_panics() {
        let _ = Json::Arr(vec![]).field("k", 1u64);
    }
}
