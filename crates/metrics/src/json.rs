//! A minimal JSON value builder, writer and parser.
//!
//! The workspace deliberately avoids a JSON dependency; this module
//! provides just enough — objects, arrays, strings, numbers, booleans,
//! null, correct escaping — to export reports and tables for external
//! plotting, plus a strict recursive-descent [`Json::parse`] so tools can
//! read those exports (e.g. `dftmsn inspect` on observe JSONL) back.
//! Output is deterministic: object keys keep insertion order.

use std::fmt::Write as _;

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset the parser stopped at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`, the common
    /// convention).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or appends) a field to an object, builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Renders compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => Self::write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `input` (surrounding whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] locating the first offending byte.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.error("trailing characters after the value"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` fields, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Strict recursive-descent parser over raw bytes (input is UTF-8 by
/// construction; string contents are validated on slice conversion).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped spans wholesale.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => return Err(self.error("control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.error("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII span");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("malformed number"))
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(3u64).render(), "3");
        assert_eq!(Json::from(3.5).render(), "3.5");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn objects_keep_order_and_nest() {
        let j = Json::object()
            .field("b", 1u64)
            .field("a", Json::from(vec![1.0, 2.0]))
            .field("c", Json::object().field("x", "y"));
        assert_eq!(j.render(), r#"{"b":1,"a":[1,2],"c":{"x":"y"}}"#);
    }

    #[test]
    fn strings_escape_correctly() {
        let j = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(100.0).render(), "100");
        assert_eq!(Json::from(0.25).render(), "0.25");
        assert_eq!(Json::from(-2.0).render(), "-2");
    }

    #[test]
    fn display_matches_render() {
        let j = Json::from(vec!["x", "y"]);
        assert_eq!(format!("{j}"), j.render());
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_array_panics() {
        let _ = Json::Arr(vec![]).field("k", 1u64);
    }

    #[test]
    fn parse_round_trips_render_output() {
        let j = Json::object()
            .field("schema", "dftmsn-observe/1")
            .field("window", 3u64)
            .field("ratio", 0.25)
            .field("neg", -2.0)
            .field("ok", true)
            .field("gap", Json::Null)
            .field("tags", Json::from(vec!["a", "b"]))
            .field("nested", Json::object().field("x", 1.5));
        let text = j.render();
        let back = Json::parse(&text).expect("round-trip parse");
        assert_eq!(back.render(), text);
        assert_eq!(back.get("window").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("dftmsn-observe/1")
        );
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            back.get("tags").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert!(back.get("gap").is_some_and(|v| matches!(v, Json::Null)));
        assert!(back.get("missing").is_none());
    }

    #[test]
    fn parse_handles_whitespace_and_scientific_numbers() {
        let j = Json::parse(" { \"a\" : [ 1e3 , -2.5E-1 , 0 ] } ").unwrap();
        let arr = j.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1000.0));
        assert_eq!(arr[1].as_f64(), Some(-0.25));
        assert_eq!(arr[2].as_f64(), Some(0.0));
    }

    #[test]
    fn parse_decodes_escapes_and_surrogate_pairs() {
        let input = "\"a\\\"b\\\\c\\nd\\u0041\\uD83D\\uDE00\"";
        let j = Json::parse(input).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\nd\u{41}\u{1F600}"));
        // Escaped output of a control character round-trips too.
        let rendered = Json::from("x\u{1}y").render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some("x\u{1}y"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\uD800 unpaired\"",
            "1 2",
            "{\"a\":1}{",
            "nul",
            "[1 2]",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "no message for {bad:?}");
        }
    }

    #[test]
    fn parse_reports_error_position() {
        let err = Json::parse("[1, x]").unwrap_err();
        assert_eq!(err.at, 4);
    }

    #[test]
    fn accessors_return_none_on_wrong_type() {
        let j = Json::from(3.0);
        assert!(j.as_str().is_none());
        assert!(j.as_bool().is_none());
        assert!(j.as_array().is_none());
        assert!(j.as_object().is_none());
        assert!(j.get("k").is_none());
        assert_eq!(j.as_f64(), Some(3.0));
    }
}
