//! Streaming summary statistics.

use serde::{Deserialize, Serialize};

/// Welford-style running mean/variance with min/max tracking.
///
/// Numerically stable for long runs; O(1) memory.
///
/// # Examples
///
/// ```
/// use dftmsn_metrics::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.min(), Some(2.0));
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics on non-finite observations — those are always upstream bugs.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite observation {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Population variance (divides by *n*; 0 when empty).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by *n − 1*; 0 with fewer than 2 samples).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean (`1.96·s/√n`; 0 with fewer than 2 samples).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// The raw accumulator fields `(count, mean, m2, min, max)`, for
    /// checkpointing. `min`/`max` carry their ±∞ empty-state sentinels, so
    /// the tuple must round-trip bit-exactly (serialize floats via
    /// `to_bits`).
    #[must_use]
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Reconstructs an accumulator from [`raw_parts`](Self::raw_parts)
    /// output. No validation beyond NaN rejection: the tuple is trusted to
    /// come from a live accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `mean` or `m2` is NaN — no sequence of finite
    /// observations produces one.
    #[must_use]
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        assert!(!mean.is_nan() && !m2.is_nan(), "NaN in stats state");
        RunningStats {
            count,
            mean,
            m2,
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroish() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn matches_naive_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.37 - 12.0).collect();
        let mut s = RunningStats::new();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.population_variance() - var).abs() < 1e-6);
        assert!((s.sum() - xs.iter().sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..200] {
            a.record(x);
        }
        for &x in &xs[200..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.record(1.0);
        a.record(2.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut s10 = RunningStats::new();
        let mut s1000 = RunningStats::new();
        for i in 0..1000 {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            if i < 10 {
                s10.record(x);
            }
            s1000.record(x);
        }
        assert!(s1000.ci95_half_width() < s10.ci95_half_width());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_observations_panic() {
        RunningStats::new().record(f64::NAN);
    }
}
