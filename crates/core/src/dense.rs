//! Dense replacements for the engine's hot lookup structures.
//!
//! The original engine kept delivery de-duplication in a
//! `HashSet<MessageId>`, fault-degraded links in a
//! `HashMap<(NodeId, NodeId), f64>`, and read per-node MAC state through
//! the full [`Node`](crate::node::Node) struct (several cache lines per
//! node). All three sit on per-frame paths, so at thousands of nodes the
//! hashing and pointer-chasing dominate. This module provides flat,
//! index-addressed equivalents:
//!
//! * [`DeliveredSet`] — a growable bitset keyed by the sequential
//!   [`MessageId`] space of the allocator (one bit per message ever
//!   generated).
//! * [`LinkDropTable`] — a triangular dense table over unordered node
//!   pairs, allocated lazily on the first per-pair fault so fault-free
//!   runs pay nothing.
//! * [`HotNodeTable`] — a struct-of-arrays mirror of the per-node fields
//!   the delivery loop reads most (timer-guard epoch, MAC state tag, ξ),
//!   kept in sync by the world at every mutation site. Positions are
//!   already split into the world's own `Vec<Vec2>`.
//!
//! None of these change any observable behaviour: they are drop-in
//! lookup-structure swaps, and the 12-golden determinism baseline holds
//! bit-for-bit with them active.

use crate::message::MessageId;
use crate::node::MacState;
use dftmsn_radio::ids::NodeId;

/// Growable bitset over the sequential [`MessageId`] space.
///
/// The message allocator hands out ids `0, 1, 2, …`, so membership is one
/// shift-and-mask into a flat word array instead of a hash probe. The set
/// grows on demand; `insert` far beyond the current end allocates the
/// intervening words (they are all ids already handed out anyway).
#[derive(Debug, Default, Clone)]
pub struct DeliveredSet {
    words: Vec<u64>,
    len: usize,
}

impl DeliveredSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `id`, returning `true` if it was not already present —
    /// the same contract as `HashSet::insert`.
    pub fn insert(&mut self, id: MessageId) -> bool {
        let (word, bit) = (id.0 as usize / 64, id.0 % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// True if `id` has been inserted.
    #[must_use]
    pub fn contains(&self, id: MessageId) -> bool {
        let (word, bit) = (id.0 as usize / 64, id.0 % 64);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of distinct ids inserted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw backing words, for checkpointing.
    #[must_use]
    pub fn raw_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set from [`raw_words`](Self::raw_words) output; the
    /// member count is recomputed from the popcount.
    #[must_use]
    pub fn from_raw_words(words: Vec<u64>) -> Self {
        let len = words.iter().map(|w| w.count_ones() as usize).sum();
        DeliveredSet { words, len }
    }
}

/// Dense per-pair link-degradation table with lazy allocation.
///
/// Stores one `f64` per unordered node pair in a triangular layout
/// (`idx(a ≤ b) = b(b+1)/2 + a`), with NaN as the "no per-pair entry"
/// sentinel so lookups fall through to the run's global drop figure. The
/// backing array is only allocated when the first per-pair fault lands:
/// fault-free runs — including the whole scale tier — never touch it, and
/// [`LinkDropTable::is_empty`] stays a counter check on the hot path.
///
/// The triangular array is O(n²) in the node count, which is fine for the
/// fault scenarios that use per-pair degradation (tens of nodes) and
/// irrelevant elsewhere because of the lazy allocation.
#[derive(Debug, Default, Clone)]
pub struct LinkDropTable {
    nodes: usize,
    cells: Vec<f64>,
    entries: usize,
}

impl LinkDropTable {
    /// Creates an (unallocated) table for `nodes` nodes.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        LinkDropTable {
            nodes,
            cells: Vec::new(),
            entries: 0,
        }
    }

    fn idx(&self, a: NodeId, b: NodeId) -> usize {
        let (lo, hi) = if a.index() <= b.index() {
            (a.index(), b.index())
        } else {
            (b.index(), a.index())
        };
        assert!(hi < self.nodes, "node {hi} out of range ({})", self.nodes);
        hi * (hi + 1) / 2 + lo
    }

    /// Sets the drop probability of the unordered pair `a`–`b`, allocating
    /// the table on first use.
    pub fn set(&mut self, a: NodeId, b: NodeId, p: f64) {
        let i = self.idx(a, b);
        if self.cells.is_empty() {
            self.cells = vec![f64::NAN; self.nodes * (self.nodes + 1) / 2];
        }
        if self.cells[i].is_nan() {
            self.entries += 1;
        }
        self.cells[i] = p;
    }

    /// Removes the per-pair entry for `a`–`b`, if any.
    pub fn clear(&mut self, a: NodeId, b: NodeId) {
        let i = self.idx(a, b);
        if !self.cells.is_empty() && !self.cells[i].is_nan() {
            self.cells[i] = f64::NAN;
            self.entries -= 1;
        }
    }

    /// The per-pair entry for `a`–`b`, or `None` to fall back to the
    /// global figure.
    #[must_use]
    pub fn get(&self, a: NodeId, b: NodeId) -> Option<f64> {
        if self.entries == 0 {
            return None;
        }
        let v = self.cells[self.idx(a, b)];
        (!v.is_nan()).then_some(v)
    }

    /// True when no per-pair entry is set (the common, fault-free case).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The set per-pair entries as `(lo, hi, p)` triangular coordinates in
    /// index order, for checkpointing. Empty when unallocated.
    #[must_use]
    pub fn set_entries(&self) -> Vec<(NodeId, NodeId, f64)> {
        let mut out = Vec::with_capacity(self.entries);
        for hi in 0..self.nodes {
            for lo in 0..=hi {
                let v = match self.cells.get(hi * (hi + 1) / 2 + lo) {
                    Some(&v) => v,
                    None => break,
                };
                if !v.is_nan() {
                    out.push((NodeId(lo), NodeId(hi), v));
                }
            }
        }
        out
    }

    /// Rebuilds a table for `nodes` nodes from
    /// [`set_entries`](Self::set_entries) output. An empty entry list
    /// leaves the table unallocated, preserving the lazy fast path.
    #[must_use]
    pub fn from_set_entries(nodes: usize, entries: &[(NodeId, NodeId, f64)]) -> Self {
        let mut table = Self::new(nodes);
        for &(a, b, p) in entries {
            table.set(a, b, p);
        }
        table
    }
}

/// Struct-of-arrays mirror of the hottest per-node fields.
///
/// The delivery loop and the frame-reception filters read three per-node
/// facts over and over — the timer-guard epoch, the MAC state tag, and the
/// routing metric ξ — but the canonical copies live inside
/// [`Node`](crate::node::Node), a large struct whose neighbours (queue,
/// neighbor table, RNG, energy meter) evict cache lines on every touch.
/// This table packs the three into flat arrays the world keeps current by
/// calling [`HotNodeTable::sync`] after every mutation block; readers in
/// `world` carry `debug_assert!`s against the canonical fields, so a
/// missed sync fails the (debug-built) test suite immediately.
#[derive(Debug, Default)]
pub struct HotNodeTable {
    /// Timer-guard epoch, mirroring `Node::epoch`.
    pub epoch: Vec<u64>,
    /// MAC state tag, mirroring `Node::state`.
    pub state: Vec<MacState>,
    /// Routing-metric value ξ, mirroring `Node::metric.value()`.
    pub xi: Vec<f64>,
    /// Sink flag, mirroring `Node::is_sink()`. Immutable after
    /// construction — roles never change mid-run.
    pub sink: Vec<bool>,
    /// Liveness flag, mirroring `Node::alive`. Toggled only by the fault
    /// handlers, which call [`HotNodeTable::sync_alive`].
    pub alive: Vec<bool>,
}

impl HotNodeTable {
    /// Creates a table of `n` entries in each node's initial state.
    #[must_use]
    pub fn with_len(n: usize) -> Self {
        HotNodeTable {
            epoch: vec![0; n],
            state: vec![MacState::Passive; n],
            xi: vec![0.0; n],
            sink: vec![false; n],
            alive: vec![true; n],
        }
    }

    /// Refreshes entry `idx` from the canonical node fields.
    #[inline]
    pub fn sync(&mut self, idx: usize, epoch: u64, state: MacState, xi: f64) {
        self.epoch[idx] = epoch;
        self.state[idx] = state;
        self.xi[idx] = xi;
    }

    /// Refreshes the liveness mirror for entry `idx`.
    #[inline]
    pub fn sync_alive(&mut self, idx: usize, alive: bool) {
        self.alive[idx] = alive;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TxPlan;

    #[test]
    fn delivered_set_matches_hashset_semantics() {
        let mut s = DeliveredSet::new();
        assert!(s.is_empty());
        assert!(s.insert(MessageId(0)));
        assert!(!s.insert(MessageId(0)));
        assert!(s.insert(MessageId(63)));
        assert!(s.insert(MessageId(64)));
        assert!(s.insert(MessageId(1_000)));
        assert!(!s.insert(MessageId(1_000)));
        assert_eq!(s.len(), 4);
        assert!(s.contains(MessageId(64)));
        assert!(!s.contains(MessageId(65)));
        assert!(!s.contains(MessageId(1_000_000)));
    }

    #[test]
    fn delivered_set_grows_sparsely_by_word() {
        let mut s = DeliveredSet::new();
        assert!(s.insert(MessageId(640)));
        assert_eq!(s.len(), 1);
        assert!(s.contains(MessageId(640)));
        for i in 0..640 {
            assert!(!s.contains(MessageId(i)), "phantom member {i}");
        }
    }

    #[test]
    fn link_drop_table_is_lazy_and_symmetric() {
        let mut t = LinkDropTable::new(10);
        assert!(t.is_empty());
        assert_eq!(t.cells.capacity(), 0, "fault-free table must not allocate");
        assert_eq!(t.get(NodeId(3), NodeId(7)), None);

        t.set(NodeId(7), NodeId(3), 0.25);
        assert!(!t.is_empty());
        assert_eq!(t.get(NodeId(3), NodeId(7)), Some(0.25));
        assert_eq!(t.get(NodeId(7), NodeId(3)), Some(0.25));
        assert_eq!(t.get(NodeId(3), NodeId(4)), None);

        t.set(NodeId(7), NodeId(3), 0.5);
        assert_eq!(t.get(NodeId(3), NodeId(7)), Some(0.5));

        t.clear(NodeId(3), NodeId(7));
        assert!(t.is_empty());
        assert_eq!(t.get(NodeId(3), NodeId(7)), None);
    }

    #[test]
    fn link_drop_clear_on_empty_table_is_a_noop() {
        let mut t = LinkDropTable::new(4);
        t.clear(NodeId(0), NodeId(3));
        assert!(t.is_empty());
    }

    #[test]
    fn link_drop_self_pair_and_extremes_index_cleanly() {
        let mut t = LinkDropTable::new(5);
        t.set(NodeId(2), NodeId(2), 1.0);
        t.set(NodeId(0), NodeId(4), 0.1);
        t.set(NodeId(0), NodeId(0), 0.2);
        t.set(NodeId(4), NodeId(4), 0.3);
        assert_eq!(t.get(NodeId(2), NodeId(2)), Some(1.0));
        assert_eq!(t.get(NodeId(4), NodeId(0)), Some(0.1));
        assert_eq!(t.get(NodeId(0), NodeId(0)), Some(0.2));
        assert_eq!(t.get(NodeId(4), NodeId(4)), Some(0.3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn link_drop_rejects_out_of_range_nodes() {
        let mut t = LinkDropTable::new(3);
        t.set(NodeId(0), NodeId(3), 0.5);
    }

    #[test]
    fn hot_table_sync_updates_one_row() {
        let mut h = HotNodeTable::with_len(3);
        assert_eq!(h.state[1], MacState::Passive);
        h.sync(1, 7, MacState::Transmitting(TxPlan::Data), 0.75);
        assert_eq!(h.epoch, vec![0, 7, 0]);
        assert_eq!(h.state[1], MacState::Transmitting(TxPlan::Data));
        assert_eq!(h.xi, vec![0.0, 0.75, 0.0]);
    }
}
