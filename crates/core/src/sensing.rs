//! The sensing layer: what the network is *for*.
//!
//! The paper motivates DFT-MSN with statistical field monitoring — air
//! quality inhaled by commuters, flu prevalence across a population
//! (Sec. 1) — where the information base is rebuilt periodically from
//! whatever samples arrive. This module closes that loop: it defines
//! synthetic scalar fields, attributes each generated message to a sample
//! of the field, and scores a run by how well the delivered samples
//! reconstruct the per-zone field means.
//!
//! Sensors are home-zone-biased (see
//! [`ZoneMobility`](dftmsn_mobility::models::ZoneMobility)), so a sample
//! is attributed to the origin sensor's home-zone centre at its sensing
//! time — the deterministic assignment used by the world
//! ([`home_zone_assignment`]).

use crate::params::ScenarioParams;
use crate::report::SimReport;
use dftmsn_mobility::geom::{Bounds, Vec2};
use dftmsn_mobility::zones::{ZoneGrid, ZoneId};
use serde::{Deserialize, Serialize};

/// The deterministic home-zone rule used when the world creates sensors:
/// round-robin over the zone grid.
#[must_use]
pub fn home_zone_assignment(sensor_index: usize, zone_count: usize) -> ZoneId {
    ZoneId(sensor_index % zone_count.max(1))
}

/// A scalar field over space and time.
pub trait ScalarField: std::fmt::Debug {
    /// The field value at position `p` and time `t_secs`.
    fn value_at(&self, p: Vec2, t_secs: f64) -> f64;
}

/// One Gaussian source of a plume field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlumeSource {
    /// Source centre.
    pub center: Vec2,
    /// Peak intensity at the centre.
    pub intensity: f64,
    /// Spatial spread (m).
    pub sigma_m: f64,
}

/// A sum-of-Gaussians pollution field with an optional diurnal swing.
///
/// # Examples
///
/// ```
/// use dftmsn_core::sensing::{GaussianPlumeField, PlumeSource, ScalarField};
/// use dftmsn_mobility::geom::Vec2;
///
/// let field = GaussianPlumeField::new(
///     vec![PlumeSource { center: Vec2::new(75.0, 75.0), intensity: 10.0, sigma_m: 30.0 }],
///     0.0,
/// );
/// let at_source = field.value_at(Vec2::new(75.0, 75.0), 0.0);
/// let far = field.value_at(Vec2::new(0.0, 0.0), 0.0);
/// assert!(at_source > far);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianPlumeField {
    sources: Vec<PlumeSource>,
    /// Relative diurnal modulation amplitude in `[0, 1]` (0 = static
    /// field); the cycle period is 24 h.
    diurnal_amplitude: f64,
}

impl GaussianPlumeField {
    /// Period of the diurnal modulation (s).
    pub const DAY_SECS: f64 = 86_400.0;

    /// Creates a field from its sources.
    ///
    /// # Panics
    ///
    /// Panics if `diurnal_amplitude` is outside `[0, 1]` or any source has
    /// a non-positive spread.
    #[must_use]
    pub fn new(sources: Vec<PlumeSource>, diurnal_amplitude: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&diurnal_amplitude),
            "diurnal amplitude outside [0,1]"
        );
        assert!(
            sources.iter().all(|s| s.sigma_m > 0.0),
            "source spread must be positive"
        );
        GaussianPlumeField {
            sources,
            diurnal_amplitude,
        }
    }

    /// A ready-made two-source field spanning `area` — a "traffic artery"
    /// hotspot and a weaker industrial corner.
    #[must_use]
    pub fn demo(area: Bounds) -> Self {
        let w = area.width();
        let h = area.height();
        GaussianPlumeField::new(
            vec![
                PlumeSource {
                    center: Vec2::new(area.x0 + 0.5 * w, area.y0 + 0.5 * h),
                    intensity: 100.0,
                    sigma_m: 0.25 * w,
                },
                PlumeSource {
                    center: Vec2::new(area.x0 + 0.85 * w, area.y0 + 0.15 * h),
                    intensity: 60.0,
                    sigma_m: 0.15 * w,
                },
            ],
            0.3,
        )
    }
}

impl ScalarField for GaussianPlumeField {
    fn value_at(&self, p: Vec2, t_secs: f64) -> f64 {
        let spatial: f64 = self
            .sources
            .iter()
            .map(|s| {
                let d2 = p.distance_sq(s.center);
                s.intensity * (-d2 / (2.0 * s.sigma_m * s.sigma_m)).exp()
            })
            .sum();
        let phase = t_secs / Self::DAY_SECS * std::f64::consts::TAU;
        spatial * (1.0 + self.diurnal_amplitude * phase.sin())
    }
}

/// A uniform field (every sample carries the same value) — useful as a
/// control in tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformField(pub f64);

impl ScalarField for UniformField {
    fn value_at(&self, _p: Vec2, _t: f64) -> f64 {
        self.0
    }
}

/// Per-zone reconstruction quality of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Zones with at least one delivered sample.
    pub zones_covered: usize,
    /// Total zones.
    pub zones_total: usize,
    /// Delivered samples used.
    pub samples_used: usize,
    /// Root-mean-square error of the per-zone mean estimates, over covered
    /// zones.
    pub rmse_covered: f64,
    /// RMSE over all zones, charging uncovered zones their full truth
    /// magnitude (estimating 0 there).
    pub rmse_all: f64,
    /// Mean absolute truth value across zones (for normalizing the RMSE).
    pub truth_scale: f64,
}

impl CoverageReport {
    /// Fraction of zones with at least one delivered sample.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.zones_total == 0 {
            0.0
        } else {
            self.zones_covered as f64 / self.zones_total as f64
        }
    }

    /// RMSE over all zones, relative to the truth scale.
    #[must_use]
    pub fn normalized_rmse(&self) -> f64 {
        if self.truth_scale == 0.0 {
            0.0
        } else {
            self.rmse_all / self.truth_scale
        }
    }
}

/// Scores how well a run's delivered samples reconstruct the per-zone
/// time-averaged field.
#[derive(Debug)]
pub struct CoverageAnalysis<'a> {
    grid: ZoneGrid,
    sensors: usize,
    duration_secs: f64,
    field: &'a dyn ScalarField,
}

impl<'a> CoverageAnalysis<'a> {
    /// Builds an analysis for the given scenario and ground-truth field.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails validation.
    #[must_use]
    pub fn new(scenario: &ScenarioParams, field: &'a dyn ScalarField) -> Self {
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
        let area = Bounds::new(scenario.area_width_m, scenario.area_height_m);
        CoverageAnalysis {
            grid: ZoneGrid::new(area, scenario.zone_cols, scenario.zone_rows),
            sensors: scenario.sensors,
            duration_secs: scenario.duration_secs as f64,
            field,
        }
    }

    /// The sample value attributed to a message: the field at the origin's
    /// home-zone centre at sensing time.
    #[must_use]
    pub fn sample_value(&self, origin_index: usize, created_secs: f64) -> f64 {
        let zone = home_zone_assignment(origin_index, self.grid.zone_count());
        self.field
            .value_at(self.grid.zone_center(zone), created_secs)
    }

    /// Time-averaged truth at a zone centre (midpoint rule, 100 steps).
    fn zone_truth(&self, zone: ZoneId) -> f64 {
        let c = self.grid.zone_center(zone);
        let steps = 100;
        let dt = self.duration_secs / steps as f64;
        (0..steps)
            .map(|k| self.field.value_at(c, (k as f64 + 0.5) * dt))
            .sum::<f64>()
            / steps as f64
    }

    /// Scores the run.
    #[must_use]
    pub fn evaluate(&self, report: &SimReport) -> CoverageReport {
        let zones = self.grid.zone_count();
        let mut sums = vec![0.0f64; zones];
        let mut counts = vec![0usize; zones];
        let mut used = 0usize;
        for d in &report.deliveries {
            let idx = d.origin.index();
            if idx >= self.sensors {
                continue;
            }
            let zone = home_zone_assignment(idx, zones);
            sums[zone.0] += self.sample_value(idx, d.created_secs);
            counts[zone.0] += 1;
            used += 1;
        }
        let mut se_covered = 0.0;
        let mut se_all = 0.0;
        let mut covered = 0usize;
        let mut truth_abs = 0.0;
        for z in 0..zones {
            let truth = self.zone_truth(ZoneId(z));
            truth_abs += truth.abs();
            if counts[z] > 0 {
                let est = sums[z] / counts[z] as f64;
                let err = est - truth;
                se_covered += err * err;
                se_all += err * err;
                covered += 1;
            } else {
                se_all += truth * truth;
            }
        }
        CoverageReport {
            zones_covered: covered,
            zones_total: zones,
            samples_used: used,
            rmse_covered: if covered > 0 {
                (se_covered / covered as f64).sqrt()
            } else {
                0.0
            },
            rmse_all: (se_all / zones as f64).sqrt(),
            truth_scale: truth_abs / zones as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;
    use crate::report::DeliveryRecord;
    use dftmsn_metrics::histogram::Histogram;
    use dftmsn_metrics::stats::RunningStats;
    use dftmsn_radio::ids::NodeId;

    fn scenario() -> ScenarioParams {
        ScenarioParams::paper_default().with_duration_secs(1_000)
    }

    fn fake_report(deliveries: Vec<DeliveryRecord>) -> SimReport {
        SimReport {
            protocol: "OPT".into(),
            seed: 0,
            duration_secs: 1_000.0,
            sensors: 100,
            sinks: 3,
            generated: deliveries.len() as u64,
            delivered: deliveries.len() as u64,
            sink_receptions: deliveries.len() as u64,
            mean_delay_secs: 0.0,
            p95_delay_secs: 0.0,
            avg_sensor_power_mw: 0.0,
            total_sensor_energy_j: 0.0,
            energy_by_state_j: [0.0; 4],
            control_bits: 0,
            data_bits: 0,
            frames_sent: 0,
            collisions: 0,
            drops_overflow: 0,
            drops_rejected: 0,
            drops_ftd: 0,
            attempts: 0,
            failed_attempts: 0,
            multicasts: 0,
            copies_sent: 0,
            events_processed: 0,
            mean_final_xi: 0.0,
            mean_hops: 0.0,
            delay_stats: RunningStats::new(),
            delay_hist: Histogram::new(0.0, 1.0, 2),
            deliveries,
            node_summaries: Vec::new(),
            faults: crate::report::FaultCounters::default(),
            lifetime: crate::report::Lifetime::quiet(100),
        }
    }

    fn delivery(origin: usize, created: f64) -> DeliveryRecord {
        DeliveryRecord {
            msg: MessageId(origin as u64 * 1000 + created as u64),
            origin: NodeId(origin),
            created_secs: created,
            delay_secs: 1.0,
            sink: NodeId(100),
            hops: 1,
        }
    }

    #[test]
    fn home_zone_rule_is_round_robin() {
        assert_eq!(home_zone_assignment(0, 25), ZoneId(0));
        assert_eq!(home_zone_assignment(26, 25), ZoneId(1));
        assert_eq!(home_zone_assignment(7, 1), ZoneId(0));
    }

    #[test]
    fn plume_decays_with_distance_and_modulates_in_time() {
        let f = GaussianPlumeField::demo(Bounds::new(150.0, 150.0));
        let near = f.value_at(Vec2::new(75.0, 75.0), 0.0);
        let far = f.value_at(Vec2::new(5.0, 145.0), 0.0);
        assert!(near > 4.0 * far);
        let morning = f.value_at(Vec2::new(75.0, 75.0), 0.25 * GaussianPlumeField::DAY_SECS);
        let evening = f.value_at(Vec2::new(75.0, 75.0), 0.75 * GaussianPlumeField::DAY_SECS);
        assert!(morning > evening, "diurnal swing missing");
    }

    #[test]
    fn uniform_field_reconstructs_perfectly_with_any_coverage() {
        let s = scenario();
        let field = UniformField(5.0);
        let analysis = CoverageAnalysis::new(&s, &field);
        // One sample per zone (sensors 0..25 have distinct home zones).
        let deliveries: Vec<DeliveryRecord> =
            (0..25).map(|i| delivery(i, 10.0 * i as f64)).collect();
        let c = analysis.evaluate(&fake_report(deliveries));
        assert_eq!(c.zones_covered, 25);
        assert!(c.rmse_covered < 1e-9);
        assert!(c.normalized_rmse() < 1e-9);
    }

    #[test]
    fn missing_zones_hurt_global_rmse() {
        let s = scenario();
        let field = GaussianPlumeField::demo(Bounds::new(150.0, 150.0));
        let analysis = CoverageAnalysis::new(&s, &field);
        let full: Vec<DeliveryRecord> = (0..100).map(|i| delivery(i, 100.0)).collect();
        let partial: Vec<DeliveryRecord> = (0..8).map(|i| delivery(i, 100.0)).collect();
        let full_cov = analysis.evaluate(&fake_report(full));
        let part_cov = analysis.evaluate(&fake_report(partial));
        assert_eq!(full_cov.zones_covered, 25);
        assert!(part_cov.zones_covered < 25);
        assert!(part_cov.rmse_all > full_cov.rmse_all);
        assert!(part_cov.coverage() < full_cov.coverage());
    }

    #[test]
    fn empty_report_scores_zero_coverage() {
        let s = scenario();
        let field = UniformField(2.0);
        let analysis = CoverageAnalysis::new(&s, &field);
        let c = analysis.evaluate(&fake_report(Vec::new()));
        assert_eq!(c.zones_covered, 0);
        assert_eq!(c.samples_used, 0);
        assert!(c.rmse_all > 0.0, "uncovered zones must be charged");
    }

    #[test]
    fn end_to_end_coverage_tracks_delivery_ratio() {
        use crate::variants::ProtocolKind;
        use crate::world::Simulation;
        let s = ScenarioParams {
            sensors: 30,
            sinks: 3,
            duration_secs: 3_000,
            ..ScenarioParams::paper_default()
        };
        let field = GaussianPlumeField::demo(Bounds::new(150.0, 150.0));
        let analysis = CoverageAnalysis::new(&s, &field);
        let good = Simulation::builder(s.clone(), ProtocolKind::Opt)
            .seed(1)
            .build()
            .run();
        let cov = analysis.evaluate(&good);
        assert!(cov.samples_used as u64 == good.delivered);
        assert!(cov.coverage() > 0.3, "coverage {:.2}", cov.coverage());
    }
}
