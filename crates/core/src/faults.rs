//! Deterministic fault injection.
//!
//! The paper's whole premise is *fault* tolerance — FTD (Eqs. 2–3) exists
//! to keep the delivery ratio high when nodes and links fail — so the
//! simulator must be able to express failures. A [`FaultPlan`] is a list
//! of scheduled [`FaultEvent`]s injected through the world's ordinary
//! event queue:
//!
//! * node crashes and recoveries (queued copies are lost, timers die);
//! * battery deaths (a crash that refuses recovery);
//! * radio link degradation, per-pair or global (frames drop with a
//!   configured probability);
//! * DATA-frame corruption at a receiving node;
//! * sink outages (a crash of a sink, attributed separately).
//!
//! Plans are pure data: building one performs no randomness beyond the
//! seeded generators below, and an *empty* plan leaves a simulation
//! bit-for-bit identical to a run without any fault machinery (the fault
//! RNG stream is forked but never drawn from).

use crate::behavior::NodeBehavior;
use crate::params::ScenarioParams;
use dftmsn_radio::ids::NodeId;
use dftmsn_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// What a scheduled fault event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The sensor halts: its radio goes dark, every queued copy is lost
    /// and all pending protocol timers die.
    NodeCrash(NodeId),
    /// A crashed sensor reboots with an empty queue; its ξ then catches up
    /// on the Δ-decay it missed while dark.
    NodeRecover(NodeId),
    /// A permanent crash: later `NodeRecover` events for the node are
    /// ignored.
    BatteryDeath(NodeId),
    /// Frames crossing the (undirected) link between `a` and `b` drop with
    /// probability `drop_prob`; 0 restores the link.
    LinkDegrade {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Per-frame drop probability in `[0, 1]`.
        drop_prob: f64,
    },
    /// Every frame on every link drops with probability `drop_prob`
    /// (per-pair [`FaultKind::LinkDegrade`] entries take precedence);
    /// 0 restores the medium.
    GlobalLinkDegrade {
        /// Per-frame drop probability in `[0, 1]`.
        drop_prob: f64,
    },
    /// DATA frames arriving at `node` are corrupted (discarded before the
    /// protocol sees them) with probability `prob`; 0 heals the receiver.
    DataCorruption {
        /// The afflicted receiver.
        node: NodeId,
        /// Per-frame corruption probability in `[0, 1]`.
        prob: f64,
    },
    /// The sink goes dark: crash semantics, attributed as a sink outage.
    SinkDown(NodeId),
    /// The sink comes back online.
    SinkUp(NodeId),
    /// The sensor switches to playing the protocol as `behavior` (see
    /// [`NodeBehavior`] and DESIGN.md § 10). Orthogonal to liveness: a
    /// behavior assigned to a dead node takes effect if it later recovers.
    BehaviorChange {
        /// The turning node.
        node: NodeId,
        /// Its conduct from this instant on.
        behavior: NodeBehavior,
    },
}

impl FaultKind {
    /// A static label for the fault class, used by trace fault markers.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash(_) => "NodeCrash",
            FaultKind::NodeRecover(_) => "NodeRecover",
            FaultKind::BatteryDeath(_) => "BatteryDeath",
            FaultKind::LinkDegrade { .. } => "LinkDegrade",
            FaultKind::GlobalLinkDegrade { .. } => "GlobalLinkDegrade",
            FaultKind::DataCorruption { .. } => "DataCorruption",
            FaultKind::SinkDown(_) => "SinkDown",
            FaultKind::SinkUp(_) => "SinkUp",
            FaultKind::BehaviorChange { .. } => "BehaviorChange",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires, in seconds since the start of the run.
    pub at_secs: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A fault-plan construction or validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidFaultPlan(pub String);

impl std::fmt::Display for InvalidFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for InvalidFaultPlan {}

/// Splits an explicit-grammar directive value into its body and the
/// mandatory `@T` firing time.
fn explicit_split_at<'a>(
    directive: &str,
    value: &'a str,
) -> Result<(&'a str, f64), InvalidFaultPlan> {
    let (body, t) = value.rsplit_once('@').ok_or_else(|| {
        InvalidFaultPlan(format!("'{directive}' needs an explicit @T firing time"))
    })?;
    let at: f64 = t
        .parse()
        .map_err(|_| InvalidFaultPlan(format!("invalid time '{t}' in '{directive}'")))?;
    Ok((body, at))
}

/// Parses a raw node id from an explicit-grammar directive.
fn explicit_node(directive: &str, s: &str) -> Result<NodeId, InvalidFaultPlan> {
    s.parse::<usize>()
        .map(NodeId)
        .map_err(|_| InvalidFaultPlan(format!("invalid node id '{s}' in '{directive}'")))
}

/// Parses the `N@T` form shared by the single-node explicit directives.
fn explicit_node_at(directive: &str, value: &str) -> Result<(NodeId, f64), InvalidFaultPlan> {
    let (body, at) = explicit_split_at(directive, value)?;
    Ok((explicit_node(directive, body)?, at))
}

/// A deterministic, schedulable fault scenario.
///
/// # Examples
///
/// ```
/// use dftmsn_core::faults::{FaultKind, FaultPlan};
/// use dftmsn_core::params::ScenarioParams;
/// use dftmsn_radio::ids::NodeId;
///
/// let scenario = ScenarioParams::smoke_test();
/// let mut plan = FaultPlan::default();
/// plan.push(100.0, FaultKind::NodeCrash(NodeId(0)));
/// plan.push(400.0, FaultKind::NodeRecover(NodeId(0)));
/// assert!(plan.validate(&scenario).is_ok());
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults; same-instant events apply in list order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// True when the plan schedules nothing (the run is fault-free).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled fault events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Appends a fault at `at_secs` seconds into the run.
    pub fn push(&mut self, at_secs: f64, kind: FaultKind) {
        self.events.push(FaultEvent { at_secs, kind });
    }

    /// Merges another plan's events into this one.
    ///
    /// Ordering guarantee: `other`'s events are appended *after* this
    /// plan's, and both plans' internal orders are preserved — `extend`
    /// never sorts. The engine schedules each event at its `at_secs` and
    /// breaks same-instant ties by plan position, so the effective firing
    /// order is stable `(time, insertion)`: extending `A` with `B` makes
    /// `B`'s same-instant events apply after `A`'s.
    pub fn extend(&mut self, other: FaultPlan) {
        self.events.extend(other.events);
    }

    /// Kills `fraction` of the sensors at seeded times spread over the
    /// middle of the run. With `recover_after_secs` the nodes reboot that
    /// many seconds after crashing (node churn); without it the crashes
    /// are permanent battery deaths.
    ///
    /// The victim set and crash times depend only on `seed` and the
    /// scenario, never on the simulation's own random streams.
    #[must_use]
    pub fn node_failures(
        scenario: &ScenarioParams,
        fraction: f64,
        recover_after_secs: Option<f64>,
        seed: u64,
    ) -> FaultPlan {
        let fraction = fraction.clamp(0.0, 1.0);
        let victims = ((scenario.sensors as f64 * fraction).round() as usize).min(scenario.sensors);
        let mut rng = SimRng::seed_from(seed).fork(0x504C_414E); // "PLAN"
        let mut ids: Vec<usize> = (0..scenario.sensors).collect();
        rng.shuffle(&mut ids);
        let duration = scenario.duration_secs as f64;
        let mut plan = FaultPlan::default();
        for &i in ids.iter().take(victims) {
            // Crash inside [10%, 80%] of the run so the network both
            // builds up state before the fault and feels its aftermath.
            let at = duration * rng.gen_range_f64(0.10, 0.80);
            match recover_after_secs {
                Some(gap) => {
                    plan.push(at, FaultKind::NodeCrash(NodeId(i)));
                    plan.push(at + gap, FaultKind::NodeRecover(NodeId(i)));
                }
                None => plan.push(at, FaultKind::BatteryDeath(NodeId(i))),
            }
        }
        plan.events.sort_by(|x, y| x.at_secs.total_cmp(&y.at_secs));
        plan
    }

    /// Degrades every link from the start of the run: each frame drops
    /// with probability `drop_prob`.
    #[must_use]
    pub fn uniform_link_degradation(drop_prob: f64) -> FaultPlan {
        let mut plan = FaultPlan::default();
        plan.push(0.0, FaultKind::GlobalLinkDegrade { drop_prob });
        plan
    }

    /// Corrupts DATA receptions at every node (sensors and sinks) with
    /// probability `prob`, from the start of the run.
    #[must_use]
    pub fn data_corruption(scenario: &ScenarioParams, prob: f64) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for i in 0..scenario.node_count() {
            plan.push(
                0.0,
                FaultKind::DataCorruption {
                    node: NodeId(i),
                    prob,
                },
            );
        }
        plan
    }

    /// Takes the `sink_ordinal`-th sink (0-based) offline between
    /// `from_secs` and `to_secs`.
    #[must_use]
    pub fn sink_outage(
        scenario: &ScenarioParams,
        sink_ordinal: usize,
        from_secs: f64,
        to_secs: f64,
    ) -> FaultPlan {
        let id = NodeId(scenario.sensors + sink_ordinal);
        let mut plan = FaultPlan::default();
        plan.push(from_secs, FaultKind::SinkDown(id));
        plan.push(to_secs, FaultKind::SinkUp(id));
        plan
    }

    /// Renders the plan as an *explicit* spec string that
    /// [`parse`](Self::parse) reads back into an identical plan: one
    /// directive per event, in plan order, each pinning its exact node,
    /// probability and firing time (floats use Rust's shortest round-trip
    /// formatting, so `parse(format_spec(p)) == p` bit-for-bit).
    ///
    /// An empty plan renders as `none`.
    #[must_use]
    pub fn format_spec(&self) -> String {
        if self.events.is_empty() {
            return "none".to_owned();
        }
        let parts: Vec<String> = self
            .events
            .iter()
            .map(|ev| {
                let t = ev.at_secs;
                match ev.kind {
                    FaultKind::NodeCrash(id) => format!("crashnode={}@{t:?}", id.index()),
                    FaultKind::NodeRecover(id) => format!("recovernode={}@{t:?}", id.index()),
                    FaultKind::BatteryDeath(id) => format!("batterynode={}@{t:?}", id.index()),
                    FaultKind::LinkDegrade { a, b, drop_prob } => {
                        format!("link={}:{}:{drop_prob:?}@{t:?}", a.index(), b.index())
                    }
                    FaultKind::GlobalLinkDegrade { drop_prob } => {
                        format!("alllinks={drop_prob:?}@{t:?}")
                    }
                    FaultKind::DataCorruption { node, prob } => {
                        format!("corruptnode={}:{prob:?}@{t:?}", node.index())
                    }
                    FaultKind::SinkDown(id) => format!("sinkdown={}@{t:?}", id.index()),
                    FaultKind::SinkUp(id) => format!("sinkup={}@{t:?}", id.index()),
                    FaultKind::BehaviorChange { node, behavior } => {
                        format!("behavior={}:{}@{t:?}", node.index(), behavior.label())
                    }
                }
            })
            .collect();
        parts.join(";")
    }

    /// Parses the CLI fault-plan syntax: `;`-separated directives
    ///
    /// * `none` — nothing (an explicit empty plan);
    /// * `crash=F` — kill fraction `F` of the sensors permanently;
    /// * `churn=F@R` — crash fraction `F`, each rebooting `R` s later;
    /// * `linkdrop=P` — drop every frame with probability `P`;
    /// * `corrupt=P` — corrupt received DATA with probability `P`;
    /// * `sinkout=I@T1-T2` — sink `I` (0-based) offline in `[T1, T2]` s.
    ///
    /// Seeded directives (`crash`, `churn`) derive their victims and times
    /// from `seed` alone.
    ///
    /// On top of the aggregate forms above, the *explicit* grammar emitted
    /// by [`format_spec`](Self::format_spec) is accepted: one event per
    /// directive, each with a mandatory `@T` firing time —
    /// `crashnode=N@T`, `recovernode=N@T`, `batterynode=N@T`,
    /// `link=A:B:P@T`, `alllinks=P@T`, `corruptnode=N:P@T`,
    /// `sinkdown=N@T`, `sinkup=N@T` (raw node ids), and
    /// `behavior=N:KIND@T` with `KIND` one of `selfish`, `liar`,
    /// `forger`, `blackhole`, `honest`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFaultPlan`] for unknown directives or malformed
    /// numbers; range errors surface later through [`FaultPlan::validate`].
    pub fn parse(
        spec: &str,
        scenario: &ScenarioParams,
        seed: u64,
    ) -> Result<FaultPlan, InvalidFaultPlan> {
        let mut plan = FaultPlan::default();
        for directive in spec.split(';') {
            let directive = directive.trim();
            if directive.is_empty() || directive == "none" {
                continue;
            }
            let (key, value) = directive
                .split_once('=')
                .ok_or_else(|| InvalidFaultPlan(format!("directive '{directive}' has no '='")))?;
            let num = |v: &str| -> Result<f64, InvalidFaultPlan> {
                v.parse()
                    .map_err(|_| InvalidFaultPlan(format!("invalid number '{v}' in '{directive}'")))
            };
            match key {
                "crash" => {
                    plan.extend(FaultPlan::node_failures(scenario, num(value)?, None, seed));
                }
                "churn" => {
                    let (frac, gap) = value.split_once('@').ok_or_else(|| {
                        InvalidFaultPlan(format!("'{directive}' needs the form churn=F@R"))
                    })?;
                    plan.extend(FaultPlan::node_failures(
                        scenario,
                        num(frac)?,
                        Some(num(gap)?),
                        seed,
                    ));
                }
                "linkdrop" => {
                    plan.extend(FaultPlan::uniform_link_degradation(num(value)?));
                }
                "corrupt" => {
                    plan.extend(FaultPlan::data_corruption(scenario, num(value)?));
                }
                "sinkout" => {
                    let (idx, window) = value.split_once('@').ok_or_else(|| {
                        InvalidFaultPlan(format!("'{directive}' needs the form sinkout=I@T1-T2"))
                    })?;
                    let (t1, t2) = window.split_once('-').ok_or_else(|| {
                        InvalidFaultPlan(format!("'{directive}' needs a T1-T2 window"))
                    })?;
                    let ordinal: usize = idx.parse().map_err(|_| {
                        InvalidFaultPlan(format!("invalid sink index '{idx}' in '{directive}'"))
                    })?;
                    plan.extend(FaultPlan::sink_outage(
                        scenario,
                        ordinal,
                        num(t1)?,
                        num(t2)?,
                    ));
                }
                // Explicit single-event grammar (format_spec round-trip).
                "crashnode" | "recovernode" | "batterynode" | "sinkdown" | "sinkup" => {
                    let (node, at) = explicit_node_at(directive, value)?;
                    let kind = match key {
                        "crashnode" => FaultKind::NodeCrash(node),
                        "recovernode" => FaultKind::NodeRecover(node),
                        "batterynode" => FaultKind::BatteryDeath(node),
                        "sinkdown" => FaultKind::SinkDown(node),
                        _ => FaultKind::SinkUp(node),
                    };
                    plan.push(at, kind);
                }
                "alllinks" => {
                    let (p, at) = explicit_split_at(directive, value)?;
                    plan.push(at, FaultKind::GlobalLinkDegrade { drop_prob: num(p)? });
                }
                "link" => {
                    let (body, at) = explicit_split_at(directive, value)?;
                    let mut it = body.splitn(3, ':');
                    let (a, b, p) = match (it.next(), it.next(), it.next()) {
                        (Some(a), Some(b), Some(p)) => (a, b, p),
                        _ => {
                            return Err(InvalidFaultPlan(format!(
                                "'{directive}' needs the form link=A:B:P@T"
                            )))
                        }
                    };
                    plan.push(
                        at,
                        FaultKind::LinkDegrade {
                            a: explicit_node(directive, a)?,
                            b: explicit_node(directive, b)?,
                            drop_prob: num(p)?,
                        },
                    );
                }
                "corruptnode" => {
                    let (body, at) = explicit_split_at(directive, value)?;
                    let (n, p) = body.split_once(':').ok_or_else(|| {
                        InvalidFaultPlan(format!("'{directive}' needs the form corruptnode=N:P@T"))
                    })?;
                    plan.push(
                        at,
                        FaultKind::DataCorruption {
                            node: explicit_node(directive, n)?,
                            prob: num(p)?,
                        },
                    );
                }
                "behavior" => {
                    let (body, at) = explicit_split_at(directive, value)?;
                    let (n, label) = body.split_once(':').ok_or_else(|| {
                        InvalidFaultPlan(format!("'{directive}' needs the form behavior=N:KIND@T"))
                    })?;
                    let behavior = NodeBehavior::from_label(label).ok_or_else(|| {
                        InvalidFaultPlan(format!("unknown behavior '{label}' in '{directive}'"))
                    })?;
                    plan.push(
                        at,
                        FaultKind::BehaviorChange {
                            node: explicit_node(directive, n)?,
                            behavior,
                        },
                    );
                }
                other => {
                    return Err(InvalidFaultPlan(format!("unknown directive '{other}'")));
                }
            }
        }
        plan.validate(scenario)?;
        Ok(plan)
    }

    /// Checks every event against the scenario: node ids in range and of
    /// the right role, probabilities in `[0, 1]`, times finite and
    /// non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFaultPlan`] naming the first offending event.
    pub fn validate(&self, scenario: &ScenarioParams) -> Result<(), InvalidFaultPlan> {
        let sensors = scenario.sensors;
        let nodes = scenario.node_count();
        let sensor = |id: NodeId, what: &str| {
            if id.index() < sensors {
                Ok(())
            } else {
                Err(InvalidFaultPlan(format!("{what} targets non-sensor {id}")))
            }
        };
        let sink = |id: NodeId, what: &str| {
            if (sensors..nodes).contains(&id.index()) {
                Ok(())
            } else {
                Err(InvalidFaultPlan(format!("{what} targets non-sink {id}")))
            }
        };
        let prob = |p: f64, what: &str| {
            if p.is_finite() && (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(InvalidFaultPlan(format!(
                    "{what} probability {p} outside [0,1]"
                )))
            }
        };
        for ev in &self.events {
            if !ev.at_secs.is_finite() || ev.at_secs < 0.0 {
                return Err(InvalidFaultPlan(format!(
                    "fault time {} is not a non-negative finite number",
                    ev.at_secs
                )));
            }
            match ev.kind {
                FaultKind::NodeCrash(id) => sensor(id, "NodeCrash")?,
                FaultKind::NodeRecover(id) => sensor(id, "NodeRecover")?,
                FaultKind::BatteryDeath(id) => sensor(id, "BatteryDeath")?,
                FaultKind::LinkDegrade { a, b, drop_prob } => {
                    prob(drop_prob, "LinkDegrade")?;
                    for id in [a, b] {
                        if id.index() >= nodes {
                            return Err(InvalidFaultPlan(format!(
                                "LinkDegrade endpoint {id} out of range"
                            )));
                        }
                    }
                    if a == b {
                        return Err(InvalidFaultPlan(format!(
                            "LinkDegrade endpoints coincide at {a}"
                        )));
                    }
                }
                FaultKind::GlobalLinkDegrade { drop_prob } => {
                    prob(drop_prob, "GlobalLinkDegrade")?;
                }
                FaultKind::DataCorruption { node, prob: p } => {
                    prob(p, "DataCorruption")?;
                    if node.index() >= nodes {
                        return Err(InvalidFaultPlan(format!(
                            "DataCorruption node {node} out of range"
                        )));
                    }
                }
                FaultKind::SinkDown(id) => sink(id, "SinkDown")?,
                FaultKind::SinkUp(id) => sink(id, "SinkUp")?,
                FaultKind::BehaviorChange { node, .. } => sensor(node, "BehaviorChange")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> ScenarioParams {
        ScenarioParams {
            sensors: 20,
            sinks: 2,
            duration_secs: 2000,
            ..ScenarioParams::paper_default()
        }
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(plan.validate(&scenario()).is_ok());
    }

    #[test]
    fn node_failures_pick_distinct_sensors_deterministically() {
        let s = scenario();
        let a = FaultPlan::node_failures(&s, 0.3, None, 7);
        let b = FaultPlan::node_failures(&s, 0.3, None, 7);
        assert_eq!(a, b, "same seed must give the same plan");
        assert_eq!(a.len(), 6, "30% of 20 sensors");
        let mut ids: Vec<usize> = a
            .events
            .iter()
            .map(|e| match e.kind {
                FaultKind::BatteryDeath(id) => id.index(),
                other => panic!("unexpected kind {other:?}"),
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6, "victims are distinct");
        assert!(ids.iter().all(|&i| i < s.sensors));
        for ev in &a.events {
            assert!(ev.at_secs >= 0.1 * 2000.0 && ev.at_secs <= 0.8 * 2000.0);
        }
        let c = FaultPlan::node_failures(&s, 0.3, None, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn churn_emits_crash_recover_pairs() {
        let plan = FaultPlan::node_failures(&scenario(), 0.1, Some(300.0), 1);
        assert_eq!(plan.len(), 4, "2 victims x (crash + recover)");
        let crashes = plan
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeCrash(_)))
            .count();
        let recoveries = plan
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeRecover(_)))
            .count();
        assert_eq!((crashes, recoveries), (2, 2));
    }

    #[test]
    fn generators_validate_against_their_scenario() {
        let s = scenario();
        for plan in [
            FaultPlan::node_failures(&s, 0.5, Some(100.0), 3),
            FaultPlan::uniform_link_degradation(0.25),
            FaultPlan::data_corruption(&s, 0.1),
            FaultPlan::sink_outage(&s, 1, 500.0, 900.0),
        ] {
            assert!(plan.validate(&s).is_ok(), "{plan:?}");
        }
    }

    #[test]
    fn parse_accepts_the_documented_directives() {
        let s = scenario();
        let plan = FaultPlan::parse("crash=0.2;linkdrop=0.1;sinkout=0@100-400", &s, 1).unwrap();
        assert!(!plan.is_empty());
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::BatteryDeath(_))));
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::GlobalLinkDegrade { .. })));
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::SinkDown(_))));

        assert!(FaultPlan::parse("none", &s, 1).unwrap().is_empty());
        assert!(FaultPlan::parse("", &s, 1).unwrap().is_empty());
        let churn = FaultPlan::parse("churn=0.1@250", &s, 1).unwrap();
        assert!(churn
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::NodeRecover(_))));
        let corrupt = FaultPlan::parse("corrupt=0.5", &s, 1).unwrap();
        assert_eq!(corrupt.len(), s.node_count());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        let s = scenario();
        for bad in [
            "frobnicate=1",
            "crash",
            "crash=x",
            "churn=0.1",
            "sinkout=0@100",
            "linkdrop=1.5",
            "sinkout=9@1-2",
            "crashnode=3",
            "crashnode=x@10",
            "crashnode=3@x",
            "link=1:2@10",
            "link=1:1:0.5@10",
            "corruptnode=3@10",
            "behavior=3@10",
            "behavior=3:gremlin@10",
            "behavior=21:selfish@10",
            "sinkdown=0@10",
        ] {
            assert!(FaultPlan::parse(bad, &s, 1).is_err(), "'{bad}' accepted");
        }
    }

    #[test]
    fn explicit_grammar_round_trips_through_format_spec() {
        let s = scenario();
        let mut plan = FaultPlan::default();
        plan.push(12.5, FaultKind::NodeCrash(NodeId(3)));
        plan.push(12.5, FaultKind::NodeRecover(NodeId(3)));
        plan.push(100.0, FaultKind::BatteryDeath(NodeId(7)));
        plan.push(
            0.1,
            FaultKind::LinkDegrade {
                a: NodeId(1),
                b: NodeId(2),
                drop_prob: 0.375,
            },
        );
        plan.push(50.0, FaultKind::GlobalLinkDegrade { drop_prob: 0.1 });
        plan.push(
            60.0,
            FaultKind::DataCorruption {
                node: NodeId(4),
                prob: 0.25,
            },
        );
        plan.push(70.0, FaultKind::SinkDown(NodeId(20)));
        plan.push(80.0, FaultKind::SinkUp(NodeId(20)));
        plan.push(
            90.0,
            FaultKind::BehaviorChange {
                node: NodeId(5),
                behavior: NodeBehavior::Liar,
            },
        );
        let spec = plan.format_spec();
        let back = FaultPlan::parse(&spec, &s, 1).unwrap();
        assert_eq!(back, plan, "spec was: {spec}");
        assert_eq!(FaultPlan::default().format_spec(), "none");
        assert!(FaultPlan::parse("none", &s, 1).unwrap().is_empty());
    }

    #[test]
    fn extend_preserves_time_and_insertion_order() {
        let mut a = FaultPlan::default();
        a.push(100.0, FaultKind::NodeCrash(NodeId(1)));
        a.push(50.0, FaultKind::NodeCrash(NodeId(2)));
        let mut b = FaultPlan::default();
        b.push(100.0, FaultKind::NodeRecover(NodeId(1)));
        b.push(50.0, FaultKind::NodeRecover(NodeId(2)));
        a.extend(b);
        // extend never sorts: the first plan's events stay first, so
        // same-instant events fire in (time, insertion) order — crash
        // before recover at both t=50 and t=100.
        let kinds: Vec<&'static str> = a.events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            kinds,
            vec!["NodeCrash", "NodeCrash", "NodeRecover", "NodeRecover"]
        );
        assert_eq!(a.events[0].at_secs, 100.0);
        assert_eq!(a.events[2].at_secs, 100.0);
    }

    #[test]
    fn validate_catches_bad_targets_and_probs() {
        let s = scenario();
        let mut plan = FaultPlan::default();
        plan.push(10.0, FaultKind::NodeCrash(NodeId(21)));
        assert!(plan.validate(&s).is_err(), "crash of a sink id");

        let mut plan = FaultPlan::default();
        plan.push(10.0, FaultKind::SinkDown(NodeId(0)));
        assert!(plan.validate(&s).is_err(), "sink outage of a sensor");

        let mut plan = FaultPlan::default();
        plan.push(
            10.0,
            FaultKind::LinkDegrade {
                a: NodeId(0),
                b: NodeId(0),
                drop_prob: 0.5,
            },
        );
        assert!(plan.validate(&s).is_err(), "self-link");

        let mut plan = FaultPlan::default();
        plan.push(f64::NAN, FaultKind::GlobalLinkDegrade { drop_prob: 0.5 });
        assert!(plan.validate(&s).is_err(), "NaN time");

        let mut plan = FaultPlan::default();
        plan.push(
            10.0,
            FaultKind::DataCorruption {
                node: NodeId(3),
                prob: -0.1,
            },
        );
        assert!(plan.validate(&s).is_err(), "negative probability");
    }
}
