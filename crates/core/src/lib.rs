//! # dftmsn-core — the DFT-MSN cross-layer data delivery protocol
//!
//! A faithful implementation of *"Protocol Design and Optimization for
//! Delay/Fault-Tolerant Mobile Sensor Networks"* (ICDCS 2007):
//!
//! * [`delivery`] — the nodal delivery probability ξ (Eq. 1);
//! * [`ftd`] — the message fault-tolerance degree (Eqs. 2–3);
//! * [`queue`] — FTD-ordered queue management (Sec. 3.1.2);
//! * [`contention`] — collision analysis and the τ_max / contention-window
//!   optimizers (Eqs. 9–14);
//! * [`sleep`] — adaptive periodic sleeping (Eqs. 4–8);
//! * [`neighbor`] — neighbor tables and greedy receiver selection
//!   (Sec. 3.2.2);
//! * [`frames`], [`node`], [`world`] — the two-phase MAC state machine on
//!   a simulated shared medium;
//! * [`variants`] — OPT / NOOPT / NOSLEEP / ZBR (+ DIRECT, EPIDEMIC)
//!   baselines;
//! * [`policy`] — the [`ForwardingPolicy`] seam: every protocol decision
//!   point behind one trait, plus the TwoHopRelay and MeetingRate
//!   competitor policies;
//! * [`faults`] — deterministic fault injection (node crashes, link loss,
//!   DATA corruption, sink outages);
//! * [`behavior`] — adversarial node behaviors (selfish, liar, forger,
//!   blackhole) injected through the fault plan, plus network-lifetime
//!   tracking;
//! * [`trace`], [`observe`] — the MAC-level event stream and the windowed
//!   metrics pipeline built on it;
//! * [`params`], [`report`] — configuration and results.
//!
//! # Examples
//!
//! Run a short OPT simulation and inspect the headline metrics:
//!
//! ```
//! use dftmsn_core::prelude::*;
//!
//! let params = ScenarioParams::smoke_test().with_duration_secs(200);
//! let report = Simulation::builder(params, ProtocolKind::Opt).seed(1).build().run();
//! println!("{}", report.summary());
//! assert!(report.delivery_ratio() <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod behavior;
pub mod contention;
pub mod delivery;
pub mod dense;
pub mod faults;
pub mod frames;
pub mod ftd;
pub mod message;
pub mod neighbor;
pub mod node;
pub mod observe;
pub mod params;
pub mod policy;
pub mod profile;
pub mod queue;
pub mod report;
pub mod scenarios;
pub mod sensing;
pub mod sleep;
pub mod trace;
pub mod variants;
pub mod world;

pub use behavior::NodeBehavior;
pub use delivery::DeliveryProb;
pub use faults::{FaultKind, FaultPlan};
pub use ftd::Ftd;
pub use message::{Message, MessageId};
pub use observe::{MetricsRecorder, ObserveRow, ObserveSeries, WindowCounters, WorldSnapshot};
pub use params::{ProtocolParams, ScenarioParams};
pub use policy::{ForwardingPolicy, MeetingRate, Policy, PolicySpec, TwoHopRelay};
pub use queue::FtdQueue;
pub use report::SimReport;
pub use trace::{DropReason, SharedTrace, TeeSink, TraceEvent, TraceSink};
pub use variants::ProtocolKind;
pub use world::{CkptError, MobilityMode, Resumed, Simulation, SimulationBuilder, CKPT_MAGIC};

/// The most commonly used items, re-exported in one place.
///
/// ```
/// use dftmsn_core::prelude::*;
///
/// let recorder = MetricsRecorder::new(100.0);
/// let sim = Simulation::builder(ScenarioParams::smoke_test(), ProtocolKind::Opt)
///     .observe(recorder.clone())
///     .build();
/// # let _ = sim;
/// ```
pub mod prelude {
    pub use crate::behavior::NodeBehavior;
    pub use crate::faults::{FaultKind, FaultPlan};
    pub use crate::observe::{MetricsRecorder, ObserveRow, ObserveSeries, WorldSnapshot};
    pub use crate::params::{ProtocolParams, ScenarioParams};
    pub use crate::policy::{ForwardingPolicy, MeetingRate, Policy, PolicySpec, TwoHopRelay};
    pub use crate::report::SimReport;
    pub use crate::trace::{DropReason, SharedTrace, TeeSink, TraceEvent, TraceSink};
    pub use crate::variants::{ProtocolKind, VariantConfig};
    pub use crate::world::{
        CkptError, MobilityMode, Resumed, Simulation, SimulationBuilder, CKPT_MAGIC,
    };
}
