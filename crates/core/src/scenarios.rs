//! Named scenario presets.
//!
//! [`ScenarioParams::paper_default`] is the evaluation setup; the presets
//! here are the other deployments the paper's applications imply, ready
//! for examples, tests and downstream exploration.

use crate::params::ScenarioParams;

/// A named preset with a one-line description.
#[derive(Debug, Clone, PartialEq)]
pub struct Preset {
    /// Short identifier (kebab-case).
    pub name: &'static str,
    /// What the deployment models.
    pub description: &'static str,
    /// The parameters.
    pub params: ScenarioParams,
}

/// The paper's Sec. 5 evaluation setup.
#[must_use]
pub fn paper() -> Preset {
    Preset {
        name: "paper",
        description: "ICDCS'07 evaluation: 100 sensors, 3 sinks, 150 m square, 25 000 s",
        params: ScenarioParams::paper_default(),
    }
}

/// Dense urban district: more people, more hubs, heavier sampling.
#[must_use]
pub fn dense_urban() -> Preset {
    let mut p = ScenarioParams::paper_default()
        .with_sensors(200)
        .with_sinks(6);
    p.data_interval_secs = 60.0;
    Preset {
        name: "dense-urban",
        description: "200 commuters, 6 transit hubs, 1-minute sampling",
        params: p,
    }
}

/// Sparse rural deployment: wide area, few slow carriers, one sink.
#[must_use]
pub fn sparse_rural() -> Preset {
    let mut p = ScenarioParams::paper_default()
        .with_sensors(40)
        .with_sinks(1)
        .with_max_speed(2.0);
    p.area_width_m = 300.0;
    p.area_height_m = 300.0;
    Preset {
        name: "sparse-rural",
        description: "40 slow carriers across 300 m, a single collection point",
        params: p,
    }
}

/// Campus: moderate density, brisk walking, strategic sinks at both gates.
#[must_use]
pub fn campus() -> Preset {
    let mut p = ScenarioParams::paper_default()
        .with_sensors(80)
        .with_sinks(2);
    p.speed_min_mps = 0.5;
    p.speed_max_mps = 2.0;
    p.zone_exit_prob = 0.4;
    Preset {
        name: "campus",
        description: "80 students at walking pace, 2 gate sinks, busier zone crossings",
        params: p,
    }
}

/// Stress preset: heavy traffic into tiny buffers — exercises every drop
/// path.
#[must_use]
pub fn overload() -> Preset {
    let mut p = ScenarioParams::paper_default().with_sensors(60);
    p.data_interval_secs = 15.0;
    p.queue_capacity = 20;
    Preset {
        name: "overload",
        description: "8x traffic into 1/10th buffers: queue-pressure stress test",
        params: p,
    }
}

/// Every built-in preset.
#[must_use]
pub fn all() -> Vec<Preset> {
    vec![paper(), dense_urban(), sparse_rural(), campus(), overload()]
}

/// Looks a preset up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Preset> {
    all().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_is_valid() {
        for preset in all() {
            preset
                .params
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
            assert!(!preset.description.is_empty());
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let presets = all();
        let names: std::collections::HashSet<&str> = presets.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), presets.len());
        for p in &presets {
            assert_eq!(by_name(p.name).unwrap().params, p.params);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn presets_differ_meaningfully() {
        assert!(dense_urban().params.sensors > paper().params.sensors);
        assert!(sparse_rural().params.area_width_m > paper().params.area_width_m);
        assert!(overload().params.queue_capacity < paper().params.queue_capacity);
        assert!(campus().params.speed_max_mps < paper().params.speed_max_mps);
    }

    #[test]
    fn presets_run() {
        use crate::variants::ProtocolKind;
        use crate::world::Simulation;
        for preset in all() {
            let mut params = preset.params.clone();
            params.duration_secs = 120;
            params.sensors = params.sensors.min(15);
            let report = Simulation::builder(params, ProtocolKind::Opt)
                .seed(1)
                .build()
                .run();
            assert!(report.generated > 0, "{} generated nothing", preset.name);
        }
    }
}
