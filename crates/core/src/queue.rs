//! FTD-ordered data queue (paper Sec. 3.1.2).
//!
//! Messages sort by ascending FTD — the smaller the FTD, the more important
//! the copy — so the head is always the next message to transmit. Overflow
//! drops the tail (the most redundant copy); copies whose FTD exceeds a
//! threshold are purged outright.
//!
//! Ties on FTD break by message id, which makes equal-importance messages
//! FIFO; baselines that ignore FTD (ZBR, epidemic) insert everything with
//! FTD 0 and get a plain FIFO drop-tail queue out of the same structure.

use crate::ftd::Ftd;
use crate::message::{Message, MessageId};
use serde::{Deserialize, Serialize};

/// Result of [`FtdQueue::insert`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InsertOutcome {
    /// Stored; no eviction.
    Inserted,
    /// Stored; the queue was full and the given tail copy was evicted.
    InsertedEvicting(Message),
    /// Not stored: the queue was full and this copy was the least
    /// important one.
    RejectedFull,
    /// Not stored: a copy with an equal-or-smaller FTD is already queued.
    RejectedDuplicate,
    /// A duplicate copy existed with a larger FTD and was replaced by this
    /// more important copy.
    ReplacedDuplicate,
}

/// A bounded queue of message copies ordered by ascending FTD.
///
/// # Examples
///
/// ```
/// use dftmsn_core::ftd::Ftd;
/// use dftmsn_core::message::{Message, MessageId};
/// use dftmsn_core::queue::FtdQueue;
/// use dftmsn_radio::ids::NodeId;
/// use dftmsn_sim::time::SimTime;
///
/// let mut q = FtdQueue::new(10);
/// let m = Message::sensed(MessageId(0), NodeId(1), SimTime::ZERO);
/// q.insert(m.with_ftd(Ftd::new(0.5)));
/// q.insert(Message::sensed(MessageId(1), NodeId(1), SimTime::ZERO));
/// // The fresh (FTD 0) message jumps the 0.5 one.
/// assert_eq!(q.peek_head().unwrap().id, MessageId(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FtdQueue {
    /// Sorted ascending by `(ftd, id)`.
    items: Vec<Message>,
    capacity: usize,
}

impl FtdQueue {
    /// Creates an empty queue holding at most `capacity` messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        FtdQueue {
            items: Vec::new(),
            capacity,
        }
    }

    /// Maximum number of stored messages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no messages are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when the queue is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    fn sort_key(m: &Message) -> (f64, u64) {
        (m.ftd.value(), m.id.0)
    }

    fn insert_pos(&self, m: &Message) -> usize {
        let key = Self::sort_key(m);
        self.items.partition_point(|x| Self::sort_key(x) < key)
    }

    /// Inserts a message copy per the paper's rules: positional insert by
    /// FTD, drop-tail on overflow, and keep only the most important copy
    /// of a duplicate id.
    pub fn insert(&mut self, m: Message) -> InsertOutcome {
        if let Some(i) = self.items.iter().position(|x| x.id == m.id) {
            if m.ftd < self.items[i].ftd {
                self.items.remove(i);
                let pos = self.insert_pos(&m);
                self.items.insert(pos, m);
                return InsertOutcome::ReplacedDuplicate;
            }
            return InsertOutcome::RejectedDuplicate;
        }
        let pos = self.insert_pos(&m);
        if self.is_full() {
            if pos >= self.items.len() {
                // The newcomer would be the tail: it is the drop victim.
                return InsertOutcome::RejectedFull;
            }
            let evicted = self.items.pop().expect("full queue has a tail");
            self.items.insert(pos, m);
            return InsertOutcome::InsertedEvicting(evicted);
        }
        self.items.insert(pos, m);
        InsertOutcome::Inserted
    }

    /// The most important message (smallest FTD), if any.
    #[must_use]
    pub fn peek_head(&self) -> Option<&Message> {
        self.items.first()
    }

    /// Removes and returns the most important message.
    pub fn pop_head(&mut self) -> Option<Message> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.items.remove(0))
        }
    }

    /// Removes the copy with the given id, if present.
    pub fn remove(&mut self, id: MessageId) -> Option<Message> {
        let i = self.items.iter().position(|x| x.id == id)?;
        Some(self.items.remove(i))
    }

    /// Whether a copy with the given id is stored.
    #[must_use]
    pub fn contains(&self, id: MessageId) -> bool {
        self.items.iter().any(|x| x.id == id)
    }

    /// Re-keys a stored copy's FTD (e.g. after Eq. 3) and restores order.
    ///
    /// Returns `false` if the id is not present.
    pub fn update_ftd(&mut self, id: MessageId, ftd: Ftd) -> bool {
        match self.remove(id) {
            Some(m) => {
                let pos = self.insert_pos(&m.with_ftd(ftd));
                self.items.insert(pos, m.with_ftd(ftd));
                true
            }
            None => false,
        }
    }

    /// Purges every copy whose FTD exceeds `threshold`, returning them
    /// (Sec. 3.1.2's redundancy drop).
    pub fn drop_above(&mut self, threshold: Ftd) -> Vec<Message> {
        let cut = self
            .items
            .partition_point(|x| x.ftd.value() <= threshold.value());
        self.items.split_off(cut)
    }

    /// Available buffer space for a message with FTD `f` (Sec. 3.2.2):
    /// empty slots plus slots held by copies with a strictly larger FTD,
    /// i.e. `capacity − |{m : m.ftd ≤ f}|`.
    #[must_use]
    pub fn available_space_for(&self, f: Ftd) -> usize {
        let le = self.items.partition_point(|x| x.ftd.value() <= f.value());
        self.capacity - le
    }

    /// Number of stored copies with FTD strictly below `bound` — the
    /// urgent-message count `K_F` of Eq. 5.
    #[must_use]
    pub fn count_ftd_below(&self, bound: Ftd) -> usize {
        self.items
            .partition_point(|x| x.ftd.value() < bound.value())
    }

    /// The buffer-urgency ratio αᵢ of Eq. 5: `K_F / K`.
    #[must_use]
    pub fn urgency(&self, bound: Ftd) -> f64 {
        self.count_ftd_below(bound) as f64 / self.capacity as f64
    }

    /// Iterates the stored copies in ascending FTD order.
    pub fn iter(&self) -> impl Iterator<Item = &Message> {
        self.items.iter()
    }

    /// Rebuilds a queue from checkpointed contents: `items` must already be
    /// in the queue's `(ftd, id)` ascending order (as produced by
    /// [`iter`](Self::iter)) and within `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, `items` exceeds it, or the order is
    /// violated — any of which means the checkpoint is corrupt.
    #[must_use]
    pub fn from_sorted_items(capacity: usize, items: Vec<Message>) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(items.len() <= capacity, "queue contents exceed capacity");
        for w in items.windows(2) {
            assert!(
                Self::sort_key(&w[0]) <= Self::sort_key(&w[1]),
                "queue contents out of order"
            );
        }
        FtdQueue { items, capacity }
    }

    #[cfg(test)]
    fn assert_sorted(&self) {
        for w in self.items.windows(2) {
            assert!(
                Self::sort_key(&w[0]) <= Self::sort_key(&w[1]),
                "queue order violated"
            );
        }
        assert!(self.items.len() <= self.capacity, "over capacity");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftmsn_radio::ids::NodeId;
    use dftmsn_sim::time::SimTime;

    fn msg(id: u64, ftd: f64) -> Message {
        Message::sensed(MessageId(id), NodeId(0), SimTime::ZERO).with_ftd(Ftd::new(ftd))
    }

    #[test]
    fn orders_by_ascending_ftd() {
        let mut q = FtdQueue::new(10);
        q.insert(msg(1, 0.7));
        q.insert(msg(2, 0.1));
        q.insert(msg(3, 0.4));
        let order: Vec<u64> = q.iter().map(|m| m.id.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
        q.assert_sorted();
    }

    #[test]
    fn equal_ftd_is_fifo_by_id() {
        let mut q = FtdQueue::new(10);
        q.insert(msg(5, 0.0));
        q.insert(msg(2, 0.0));
        q.insert(msg(9, 0.0));
        let order: Vec<u64> = q.iter().map(|m| m.id.0).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }

    #[test]
    fn overflow_evicts_tail() {
        let mut q = FtdQueue::new(2);
        q.insert(msg(1, 0.5));
        q.insert(msg(2, 0.9));
        match q.insert(msg(3, 0.1)) {
            InsertOutcome::InsertedEvicting(evicted) => assert_eq!(evicted.id, MessageId(2)),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_head().unwrap().id, MessageId(3));
        q.assert_sorted();
    }

    #[test]
    fn overflow_rejects_least_important_newcomer() {
        let mut q = FtdQueue::new(2);
        q.insert(msg(1, 0.1));
        q.insert(msg(2, 0.2));
        assert_eq!(q.insert(msg(3, 0.9)), InsertOutcome::RejectedFull);
        assert_eq!(q.len(), 2);
        assert!(!q.contains(MessageId(3)));
    }

    #[test]
    fn duplicates_keep_the_smaller_ftd() {
        let mut q = FtdQueue::new(10);
        q.insert(msg(1, 0.5));
        assert_eq!(q.insert(msg(1, 0.8)), InsertOutcome::RejectedDuplicate);
        assert_eq!(q.insert(msg(1, 0.2)), InsertOutcome::ReplacedDuplicate);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_head().unwrap().ftd, Ftd::new(0.2));
    }

    #[test]
    fn pop_head_returns_most_important() {
        let mut q = FtdQueue::new(10);
        q.insert(msg(1, 0.7));
        q.insert(msg(2, 0.3));
        assert_eq!(q.pop_head().unwrap().id, MessageId(2));
        assert_eq!(q.pop_head().unwrap().id, MessageId(1));
        assert_eq!(q.pop_head(), None);
    }

    #[test]
    fn remove_by_id() {
        let mut q = FtdQueue::new(10);
        q.insert(msg(1, 0.7));
        q.insert(msg(2, 0.3));
        assert_eq!(q.remove(MessageId(1)).unwrap().id, MessageId(1));
        assert_eq!(q.remove(MessageId(1)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn update_ftd_reorders() {
        let mut q = FtdQueue::new(10);
        q.insert(msg(1, 0.1));
        q.insert(msg(2, 0.5));
        assert!(q.update_ftd(MessageId(1), Ftd::new(0.9)));
        assert_eq!(q.peek_head().unwrap().id, MessageId(2));
        assert!(!q.update_ftd(MessageId(42), Ftd::new(0.1)));
        q.assert_sorted();
    }

    #[test]
    fn drop_above_purges_redundant_copies() {
        let mut q = FtdQueue::new(10);
        for (id, f) in [(1, 0.1), (2, 0.5), (3, 0.95), (4, 0.99)] {
            q.insert(msg(id, f));
        }
        let dropped = q.drop_above(Ftd::new(0.9));
        let ids: Vec<u64> = dropped.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![3, 4]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn available_space_counts_evictable_slots() {
        let mut q = FtdQueue::new(4);
        q.insert(msg(1, 0.2));
        q.insert(msg(2, 0.6));
        // One empty slot + the 0.6 copy are usable for an FTD-0.4 message.
        assert_eq!(q.available_space_for(Ftd::new(0.4)), 3);
        // For an FTD-0.9 message only empty slots count.
        assert_eq!(q.available_space_for(Ftd::new(0.9)), 2);
        // Boundary: a copy with exactly equal FTD is NOT evictable.
        assert_eq!(q.available_space_for(Ftd::new(0.6)), 2);
    }

    #[test]
    fn urgency_is_eq5_ratio() {
        let mut q = FtdQueue::new(4);
        q.insert(msg(1, 0.1));
        q.insert(msg(2, 0.2));
        q.insert(msg(3, 0.9));
        assert_eq!(q.count_ftd_below(Ftd::new(0.5)), 2);
        assert!((q.urgency(Ftd::new(0.5)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_queue_stays_within_capacity_under_churn() {
        let mut q = FtdQueue::new(5);
        for i in 0..100u64 {
            q.insert(msg(i, (i % 10) as f64 / 10.0));
            q.assert_sorted();
        }
        assert_eq!(q.len(), 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FtdQueue::new(0);
    }
}
