//! Message fault-tolerance degree (paper Sec. 3.1.2, Eqs. 2–3).
//!
//! Each message *copy* carries an FTD: the estimated probability that at
//! least one *other* copy reaches the sink. A fresh reading has FTD 0
//! (most important); a copy already handed to a sink has FTD 1. Queues
//! order by ascending FTD and drop copies whose FTD exceeds a threshold.
//!
//! On a multicast of message *M* from sensor *i* (delivery probability ξᵢ)
//! to the receiver set Φ:
//!
//! ```text
//! Eq. 2 (copy handed to j ∈ Φ):
//!   Fⱼ = 1 − (1 − Fᵢ)(1 − ξᵢ)·∏_{m∈Φ, m≠j} (1 − ξₘ)
//! Eq. 3 (sender's own copy):
//!   Fᵢ = 1 − (1 − Fᵢ)·∏_{m∈Φ} (1 − ξₘ)
//! ```

use crate::delivery::DeliveryProb;
use serde::{Deserialize, Serialize};

/// Validates a probability-like input, tolerating ulp-level drift: values
/// within [`DeliveryProb::DRIFT_SLACK`] of the unit interval are clamped
/// onto it, anything further out is a logic error and panics.
fn unit_checked(x: f64, what: &str) -> f64 {
    let slack = DeliveryProb::DRIFT_SLACK;
    assert!(
        x.is_finite() && (-slack..=1.0 + slack).contains(&x),
        "{what} {x} outside [0,1]"
    );
    x.clamp(0.0, 1.0)
}

/// A fault-tolerance degree, invariantly in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use dftmsn_core::ftd::Ftd;
///
/// let fresh = Ftd::NEW;
/// let after = fresh.after_multicast(&[0.5, 0.5]);
/// assert!((after.value() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Ftd(f64);

impl Ftd {
    /// FTD of a freshly sensed message: no other copy exists.
    pub const NEW: Ftd = Ftd(0.0);
    /// FTD of a copy whose message has reached a sink.
    pub const DELIVERED: Ftd = Ftd(1.0);

    /// Wraps a raw FTD. Ulp-level drift outside the unit interval (within
    /// [`DeliveryProb::DRIFT_SLACK`]) is clamped rather than rejected.
    ///
    /// # Panics
    ///
    /// Panics if `f` is outside `[0, 1]` beyond the drift slack, or not
    /// finite.
    #[must_use]
    pub fn new(f: f64) -> Self {
        Ftd(unit_checked(f, "FTD"))
    }

    /// The raw value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Eq. 3: the sender's FTD after multicasting to receivers with the
    /// given delivery probabilities.
    ///
    /// An empty receiver set leaves the FTD unchanged. The result is
    /// monotonically non-decreasing: replication never makes a copy more
    /// important.
    ///
    /// # Panics
    ///
    /// Panics if any receiver probability is outside `[0, 1]`.
    #[must_use]
    pub fn after_multicast(self, receiver_xis: &[f64]) -> Ftd {
        let mut others_miss = 1.0;
        for &xi in receiver_xis {
            others_miss *= 1.0 - unit_checked(xi, "receiver ξ");
        }
        // Algebraically identical to 1 − (1 − F)·∏(1 − ξ) but exactly
        // monotone in floating point: the added term is non-negative.
        Ftd((self.0 + (1.0 - self.0) * (1.0 - others_miss)).clamp(0.0, 1.0))
    }

    /// Eq. 2: the FTD attached to the copy handed to receiver `j` of a
    /// multicast, given the sender's pre-multicast FTD (`self`), the
    /// sender's ξ, and the delivery probabilities of the *other* receivers
    /// in Φ.
    ///
    /// From receiver `j`'s point of view the "other copies" are the
    /// sender's retained copy (delivering with ξᵢ) and every co-receiver's
    /// copy.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn receiver_copy(self, sender_xi: f64, other_receiver_xis: &[f64]) -> Ftd {
        let mut survive = (1.0 - self.0) * (1.0 - unit_checked(sender_xi, "sender ξ"));
        for &xi in other_receiver_xis {
            survive *= 1.0 - unit_checked(xi, "receiver ξ");
        }
        Ftd((1.0 - survive).clamp(0.0, 1.0))
    }

    /// The combined delivery probability `1 − (1 − F)·∏(1 − ξₘ)` used by
    /// the receiver-selection loop's stopping rule (Sec. 3.2.2).
    #[must_use]
    pub fn combined_delivery(self, receiver_xis: &[f64]) -> f64 {
        self.after_multicast(receiver_xis).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_and_delivered_extremes() {
        assert_eq!(Ftd::NEW.value(), 0.0);
        assert_eq!(Ftd::DELIVERED.value(), 1.0);
    }

    #[test]
    fn eq3_single_receiver() {
        // F' = 1 - (1 - 0)·(1 - 0.4) = 0.4
        let f = Ftd::NEW.after_multicast(&[0.4]);
        assert!((f.value() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn eq3_accumulates_over_successive_multicasts() {
        let f1 = Ftd::NEW.after_multicast(&[0.5]);
        let f2 = f1.after_multicast(&[0.5]);
        // 1 - (1-0.5)(1-0.5) = 0.75
        assert!((f2.value() - 0.75).abs() < 1e-12);
        // Equivalent to one multicast to both receivers.
        let joint = Ftd::NEW.after_multicast(&[0.5, 0.5]);
        assert!((f2.value() - joint.value()).abs() < 1e-12);
    }

    #[test]
    fn eq3_is_monotone_nondecreasing() {
        let mut f = Ftd::new(0.2);
        for xi in [0.0, 0.1, 0.3, 0.9] {
            let next = f.after_multicast(&[xi]);
            assert!(next.value() >= f.value());
            f = next;
        }
    }

    #[test]
    fn eq3_with_empty_set_is_identity() {
        let f = Ftd::new(0.3);
        assert_eq!(f.after_multicast(&[]), f);
    }

    #[test]
    fn eq2_receiver_copy_counts_sender_and_others() {
        // Sender ξ = 0.5, co-receiver ξ = 0.25, fresh message:
        // F_j = 1 - (1)(1-0.5)(1-0.25) = 0.625
        let f = Ftd::NEW.receiver_copy(0.5, &[0.25]);
        assert!((f.value() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn eq2_sole_receiver_sees_only_sender_copy() {
        let f = Ftd::NEW.receiver_copy(0.3, &[]);
        assert!((f.value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn eq2_copy_to_lone_receiver_from_dead_end_sender_stays_fresh() {
        // A sender that can never deliver (ξ = 0) hands over a copy as
        // important as its own.
        let f = Ftd::new(0.2).receiver_copy(0.0, &[]);
        assert!((f.value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sink_receiver_maximizes_co_receiver_ftd() {
        // If one co-receiver is a sink (ξ = 1), every other copy becomes
        // redundant: FTD 1.
        let f = Ftd::NEW.receiver_copy(0.1, &[1.0]);
        assert_eq!(f, Ftd::DELIVERED);
        let sender = Ftd::NEW.after_multicast(&[1.0, 0.2]);
        assert_eq!(sender, Ftd::DELIVERED);
    }

    #[test]
    fn eq2_receivers_get_higher_ftd_than_lone_sender_update() {
        // With two receivers, each copy's FTD (Eq. 2) exceeds what Eq. 3
        // would give the sender for a single-receiver multicast, because
        // more redundancy exists from each copy's viewpoint.
        let ftd_j = Ftd::NEW.receiver_copy(0.5, &[0.5]);
        let ftd_sender_single = Ftd::NEW.after_multicast(&[0.5]);
        assert!(ftd_j.value() > ftd_sender_single.value());
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_xi_panics() {
        let _ = Ftd::NEW.after_multicast(&[1.2]);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_ftd_panics() {
        let _ = Ftd::new(f64::NAN);
    }

    #[test]
    fn ulp_drift_inputs_are_clamped_not_rejected() {
        // Accumulated float drift can push a probability a few ulp past the
        // boundary; the math must absorb it instead of panicking.
        let f = Ftd::new(1.0 + 1e-12);
        assert_eq!(f.value(), 1.0);
        let after = Ftd::NEW.after_multicast(&[1.0 + 1e-12, -1e-12]);
        assert_eq!(after, Ftd::DELIVERED);
        let copy = Ftd::new(-1e-12).receiver_copy(1.0 + 1e-12, &[]);
        assert_eq!(copy, Ftd::DELIVERED);
    }

    #[test]
    fn boundary_receiver_xis_are_exact() {
        // ξ exactly 0 contributes nothing; ξ exactly 1 saturates.
        let f = Ftd::new(0.4).after_multicast(&[0.0, 0.0]);
        assert_eq!(f.value(), 0.4);
        assert_eq!(Ftd::new(0.4).combined_delivery(&[1.0]), 1.0);
        assert_eq!(Ftd::NEW.combined_delivery(&[]), 0.0);
        assert_eq!(Ftd::DELIVERED.combined_delivery(&[]), 1.0);
    }
}
