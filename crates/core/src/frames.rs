//! The MAC frame vocabulary of the two-phase protocol (paper Sec. 3.2).
//!
//! All control frames share the scenario's control-packet size on the
//! wire; the data frame carries a [`Message`] and uses the data size.

use crate::message::{Message, MessageId};
use dftmsn_radio::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Payload of a MAC frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MacPayload {
    /// Channel-occupancy announcement opening the asynchronous phase.
    Preamble,
    /// Request-to-send: advertises the sender's delivery probability, the
    /// head message's FTD and the contention-window length (Sec. 3.2.1).
    Rts {
        /// Sender's routing metric (ξ, or ZBR history).
        xi: f64,
        /// FTD of the message about to be multicast.
        ftd: f64,
        /// Contention-window length in CTS slots.
        window_slots: u32,
        /// Identity of the message (lets receivers skip copies they hold).
        msg: MessageId,
    },
    /// Clear-to-send from a qualified receiver: advertises its metric and
    /// available buffer space (Sec. 3.2.1).
    Cts {
        /// Replier's routing metric.
        xi: f64,
        /// Buffer slots available for the advertised FTD class.
        buffer_space: u32,
        /// Echo of the RTS's message id.
        msg: MessageId,
    },
    /// The synchronous-phase schedule: selected receivers in ACK order
    /// with the FTD each copy carries (Sec. 3.2.2).
    Schedule {
        /// `(receiver, copy FTD)` in ACK-slot order.
        receivers: Vec<(NodeId, f64)>,
        /// The message about to follow.
        msg: MessageId,
    },
    /// The multicast data message.
    Data {
        /// The carried message copy (receivers re-stamp the FTD from the
        /// schedule).
        msg: Message,
    },
    /// Per-receiver acknowledgement sent in its scheduled slot.
    Ack {
        /// The acknowledged message.
        msg: MessageId,
    },
}

impl MacPayload {
    /// True for the control frames (everything but data).
    #[must_use]
    pub fn is_control(&self) -> bool {
        !matches!(self, MacPayload::Data { .. })
    }

    /// A short wire-format tag for traces.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            MacPayload::Preamble => "PRE",
            MacPayload::Rts { .. } => "RTS",
            MacPayload::Cts { .. } => "CTS",
            MacPayload::Schedule { .. } => "SCHD",
            MacPayload::Data { .. } => "DATA",
            MacPayload::Ack { .. } => "ACK",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftmsn_sim::time::SimTime;

    #[test]
    fn control_classification() {
        assert!(MacPayload::Preamble.is_control());
        assert!(MacPayload::Ack { msg: MessageId(0) }.is_control());
        let data = MacPayload::Data {
            msg: Message::sensed(MessageId(0), NodeId(0), SimTime::ZERO),
        };
        assert!(!data.is_control());
    }

    #[test]
    fn tags_are_distinct() {
        let frames = [
            MacPayload::Preamble,
            MacPayload::Rts {
                xi: 0.0,
                ftd: 0.0,
                window_slots: 1,
                msg: MessageId(0),
            },
            MacPayload::Cts {
                xi: 0.0,
                buffer_space: 0,
                msg: MessageId(0),
            },
            MacPayload::Schedule {
                receivers: vec![],
                msg: MessageId(0),
            },
            MacPayload::Data {
                msg: Message::sensed(MessageId(0), NodeId(0), SimTime::ZERO),
            },
            MacPayload::Ack { msg: MessageId(0) },
        ];
        let tags: std::collections::HashSet<&str> = frames.iter().map(|f| f.tag()).collect();
        assert_eq!(tags.len(), frames.len());
    }
}
