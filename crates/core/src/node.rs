//! Per-node protocol state.
//!
//! A [`Node`] bundles everything one sensor (or sink) carries through the
//! simulation: its routing metric, FTD queue, sleep controller, neighbor
//! table, MAC state and energy meter. The *transitions* live in
//! [`crate::world`], which owns the shared medium and event queue; this
//! module defines the states and the bookkeeping that is local to a node.

use crate::delivery::DeliveryProb;
use crate::ftd::Ftd;
use crate::message::{Message, MessageId};
use crate::neighbor::{Candidate, NeighborTable, Selection};
use crate::queue::FtdQueue;
use crate::sleep::SleepController;
use dftmsn_radio::energy::{EnergyMeter, RadioState};
use dftmsn_radio::ids::NodeId;
use dftmsn_sim::rng::SimRng;
use dftmsn_sim::time::SimTime;

/// Whether a node is a wearable sensor or a high-end sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// A mobile wearable sensor.
    Sensor,
    /// A stationary high-end sink (always awake, ξ = 1, never initiates).
    Sink,
}

/// What the node will do when its current transmission completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxPlan {
    /// Preamble sent → follow with the RTS.
    Preamble,
    /// RTS sent → open the CTS contention window.
    Rts,
    /// CTS sent → await the SCHEDULE.
    Cts,
    /// SCHEDULE sent → follow with the DATA frame.
    Schedule,
    /// DATA sent → await the ACKs.
    Data,
    /// ACK sent → the receive exchange is complete.
    Ack,
}

/// The MAC state machine of the two-phase protocol (paper Sec. 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacState {
    /// Radio off; a `WakeUp` timer ends the nap.
    Sleeping,
    /// Awake, idle-listening: backoff between attempts, NAV deferral, the
    /// queue-empty receiver window, and sinks' permanent state.
    Passive,
    /// Sender carrier-sensing for its drawn listening period (async phase).
    SenderListen,
    /// Mid-transmission of some frame.
    Transmitting(TxPlan),
    /// Sender collecting CTS replies until the window closes.
    CollectCts,
    /// Sender waiting for scheduled ACKs.
    AwaitAcks,
    /// Receiver: preamble heard, RTS expected.
    AwaitRts,
    /// Receiver: qualified, waiting for its CTS slot.
    CtsPending,
    /// Receiver: CTS sent, SCHEDULE expected.
    AwaitSchedule,
    /// Receiver: scheduled, DATA expected.
    AwaitData,
    /// Receiver: DATA held, waiting for its ACK slot.
    AckPending,
}

impl MacState {
    /// True when the node may opportunistically become a receiver (it is
    /// listening and not committed to an exchange).
    #[must_use]
    pub fn receptive(self) -> bool {
        matches!(self, MacState::Passive | MacState::SenderListen)
    }
}

/// Sender-side context of one multicast attempt.
#[derive(Debug, Clone)]
pub struct SenderCtx {
    /// Snapshot of the message at the head of the queue when the attempt
    /// started (the live copy stays queued until the outcome is known).
    pub msg: Message,
    /// Contention-window length advertised in the RTS (slots).
    pub window_slots: u32,
    /// CTS repliers collected so far.
    pub candidates: Vec<Candidate>,
    /// The chosen receiver set, once selection ran.
    pub selection: Option<Selection>,
    /// Receivers whose ACK arrived.
    pub acked: Vec<NodeId>,
}

/// Receiver-side context of one exchange.
#[derive(Debug, Clone, Copy)]
pub struct ReceiverCtx {
    /// The soliciting sender.
    pub sender: NodeId,
    /// The message being negotiated.
    pub msg: MessageId,
    /// The FTD class advertised in the RTS (drives the buffer-space
    /// figure echoed in our CTS).
    pub rts_ftd: f64,
    /// Contention-window length from the RTS (slots).
    pub window_slots: u32,
    /// When the RTS finished (CTS slots are measured from here).
    pub rts_end: SimTime,
    /// FTD assigned to our copy by the SCHEDULE (Eq. 2).
    pub assigned_ftd: Option<Ftd>,
    /// Our 0-based ACK slot from the SCHEDULE.
    pub ack_slot: u32,
}

/// All per-node state.
#[derive(Debug)]
pub struct Node {
    /// The node's identity (index into the world's arrays).
    pub id: NodeId,
    /// Sensor or sink.
    pub role: NodeRole,
    /// Routing metric: ξ (Eq. 1), or the ZBR sink-contact history.
    pub metric: DeliveryProb,
    /// The FTD-ordered data queue.
    pub queue: FtdQueue,
    /// Eq. 4–6 sleep controller.
    pub sleep: SleepController,
    /// Overheard neighbor advertisements.
    pub table: NeighborTable,
    /// Current MAC state.
    pub state: MacState,
    /// Timer-guard epoch: bumped on every state change so stale timers are
    /// ignored.
    pub epoch: u64,
    /// Consecutive cycles without acting as sender or receiver.
    pub cycles_inactive: usize,
    /// How many times this node re-drew its listening period in the
    /// current attempt after sensing a busy channel.
    pub listen_retries: u32,
    /// Last instant this node transmitted a data message (drives the Δ
    /// metric timeout of Eq. 1).
    pub last_tx: SimTime,
    /// False while the node is crashed or battery-dead: the radio is dark,
    /// no events are acted on, and queued copies were lost.
    pub alive: bool,
    /// A permanent crash: the node never recovers.
    pub battery_dead: bool,
    /// Injected fault: probability an arriving DATA frame is corrupted and
    /// discarded before the protocol sees it.
    pub corrupt_rx_prob: f64,
    /// High-water mark of applied Eq. 1 Δ-decay windows: the instant up to
    /// which timeout decay has been accounted for (max'ed with `last_tx`).
    /// Lets a node that slept or was crashed across several Δ windows catch
    /// up on every missed decay instead of decaying once per wakeup.
    pub xi_anchor: SimTime,
    /// Memoized Eq. 13 result: `(computed_at, τ_max)`. The optimizer is
    /// O(τ·m²), so attempts reuse a recent value instead of re-solving.
    pub cached_tau: Option<(SimTime, u64)>,
    /// Per-node energy meter.
    pub meter: EnergyMeter,
    /// Private random stream.
    pub rng: SimRng,
    /// Sender attempt context.
    pub sender_ctx: Option<SenderCtx>,
    /// Receiver exchange context.
    pub receiver_ctx: Option<ReceiverCtx>,
}

impl Node {
    /// Creates a node in the given role.
    ///
    /// Sensors start passive with metric 0; sinks start passive with
    /// metric 1 and never leave [`MacState::Passive`].
    #[must_use]
    pub fn new(
        id: NodeId,
        role: NodeRole,
        queue_capacity: usize,
        history_window: usize,
        rng: SimRng,
    ) -> Self {
        let metric = match role {
            NodeRole::Sensor => DeliveryProb::ZERO,
            NodeRole::Sink => DeliveryProb::SINK,
        };
        Node {
            id,
            role,
            metric,
            queue: FtdQueue::new(queue_capacity),
            sleep: SleepController::new(history_window),
            table: NeighborTable::new(),
            state: MacState::Passive,
            epoch: 0,
            cycles_inactive: 0,
            listen_retries: 0,
            last_tx: SimTime::ZERO,
            alive: true,
            battery_dead: false,
            corrupt_rx_prob: 0.0,
            xi_anchor: SimTime::ZERO,
            cached_tau: None,
            meter: EnergyMeter::new(RadioState::Idle),
            rng,
            sender_ctx: None,
            receiver_ctx: None,
        }
    }

    /// True for sink nodes.
    #[must_use]
    pub fn is_sink(&self) -> bool {
        self.role == NodeRole::Sink
    }

    /// Moves to a new MAC state, bumping the timer-guard epoch.
    pub fn transition(&mut self, next: MacState) {
        self.state = next;
        self.epoch += 1;
    }

    /// Clears both exchange contexts (cycle boundary).
    pub fn clear_ctx(&mut self) {
        self.sender_ctx = None;
        self.receiver_ctx = None;
        self.listen_retries = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(role: NodeRole) -> Node {
        Node::new(NodeId(0), role, 10, 10, SimRng::seed_from(1))
    }

    #[test]
    fn sensors_start_cold_and_passive() {
        let n = node(NodeRole::Sensor);
        assert_eq!(n.metric, DeliveryProb::ZERO);
        assert_eq!(n.state, MacState::Passive);
        assert!(!n.is_sink());
        assert!(n.queue.is_empty());
    }

    #[test]
    fn sinks_start_with_metric_one() {
        let n = node(NodeRole::Sink);
        assert_eq!(n.metric, DeliveryProb::SINK);
        assert!(n.is_sink());
    }

    #[test]
    fn transition_bumps_epoch() {
        let mut n = node(NodeRole::Sensor);
        let e0 = n.epoch;
        n.transition(MacState::SenderListen);
        assert_eq!(n.state, MacState::SenderListen);
        assert_eq!(n.epoch, e0 + 1);
    }

    #[test]
    fn receptive_states() {
        assert!(MacState::Passive.receptive());
        assert!(MacState::SenderListen.receptive());
        assert!(!MacState::Sleeping.receptive());
        assert!(!MacState::AwaitData.receptive());
        assert!(!MacState::Transmitting(TxPlan::Rts).receptive());
    }

    #[test]
    fn clear_ctx_resets_attempt_state() {
        let mut n = node(NodeRole::Sensor);
        n.listen_retries = 2;
        n.receiver_ctx = Some(ReceiverCtx {
            sender: NodeId(1),
            msg: MessageId(0),
            rts_ftd: 0.0,
            window_slots: 4,
            rts_end: SimTime::ZERO,
            assigned_ftd: None,
            ack_slot: 0,
        });
        n.clear_ctx();
        assert!(n.receiver_ctx.is_none());
        assert!(n.sender_ctx.is_none());
        assert_eq!(n.listen_retries, 0);
    }
}
