//! Scenario and protocol parameters.
//!
//! [`ScenarioParams`] describes the deployment (area, nodes, traffic,
//! radio); [`ProtocolParams`] the protocol constants (Eqs. 1–14). Defaults
//! reproduce the paper's Sec. 5 setup; see `DESIGN.md` for the handful of
//! constants the OCR of the paper dropped and how they were chosen.

use dftmsn_radio::channel::ChannelParams;
use dftmsn_radio::energy::EnergyModel;
use dftmsn_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A scenario or protocol parameter set failed validation.
///
/// The message names the first violated constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidParams(String);

impl InvalidParams {
    fn new(msg: impl Into<String>) -> Self {
        InvalidParams(msg.into())
    }

    /// The human-readable constraint violation.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for InvalidParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for InvalidParams {}

/// Which mobility model drives the sensors.
///
/// The paper evaluates on [`MobilityKind::ZoneBased`]; the others support
/// sensitivity studies (e.g. how much the home-zone bias matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MobilityKind {
    /// The paper's home-zone model (Sec. 5).
    ZoneBased,
    /// Classic random waypoint over the whole area.
    RandomWaypoint,
    /// Random direction with boundary reflection.
    RandomWalk,
}

/// Deployment, traffic and radio configuration (paper Sec. 5).
///
/// Marked `#[non_exhaustive]`: construct via [`ScenarioParams::paper_default`]
/// or [`ScenarioParams::smoke_test`] and adjust fields (they stay public) or
/// chain the `with_*` builders — new knobs can then land without a breaking
/// change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ScenarioParams {
    /// Deployment area width (m).
    pub area_width_m: f64,
    /// Deployment area height (m).
    pub area_height_m: f64,
    /// Zone grid columns.
    pub zone_cols: usize,
    /// Zone grid rows.
    pub zone_rows: usize,
    /// Number of wearable sensor nodes.
    pub sensors: usize,
    /// Number of high-end sink nodes.
    pub sinks: usize,
    /// Minimum node speed (m/s).
    pub speed_min_mps: f64,
    /// Maximum node speed (m/s).
    pub speed_max_mps: f64,
    /// Probability of crossing a non-home zone boundary (paper: 0.2).
    pub zone_exit_prob: f64,
    /// Sensor queue capacity in messages (paper: 200).
    pub queue_capacity: usize,
    /// Mean Poisson data-generation interval per sensor (s; paper: 120).
    pub data_interval_secs: f64,
    /// Data message size (bits; paper: 1000).
    pub data_bits: u64,
    /// Control packet size (bits; paper: 50).
    pub control_bits: u64,
    /// Radio channel (bandwidth, range).
    pub channel: ChannelParams,
    /// Radio energy model.
    pub energy: EnergyModel,
    /// Simulated duration (s; paper: 25 000).
    pub duration_secs: u64,
    /// Mobility integration step (s).
    pub mobility_tick_secs: f64,
    /// Sensor mobility model.
    pub mobility: MobilityKind,
    /// Number of the sinks that are mobile — "carried by a subset of
    /// people" (paper Sec. 1) — instead of fixed at strategic locations.
    /// Must not exceed `sinks`.
    pub mobile_sinks: usize,
}

impl ScenarioParams {
    /// The paper's default setup: 100 sensors, 3 sinks, 150×150 m² in 25
    /// zones, 0–5 m/s, 10 m range, 10 kbps, 25 000 s.
    #[must_use]
    pub fn paper_default() -> Self {
        ScenarioParams {
            area_width_m: 150.0,
            area_height_m: 150.0,
            zone_cols: 5,
            zone_rows: 5,
            sensors: 100,
            sinks: 3,
            speed_min_mps: 0.0,
            speed_max_mps: 5.0,
            zone_exit_prob: 0.2,
            queue_capacity: 200,
            data_interval_secs: 120.0,
            data_bits: 1000,
            control_bits: 50,
            channel: ChannelParams::paper_default(),
            energy: EnergyModel::berkeley_mote(),
            duration_secs: 25_000,
            mobility_tick_secs: 0.5,
            mobility: MobilityKind::ZoneBased,
            mobile_sinks: 0,
        }
    }

    /// A small, fast scenario for tests and examples (same physics,
    /// fewer nodes, shorter run).
    #[must_use]
    pub fn smoke_test() -> Self {
        ScenarioParams {
            sensors: 30,
            sinks: 2,
            duration_secs: 1_500,
            ..Self::paper_default()
        }
    }

    /// Sets the number of sink nodes (builder style).
    #[must_use]
    pub fn with_sinks(mut self, sinks: usize) -> Self {
        self.sinks = sinks;
        self
    }

    /// Sets the number of sensor nodes (builder style).
    #[must_use]
    pub fn with_sensors(mut self, sensors: usize) -> Self {
        self.sensors = sensors;
        self
    }

    /// Sets the maximum node speed (builder style).
    #[must_use]
    pub fn with_max_speed(mut self, v: f64) -> Self {
        self.speed_max_mps = v;
        self
    }

    /// Sets the simulated duration in seconds (builder style).
    #[must_use]
    pub fn with_duration_secs(mut self, secs: u64) -> Self {
        self.duration_secs = secs;
        self
    }

    /// Total number of nodes (sensors + sinks).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.sensors + self.sinks
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), InvalidParams> {
        if self.sensors == 0 {
            return Err(InvalidParams::new("need at least one sensor"));
        }
        if self.sinks == 0 {
            return Err(InvalidParams::new("need at least one sink"));
        }
        if self.zone_cols == 0 || self.zone_rows == 0 {
            return Err(InvalidParams::new("zone grid must be non-empty"));
        }
        if !(self.area_width_m > 0.0 && self.area_height_m > 0.0) {
            return Err(InvalidParams::new("area must be positive"));
        }
        if !(self.speed_min_mps >= 0.0 && self.speed_max_mps >= self.speed_min_mps) {
            return Err(InvalidParams::new("invalid speed range"));
        }
        if !(0.0..=1.0).contains(&self.zone_exit_prob) {
            return Err(InvalidParams::new("zone_exit_prob must be a probability"));
        }
        if self.queue_capacity == 0 {
            return Err(InvalidParams::new("queue capacity must be positive"));
        }
        if self.data_interval_secs <= 0.0 {
            return Err(InvalidParams::new("data interval must be positive"));
        }
        if self.channel.bandwidth_bps == 0 {
            return Err(InvalidParams::new("channel bandwidth must be positive"));
        }
        if self.channel.range_m <= 0.0 {
            return Err(InvalidParams::new("transmission range must be positive"));
        }
        if self.mobility_tick_secs <= 0.0 {
            return Err(InvalidParams::new("mobility tick must be positive"));
        }
        if self.duration_secs == 0 {
            return Err(InvalidParams::new("duration must be positive"));
        }
        if self.mobile_sinks > self.sinks {
            return Err(InvalidParams::new("mobile_sinks cannot exceed sinks"));
        }
        Ok(())
    }
}

impl Default for ScenarioParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Protocol constants (paper Secs. 3–4). Field names follow the paper's
/// notation where one exists.
///
/// Marked `#[non_exhaustive]`: construct via
/// [`ProtocolParams::paper_default`] and adjust fields or chain the
/// `with_*` builders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ProtocolParams {
    /// Eq. 1 memory constant α ∈ [0, 1].
    pub alpha: f64,
    /// Eq. 1 timeout Δ: the delivery probability decays when no
    /// transmission happened within this interval (s).
    pub xi_timeout_secs: f64,
    /// Delivery threshold R of the receiver-selection loop (Sec. 3.2.2).
    pub delivery_threshold_r: f64,
    /// Messages whose FTD exceeds this are dropped from the queue
    /// (Sec. 3.1.2).
    pub ftd_drop_threshold: f64,
    /// L: a node sleeps after this many consecutive cycles without acting
    /// as sender or receiver (Sec. 3.2).
    pub inactivity_cycles_l: usize,
    /// S: length of the transmission-success history window (Eq. 4).
    pub history_window_s: usize,
    /// H: buffer-urgency threshold of Eq. 6 (also bounds T_max via Eq. 8).
    pub sleep_h: f64,
    /// FTD bound F̄ used by Eq. 5's urgency count (messages with FTD below
    /// it are "urgent").
    pub urgency_ftd_bound: f64,
    /// Minimum sleeping period T_min (s). Must respect Eq. 7; the default
    /// (1 s) is far above the Berkeley-mote bound (~16 ms).
    pub t_min_secs: f64,
    /// Target collision probability H for Eq. 13 (RTS/preamble phase).
    pub tau_collision_target: f64,
    /// Upper bound on the adaptive τ_max search (listening slots).
    pub tau_max_cap_slots: u64,
    /// Fixed τ_max (slots) used when optimization is disabled (NOOPT).
    pub tau_max_fixed_slots: u64,
    /// Target collision probability for Eq. 14 (CTS window search).
    pub cts_collision_target: f64,
    /// Upper bound on the adaptive contention-window search (slots).
    pub cts_window_cap: u64,
    /// Fixed contention window W (slots) when optimization is disabled.
    pub cts_window_fixed: u64,
    /// Fixed sleeping period (s) when sleep optimization is disabled
    /// (NOOPT still sleeps, with a constant period).
    pub fixed_sleep_secs: f64,
    /// Frame-processing gap added to CTS/ACK slots and guard margins (s).
    pub proc_gap_secs: f64,
    /// Idle backoff range between failed attempts while awake (s).
    pub backoff_min_secs: f64,
    /// Upper end of the idle backoff range (s).
    pub backoff_max_secs: f64,
    /// Awake window a node with an empty queue spends listening per cycle
    /// before re-evaluating the sleep policy (s).
    pub receiver_window_secs: f64,
    /// Neighbor-table entries older than this are ignored (s).
    pub neighbor_ttl_secs: f64,
}

impl ProtocolParams {
    /// Defaults documented in DESIGN.md §4.
    #[must_use]
    pub fn paper_default() -> Self {
        ProtocolParams {
            alpha: 0.25,
            xi_timeout_secs: 30.0,
            delivery_threshold_r: 0.95,
            ftd_drop_threshold: 0.995,
            inactivity_cycles_l: 3,
            history_window_s: 10,
            sleep_h: 0.9,
            urgency_ftd_bound: 0.5,
            t_min_secs: 0.4,
            tau_collision_target: 0.1,
            tau_max_cap_slots: 32,
            tau_max_fixed_slots: 8,
            cts_collision_target: 0.1,
            cts_window_cap: 32,
            cts_window_fixed: 8,
            fixed_sleep_secs: 5.0,
            proc_gap_secs: 0.002,
            backoff_min_secs: 0.2,
            backoff_max_secs: 1.0,
            receiver_window_secs: 0.5,
            neighbor_ttl_secs: 30.0,
        }
    }

    /// Sets the Eq. 1 memory constant α (builder style).
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the Eq. 1 decay timeout Δ in seconds (builder style).
    #[must_use]
    pub fn with_xi_timeout_secs(mut self, secs: f64) -> Self {
        self.xi_timeout_secs = secs;
        self
    }

    /// Sets the delivery threshold R (builder style).
    #[must_use]
    pub fn with_delivery_threshold_r(mut self, r: f64) -> Self {
        self.delivery_threshold_r = r;
        self
    }

    /// Sets the FTD drop threshold (builder style).
    #[must_use]
    pub fn with_ftd_drop_threshold(mut self, threshold: f64) -> Self {
        self.ftd_drop_threshold = threshold;
        self
    }

    /// Sets the minimum sleeping period T_min in seconds (builder style).
    #[must_use]
    pub fn with_t_min_secs(mut self, secs: f64) -> Self {
        self.t_min_secs = secs;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), InvalidParams> {
        for (name, p) in [
            ("alpha", self.alpha),
            ("delivery_threshold_r", self.delivery_threshold_r),
            ("ftd_drop_threshold", self.ftd_drop_threshold),
            ("sleep_h", self.sleep_h),
            ("urgency_ftd_bound", self.urgency_ftd_bound),
            ("tau_collision_target", self.tau_collision_target),
            ("cts_collision_target", self.cts_collision_target),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(InvalidParams::new(format!(
                    "{name} must be in [0,1], got {p}"
                )));
            }
        }
        if self.sleep_h <= 0.0 {
            return Err(InvalidParams::new(
                "sleep_h must be positive (Eq. 8 divides by it)",
            ));
        }
        if self.history_window_s < 2 {
            return Err(InvalidParams::new("history window S must be at least 2"));
        }
        if self.inactivity_cycles_l == 0 {
            return Err(InvalidParams::new("L must be positive"));
        }
        if self.t_min_secs <= 0.0 || self.fixed_sleep_secs <= 0.0 {
            return Err(InvalidParams::new("sleep periods must be positive"));
        }
        if self.tau_max_cap_slots == 0
            || self.tau_max_fixed_slots == 0
            || self.cts_window_cap == 0
            || self.cts_window_fixed == 0
        {
            return Err(InvalidParams::new("slot counts must be positive"));
        }
        if self.backoff_min_secs < 0.0 || self.backoff_max_secs < self.backoff_min_secs {
            return Err(InvalidParams::new("invalid backoff range"));
        }
        if self.xi_timeout_secs <= 0.0 {
            return Err(InvalidParams::new("xi timeout must be positive"));
        }
        Ok(())
    }

    /// The maximum sleeping period T_max of Eq. 8:
    /// `T_max = (S − 1)/H · T_min`.
    #[must_use]
    pub fn t_max(&self) -> SimDuration {
        SimDuration::from_secs_f64(
            (self.history_window_s as f64 - 1.0) / self.sleep_h * self.t_min_secs,
        )
    }
}

impl Default for ProtocolParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        ScenarioParams::paper_default().validate().unwrap();
        ProtocolParams::paper_default().validate().unwrap();
    }

    #[test]
    fn paper_defaults_match_the_paper() {
        let s = ScenarioParams::paper_default();
        assert_eq!(s.sensors, 100);
        assert_eq!(s.sinks, 3);
        assert_eq!(s.zone_cols * s.zone_rows, 25);
        assert_eq!(s.queue_capacity, 200);
        assert_eq!(s.data_bits, 1000);
        assert_eq!(s.control_bits, 50);
        assert_eq!(s.channel.bandwidth_bps, 10_000);
        assert_eq!(s.channel.range_m, 10.0);
        assert_eq!(s.duration_secs, 25_000);
        assert_eq!(s.data_interval_secs, 120.0);
        assert_eq!(s.speed_max_mps, 5.0);
        assert_eq!(s.zone_exit_prob, 0.2);
    }

    #[test]
    fn builders_compose() {
        let s = ScenarioParams::paper_default()
            .with_sinks(7)
            .with_sensors(50)
            .with_max_speed(2.0)
            .with_duration_secs(100);
        assert_eq!(s.sinks, 7);
        assert_eq!(s.sensors, 50);
        assert_eq!(s.speed_max_mps, 2.0);
        assert_eq!(s.duration_secs, 100);
        assert_eq!(s.node_count(), 57);
        s.validate().unwrap();
    }

    #[test]
    fn t_min_respects_eq7_bound() {
        let p = ProtocolParams::paper_default();
        let s = ScenarioParams::paper_default();
        assert!(p.t_min_secs >= s.energy.min_sleep().as_secs_f64());
    }

    #[test]
    fn t_max_follows_eq8() {
        let p = ProtocolParams::paper_default();
        // (10 - 1) / 0.9 * 0.4 s = 4 s.
        assert!((p.t_max().as_secs_f64() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut s = ScenarioParams::paper_default();
        s.sinks = 0;
        assert!(s.validate().is_err());

        let mut s = ScenarioParams::paper_default();
        s.speed_max_mps = -1.0;
        assert!(s.validate().is_err());

        let mut p = ProtocolParams::paper_default();
        p.alpha = 1.5;
        assert!(p.validate().is_err());

        let mut p = ProtocolParams::paper_default();
        p.history_window_s = 1;
        assert!(p.validate().is_err());

        let mut p = ProtocolParams::paper_default();
        p.backoff_max_secs = 0.0;
        p.backoff_min_secs = 1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn smoke_test_scenario_is_valid_and_small() {
        let s = ScenarioParams::smoke_test();
        s.validate().unwrap();
        assert!(s.sensors < ScenarioParams::paper_default().sensors);
        assert!(s.duration_secs < ScenarioParams::paper_default().duration_secs);
    }
}
