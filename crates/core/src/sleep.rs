//! Adaptive periodic sleeping (paper Sec. 4.1, Eqs. 4–8).
//!
//! A node tracks in how many of its last *S* working cycles it transmitted
//! successfully (ρᵢ, Eq. 4) and how urgent its buffered messages are
//! (αᵢ, Eq. 5). The sleeping period interpolates between `T_min` (busy or
//! urgent) and `T_max` (idle and relaxed):
//!
//! ```text
//! Eq. 6:  Tᵢ = max(T_min, T_min · (1/ρᵢ − 1) / (1 − H + αᵢ))
//! Eq. 7:  T_min ≥ 2·P_change / (P_idle − P_sleep)
//! Eq. 8:  T_max = (S − 1)/H · T_min
//! ```

use crate::params::ProtocolParams;
use dftmsn_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Per-node sleep controller implementing Eqs. 4–8.
///
/// # Examples
///
/// ```
/// use dftmsn_core::params::ProtocolParams;
/// use dftmsn_core::sleep::SleepController;
///
/// let p = ProtocolParams::paper_default();
/// let mut ctl = SleepController::new(p.history_window_s);
/// for _ in 0..10 {
///     ctl.record_cycle(false); // nothing but failures
/// }
/// let idle_sleep = ctl.sleep_duration(0.0, &p);
/// for _ in 0..10 {
///     ctl.record_cycle(true); // the node becomes busy again
/// }
/// let busy_sleep = ctl.sleep_duration(0.0, &p);
/// assert!(busy_sleep < idle_sleep);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SleepController {
    window: usize,
    history: VecDeque<bool>,
}

impl SleepController {
    /// Creates a controller with a success-history window of `s` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `s < 2` (Eq. 8 needs `S − 1 ≥ 1`).
    #[must_use]
    pub fn new(s: usize) -> Self {
        assert!(s >= 2, "history window S must be at least 2");
        SleepController {
            window: s,
            history: VecDeque::with_capacity(s),
        }
    }

    /// The history window size S.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// The recorded cycle outcomes, oldest first, for checkpointing.
    pub fn history(&self) -> impl Iterator<Item = bool> + '_ {
        self.history.iter().copied()
    }

    /// Rebuilds a controller from checkpointed state: the window size and
    /// the recorded outcomes, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `s < 2` or more than `s` outcomes are supplied.
    #[must_use]
    pub fn from_history(s: usize, outcomes: impl IntoIterator<Item = bool>) -> Self {
        let mut ctl = Self::new(s);
        for outcome in outcomes {
            assert!(ctl.history.len() < s, "sleep history exceeds window");
            ctl.history.push_back(outcome);
        }
        ctl
    }

    /// Records whether the just-finished working cycle transmitted
    /// successfully.
    pub fn record_cycle(&mut self, success: bool) {
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(success);
    }

    /// Number of successes in the recorded window.
    #[must_use]
    pub fn successes(&self) -> usize {
        self.history.iter().filter(|&&s| s).count()
    }

    /// ρᵢ of Eq. 4: the success fraction over the last S cycles, floored
    /// at `1/S` so Eq. 6 stays finite.
    ///
    /// **Documented prior:** before any cycle completes (zero recorded
    /// cycles) the controller reports exactly 1 — an optimistic "fully
    /// busy" estimate that makes Eq. 6 yield `T_min`, so a fresh node never
    /// oversleeps its first contacts. This branch exists so the zero-cycle
    /// case never reaches the 0/0-adjacent `successes/S` division below.
    #[must_use]
    pub fn rho(&self) -> f64 {
        if self.history.is_empty() {
            return 1.0;
        }
        let s = self.window as f64;
        let successes = self.successes() as f64;
        if successes == 0.0 {
            1.0 / s
        } else {
            successes / s
        }
    }

    /// The sleeping period Tᵢ of Eq. 6, clamped to `[T_min, T_max]`
    /// (Eq. 8) and never below the event-queue tick granularity: a
    /// degenerate `T_min` of zero must still schedule a wake-up strictly in
    /// the future, or the sleep/wake cycle would livelock at the current
    /// simulation instant.
    ///
    /// `urgency` is αᵢ of Eq. 5 (fraction of buffer slots holding messages
    /// below the urgency FTD bound).
    ///
    /// # Panics
    ///
    /// Panics if `urgency` is outside `[0, 1]`.
    #[must_use]
    pub fn sleep_duration(&self, urgency: f64, params: &ProtocolParams) -> SimDuration {
        assert!(
            (0.0..=1.0).contains(&urgency),
            "urgency {urgency} outside [0,1]"
        );
        let rho = self.rho();
        let t_min = params.t_min_secs;
        let raw = t_min * (1.0 / rho - 1.0) / (1.0 - params.sleep_h + urgency);
        let t = raw.max(t_min);
        SimDuration::from_secs_f64(t)
            .clamp(SimDuration::from_secs_f64(t_min), params.t_max())
            .max(SimDuration::from_ticks(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ProtocolParams {
        // Pin the Eq. 6 constants so the spot checks below stay valid even
        // if the tuned defaults move.
        ProtocolParams {
            t_min_secs: 1.0,
            sleep_h: 0.5,
            history_window_s: 10,
            ..ProtocolParams::paper_default()
        }
    }

    fn filled(successes: usize, total: usize) -> SleepController {
        let mut c = SleepController::new(params().history_window_s);
        for i in 0..total {
            c.record_cycle(i < successes);
        }
        c
    }

    #[test]
    fn rho_matches_eq4() {
        // s_i successes out of S = 10.
        assert!((filled(4, 10).rho() - 0.4).abs() < 1e-12);
        // Zero successes floor at 1/S.
        assert!((filled(0, 10).rho() - 0.1).abs() < 1e-12);
        // Fresh controller is optimistic.
        assert_eq!(SleepController::new(10).rho(), 1.0);
    }

    #[test]
    fn window_slides() {
        let mut c = SleepController::new(3);
        c.record_cycle(true);
        c.record_cycle(true);
        c.record_cycle(true);
        assert_eq!(c.successes(), 3);
        c.record_cycle(false);
        c.record_cycle(false);
        c.record_cycle(false);
        assert_eq!(c.successes(), 0, "old successes aged out");
    }

    #[test]
    fn fully_successful_node_sleeps_t_min() {
        let p = params();
        let c = filled(10, 10);
        assert_eq!(
            c.sleep_duration(0.0, &p),
            SimDuration::from_secs_f64(p.t_min_secs)
        );
    }

    #[test]
    fn idle_node_sleeps_up_to_t_max() {
        let p = params();
        let c = filled(0, 10);
        // ρ = 0.1 → raw = 1·9/(1−0.5+0) = 18 s = T_max exactly.
        let t = c.sleep_duration(0.0, &p);
        assert_eq!(t, p.t_max());
    }

    #[test]
    fn urgency_shortens_sleep() {
        let p = params();
        let c = filled(2, 10);
        let relaxed = c.sleep_duration(0.0, &p);
        let urgent = c.sleep_duration(1.0, &p);
        assert!(urgent < relaxed, "{urgent} !< {relaxed}");
        assert!(urgent >= SimDuration::from_secs_f64(p.t_min_secs));
    }

    #[test]
    fn eq6_value_spot_check() {
        let p = params();
        // ρ = 0.5, α = 0.5, H = 0.5 → T = 1·(1/0.5 − 1)/(1 − 0.5 + 0.5) = 1 s.
        let c = filled(5, 10);
        let t = c.sleep_duration(0.5, &p).as_secs_f64();
        assert!((t - 1.0).abs() < 1e-9, "got {t}");
        // ρ = 0.2, α = 0 → T = 1·4/0.5 = 8 s.
        let c = filled(2, 10);
        let t = c.sleep_duration(0.0, &p).as_secs_f64();
        assert!((t - 8.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn result_always_within_bounds() {
        let p = params();
        for succ in 0..=10 {
            for urg in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let t = filled(succ, 10).sleep_duration(urg, &p);
                assert!(t >= SimDuration::from_secs_f64(p.t_min_secs));
                assert!(t <= p.t_max());
            }
        }
    }

    #[test]
    fn fresh_controller_prior_yields_t_min() {
        // The zero-cycle prior ρ = 1 must short-circuit Eq. 6 to T_min
        // without touching the successes/S division.
        let p = params();
        let c = SleepController::new(p.history_window_s);
        assert_eq!(c.rho(), 1.0);
        assert_eq!(
            c.sleep_duration(0.0, &p),
            SimDuration::from_secs_f64(p.t_min_secs)
        );
    }

    #[test]
    fn degenerate_t_min_still_sleeps_one_tick() {
        // T_min = 0 collapses Eq. 6 and Eq. 8 to zero; the controller must
        // still return a strictly positive duration so the wake-up event
        // lands in the future.
        let p = ProtocolParams {
            t_min_secs: 0.0,
            ..params()
        };
        for succ in [0, 5, 10] {
            let t = filled(succ, 10).sleep_duration(0.0, &p);
            assert!(t >= SimDuration::from_ticks(1), "succ {succ}: {t}");
        }
        let fresh = SleepController::new(10).sleep_duration(1.0, &p);
        assert_eq!(fresh, SimDuration::from_ticks(1));
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_urgency_panics() {
        let _ = filled(1, 1).sleep_duration(1.5, &params());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_window_panics() {
        let _ = SleepController::new(1);
    }
}
