//! The forwarding-policy seam: every protocol decision point behind one
//! trait (DESIGN.md § 9).
//!
//! The paper's OPT/NOOPT/NOSLEEP/ZBR comparison is really a comparison of
//! *policies* — who qualifies as a receiver, which CTS repliers get a
//! copy, what happens to the sender's retained copy, how the routing
//! metric updates, and whether the MAC adapts its windows and sleeping.
//! [`ForwardingPolicy`] names those decision points explicitly; the
//! simulation engine calls them and nothing else.
//!
//! Three implementations ship:
//!
//! * [`Builtin`] — the six [`ProtocolKind`](crate::variants::ProtocolKind)
//!   variants, expressed through
//!   the trait **bit-identically** to the pre-seam engine (the golden
//!   determinism baselines enforce this);
//! * [`TwoHopRelay`] — Altman et al.'s optimal-control two-hop relay:
//!   the source spreads up to `budget` copies to relays, relays hand
//!   their copy to sinks only;
//! * [`MeetingRate`] — Shaghaghian & Coates-style forwarding on a
//!   per-node sink inter-contact-rate estimator.
//!
//! Dispatch is static: the sealed [`Policy`] enum-of-impls costs one
//! predictable branch per decision, which the `scale_check` CI gate
//! verifies stays inside the ns/event budget. Checkpoints carry the
//! policy as a trailing frame of `dftmsn-ckpt/1` (see `world_ckpt.rs`);
//! pre-seam checkpoints decode as [`Policy::builtin`].

use crate::delivery::DeliveryProb;
use crate::ftd::Ftd;
use crate::message::{Message, MessageId};
use crate::neighbor::{select_receivers_into, Candidate, Selection, SelectionScratch};
use crate::queue::FtdQueue;
use crate::variants::{MetricKind, SelectionKind, VariantConfig};
use dftmsn_radio::ids::NodeId;
use dftmsn_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::Builtin {}
    impl Sealed for super::TwoHopRelay {}
    impl Sealed for super::MeetingRate {}
    impl Sealed for super::Policy {}
}

/// The MAC-adaptation knobs a policy exposes (cached by the engine so the
/// per-event hot paths read plain bools, not a policy dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacControls {
    /// Whether the node ever turns its radio off.
    pub sleeps: bool,
    /// Eq. 6 adaptive sleeping vs. a fixed period.
    pub adaptive_sleep: bool,
    /// Eq. 13 adaptive τ_max vs. a fixed value.
    pub adaptive_tau: bool,
    /// Eq. 14 adaptive contention window vs. a fixed value.
    pub adaptive_window: bool,
}

impl MacControls {
    /// OPT-like controls: everything adaptive, sleeping on. The default
    /// for policies that replace routing but keep the optimized MAC.
    pub const OPT: MacControls = MacControls {
        sleeps: true,
        adaptive_sleep: true,
        adaptive_tau: true,
        adaptive_window: true,
    };
}

impl From<VariantConfig> for MacControls {
    fn from(c: VariantConfig) -> Self {
        MacControls {
            sleeps: c.sleeps,
            adaptive_sleep: c.adaptive_sleep,
            adaptive_tau: c.adaptive_tau,
            adaptive_window: c.adaptive_window,
        }
    }
}

/// What a prospective receiver knows about itself when an RTS arrives.
#[derive(Debug)]
pub struct RxView<'a> {
    /// The receiver's current routing metric (ξ).
    pub xi: f64,
    /// The receiver's data queue.
    pub queue: &'a FtdQueue,
}

/// The advertisement carried by an RTS frame.
#[derive(Debug, Clone, Copy)]
pub struct RtsInfo {
    /// The advertising sender.
    pub sender: NodeId,
    /// The sender's advertised metric.
    pub xi: f64,
    /// The sender's advertised per-message figure — the message FTD for
    /// the builtin variants; policies may repurpose it (TwoHopRelay
    /// advertises its remaining copy budget here).
    pub ftd: f64,
    /// The message on offer.
    pub msg: MessageId,
}

/// Sender-side context for receiver selection.
#[derive(Debug, Clone, Copy)]
pub struct SelectCtx {
    /// The selecting sender.
    pub sender: NodeId,
    /// The sender's current routing metric.
    pub sender_metric: f64,
    /// The message being offered (FTD, origin and id included).
    pub msg: Message,
    /// The paper's combined-delivery threshold *R*.
    pub threshold_r: f64,
}

/// The acknowledged receiver set of a completed multicast.
#[derive(Debug, Clone, Copy)]
pub struct Confirmed<'a> {
    /// ξ of every receiver that ACKed, in schedule order.
    pub xis: &'a [f64],
    /// Whether any confirmed receiver is a sink.
    pub any_sink: bool,
}

/// What happens to the sender's retained copy after a confirmed
/// multicast. The engine applies the fate; the policy only decides it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CopyFate {
    /// A sink holds the message now: remove the retained copy.
    Delivered,
    /// The copy moved to another carrier: remove it (no drop counted).
    Moved,
    /// Keep the retained copy unchanged.
    Retain,
    /// Keep the copy but re-rank it at the given FTD (Eq. 3).
    Demote(Ftd),
    /// Purge the copy as sufficiently replicated (counted as an FTD
    /// drop and traced as [`crate::trace::DropReason::FtdThreshold`]).
    Drop,
}

/// A forwarding policy: the protocol's decision points as one interface.
///
/// Sealed — the engine dispatches statically over [`Policy`], and the
/// checkpoint codec must know every implementation. To add a policy, add
/// a variant to [`Policy`] (see DESIGN.md § 9 for the checklist).
pub trait ForwardingPolicy: sealed::Sealed {
    /// The run label reported by [`crate::report::SimReport::protocol`].
    fn label(&self) -> &'static str;

    /// The MAC-adaptation knobs (cached by the engine at attach time).
    fn mac(&self) -> MacControls;

    /// Sizes per-node state; called once when the policy is attached to
    /// a world of `nodes` nodes (and after checkpoint restore).
    fn init(&mut self, nodes: usize);

    /// Does a *non-sink* receiver qualify for the advertised RTS? Sinks
    /// always qualify; the engine short-circuits them before this call.
    fn qualifies(&self, rx: &RxView<'_>, rts: &RtsInfo) -> bool;

    /// Picks receivers from the CTS repliers, writing into `out`
    /// (cleared first). `scratch` is pooled working memory.
    fn select(
        &self,
        ctx: &SelectCtx,
        candidates: &[Candidate],
        scratch: &mut SelectionScratch,
        out: &mut Selection,
    );

    /// The `(ξ, ftd)` pair to advertise in the RTS for `msg`.
    fn advertise(&self, sender: NodeId, metric: f64, msg: &Message) -> (f64, f64);

    /// A multicast of `msg` was confirmed by `confirmed`. Updates the
    /// sender's routing metric in place and decides the retained copy's
    /// fate. `alpha` and `ftd_drop_threshold` come from the protocol
    /// constants.
    fn on_multicast(
        &mut self,
        sender: NodeId,
        msg: &Message,
        confirmed: &Confirmed<'_>,
        alpha: f64,
        ftd_drop_threshold: f64,
        metric: &mut DeliveryProb,
    ) -> CopyFate;

    /// A frame from `src` was heard by (alive, non-sink) node `rx`.
    /// Returns `Some(new_metric)` when the policy's estimator moves the
    /// node's routing metric. Must not draw randomness.
    fn on_frame_from(
        &mut self,
        rx: NodeId,
        src: NodeId,
        src_is_sink: bool,
        now: SimTime,
    ) -> Option<f64>;

    /// Node `at`'s queued copy of `msg` was discarded outside the
    /// multicast path (buffer eviction, crash purge); policies holding
    /// per-message bookkeeping reclaim it here.
    fn on_copy_discarded(&mut self, at: NodeId, msg: &Message);
}

// ---------------------------------------------------------------------
// Builtin: the six paper variants through the seam
// ---------------------------------------------------------------------

/// The six [`crate::variants::ProtocolKind`] variants expressed through
/// the policy trait. Each decision point reproduces the pre-seam engine
/// literally, so every golden determinism baseline holds bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Builtin {
    config: VariantConfig,
}

impl Builtin {
    /// Wraps a variant configuration.
    #[must_use]
    pub fn new(config: VariantConfig) -> Self {
        Builtin { config }
    }

    /// The wrapped configuration.
    #[must_use]
    pub fn config(&self) -> VariantConfig {
        self.config
    }
}

impl ForwardingPolicy for Builtin {
    fn label(&self) -> &'static str {
        self.config.kind.label()
    }

    fn mac(&self) -> MacControls {
        MacControls::from(self.config)
    }

    fn init(&mut self, _nodes: usize) {}

    #[inline]
    fn qualifies(&self, rx: &RxView<'_>, rts: &RtsInfo) -> bool {
        match self.config.selection {
            SelectionKind::FtdThreshold => {
                rx.xi > rts.xi
                    && rx.queue.available_space_for(Ftd::new(rts.ftd)) > 0
                    && !rx.queue.contains(rts.msg)
            }
            SelectionKind::SingleBest => {
                rx.xi > rts.xi && !rx.queue.is_full() && !rx.queue.contains(rts.msg)
            }
            SelectionKind::SinkOnly => false,
            SelectionKind::AllResponders => !rx.queue.is_full() && !rx.queue.contains(rts.msg),
        }
    }

    fn select(
        &self,
        ctx: &SelectCtx,
        candidates: &[Candidate],
        scratch: &mut SelectionScratch,
        out: &mut Selection,
    ) {
        out.clear();
        match self.config.selection {
            SelectionKind::FtdThreshold => select_receivers_into(
                ctx.sender_metric,
                ctx.msg.ftd,
                candidates,
                ctx.threshold_r,
                scratch,
                out,
            ),
            SelectionKind::SingleBest | SelectionKind::SinkOnly => {
                // total_cmp instead of partial_cmp().expect: a NaN metric
                // is a bug upstream, but selection must not panic on it.
                let best = candidates
                    .iter()
                    .filter(|c| c.buffer_space > 0 && c.xi.is_finite())
                    .max_by(|a, b| a.xi.total_cmp(&b.xi).then_with(|| b.id.cmp(&a.id)));
                if let Some(c) = best {
                    out.receivers
                        .push((c.id, ctx.msg.ftd.receiver_copy(ctx.sender_metric, &[])));
                    out.receiver_xis.push(c.xi);
                    out.combined_delivery = ctx.msg.ftd.combined_delivery(&out.receiver_xis);
                }
            }
            SelectionKind::AllResponders => {
                for c in candidates.iter().filter(|c| c.buffer_space > 0) {
                    out.receivers.push((c.id, Ftd::NEW));
                    out.receiver_xis.push(c.xi);
                }
                out.combined_delivery = ctx.msg.ftd.combined_delivery(&out.receiver_xis);
            }
        }
    }

    #[inline]
    fn advertise(&self, _sender: NodeId, metric: f64, msg: &Message) -> (f64, f64) {
        (metric, msg.ftd.value())
    }

    fn on_multicast(
        &mut self,
        _sender: NodeId,
        msg: &Message,
        confirmed: &Confirmed<'_>,
        alpha: f64,
        ftd_drop_threshold: f64,
        metric: &mut DeliveryProb,
    ) -> CopyFate {
        // Eq. 1 (or the ZBR history rule) on a successful transmission.
        match self.config.metric {
            MetricKind::DeliveryProb => {
                let best = confirmed.xis.iter().copied().fold(0.0f64, f64::max);
                metric.on_transmission(DeliveryProb::new(best.clamp(0.0, 1.0)), alpha);
            }
            MetricKind::SinkHistory => {
                if confirmed.any_sink {
                    metric.on_transmission(DeliveryProb::SINK, alpha);
                }
            }
        }
        match self.config.selection {
            SelectionKind::FtdThreshold => {
                if confirmed.any_sink {
                    // Highest possible FTD: drop immediately (delivered).
                    CopyFate::Delivered
                } else {
                    let new_ftd = msg.ftd.after_multicast(confirmed.xis);
                    if new_ftd.value() > ftd_drop_threshold {
                        CopyFate::Drop
                    } else {
                        CopyFate::Demote(new_ftd)
                    }
                }
            }
            // Single-copy transfer: the message moved.
            SelectionKind::SingleBest | SelectionKind::SinkOnly => CopyFate::Moved,
            SelectionKind::AllResponders => {
                if confirmed.any_sink {
                    CopyFate::Delivered
                } else {
                    CopyFate::Retain
                }
            }
        }
    }

    #[inline]
    fn on_frame_from(
        &mut self,
        _rx: NodeId,
        _src: NodeId,
        _src_is_sink: bool,
        _now: SimTime,
    ) -> Option<f64> {
        None
    }

    fn on_copy_discarded(&mut self, _at: NodeId, _msg: &Message) {}
}

// ---------------------------------------------------------------------
// TwoHopRelay
// ---------------------------------------------------------------------

/// Altman et al.'s two-hop relay with an optimal-control copy budget.
///
/// The *source* of a message spreads at most `budget` copies to relays it
/// meets; a *relay* holds its copy until it meets a sink and never
/// re-replicates. The remaining budget rides the RTS `ftd` field (relays
/// advertise 0, so only sinks qualify for their offers), which keeps the
/// two-phase MAC untouched. The MAC runs with the full Sec. 4
/// optimizations ([`MacControls::OPT`]) and the Eq. 1 ξ update, so
/// energy figures compare fairly against OPT.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoHopRelay {
    budget: u32,
    /// Copies spawned so far per *origin-held* message; entries die with
    /// the retained copy (delivery, eviction, crash).
    copies: BTreeMap<MessageId, u32>,
}

impl TwoHopRelay {
    /// Default copy budget *L*.
    pub const DEFAULT_BUDGET: u32 = 4;

    /// A two-hop relay policy with copy budget `budget` (clamped to ≥ 1).
    #[must_use]
    pub fn new(budget: u32) -> Self {
        TwoHopRelay {
            budget: budget.max(1),
            copies: BTreeMap::new(),
        }
    }

    /// The configured copy budget.
    #[must_use]
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Copies already spawned for `msg` at its origin.
    #[must_use]
    pub fn copies_spawned(&self, msg: MessageId) -> u32 {
        self.copies.get(&msg).copied().unwrap_or(0)
    }

    fn remaining(&self, msg: MessageId) -> u32 {
        self.budget.saturating_sub(self.copies_spawned(msg))
    }

    /// Internal: restores the spawn ledger from a checkpoint.
    pub(crate) fn restore_copies(&mut self, entries: impl IntoIterator<Item = (MessageId, u32)>) {
        self.copies = entries.into_iter().collect();
    }

    /// Internal: the spawn ledger in deterministic order, for the
    /// checkpoint codec.
    pub(crate) fn copies_entries(&self) -> Vec<(MessageId, u32)> {
        self.copies.iter().map(|(&m, &c)| (m, c)).collect()
    }
}

impl ForwardingPolicy for TwoHopRelay {
    fn label(&self) -> &'static str {
        "TWOHOP"
    }

    fn mac(&self) -> MacControls {
        MacControls::OPT
    }

    fn init(&mut self, _nodes: usize) {}

    #[inline]
    fn qualifies(&self, rx: &RxView<'_>, rts: &RtsInfo) -> bool {
        // The `ftd` field carries the sender's remaining copy budget:
        // relays advertise 0, so only sinks (pre-qualified) answer them.
        rts.ftd >= 1.0 && !rx.queue.is_full() && !rx.queue.contains(rts.msg)
    }

    fn select(
        &self,
        ctx: &SelectCtx,
        candidates: &[Candidate],
        scratch: &mut SelectionScratch,
        out: &mut Selection,
    ) {
        out.clear();
        let _ = scratch;
        // Sinks (ξ = 1) always take a copy — that is a delivery. The
        // walk is by descending ξ with id tie-breaks, like Sec. 3.2.2.
        let mut order: Vec<&Candidate> = candidates
            .iter()
            .filter(|c| c.buffer_space > 0 && c.xi.is_finite())
            .collect();
        order.sort_by(|a, b| b.xi.total_cmp(&a.xi).then_with(|| a.id.cmp(&b.id)));
        let is_origin = ctx.msg.origin == ctx.sender;
        let mut relays_left = if is_origin {
            self.remaining(ctx.msg.id) as usize
        } else {
            0
        };
        for c in order {
            let is_sink = c.xi >= 1.0;
            if !is_sink {
                if relays_left == 0 {
                    continue;
                }
                relays_left -= 1;
            }
            out.receivers.push((c.id, Ftd::NEW));
            out.receiver_xis.push(c.xi);
        }
        out.combined_delivery = ctx.msg.ftd.combined_delivery(&out.receiver_xis);
    }

    #[inline]
    fn advertise(&self, sender: NodeId, metric: f64, msg: &Message) -> (f64, f64) {
        let remaining = if msg.origin == sender {
            f64::from(self.remaining(msg.id))
        } else {
            0.0
        };
        (metric, remaining)
    }

    fn on_multicast(
        &mut self,
        sender: NodeId,
        msg: &Message,
        confirmed: &Confirmed<'_>,
        alpha: f64,
        _ftd_drop_threshold: f64,
        metric: &mut DeliveryProb,
    ) -> CopyFate {
        // Keep the Eq. 1 ξ update so the adaptive MAC stays calibrated.
        let best = confirmed.xis.iter().copied().fold(0.0f64, f64::max);
        metric.on_transmission(DeliveryProb::new(best.clamp(0.0, 1.0)), alpha);
        if confirmed.any_sink {
            self.copies.remove(&msg.id);
            return CopyFate::Delivered;
        }
        if msg.origin == sender {
            let spawned = confirmed.xis.len() as u32;
            *self.copies.entry(msg.id).or_insert(0) += spawned;
            CopyFate::Retain
        } else {
            // Unreachable by construction (relays only offer to sinks),
            // but a safe fallback: treat it as a single-copy move.
            CopyFate::Moved
        }
    }

    #[inline]
    fn on_frame_from(
        &mut self,
        _rx: NodeId,
        _src: NodeId,
        _src_is_sink: bool,
        _now: SimTime,
    ) -> Option<f64> {
        None
    }

    fn on_copy_discarded(&mut self, at: NodeId, msg: &Message) {
        if msg.origin == at {
            self.copies.remove(&msg.id);
        }
    }
}

// ---------------------------------------------------------------------
// MeetingRate
// ---------------------------------------------------------------------

/// Per-node sink-contact bookkeeping for [`MeetingRate`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct MeetState {
    /// Last instant any sink frame was heard (`None` before the first).
    pub(crate) last_heard: Option<SimTime>,
    /// Start of the most recent debounced contact event.
    pub(crate) contact_at: SimTime,
    /// EWMA of inter-contact gaps, seconds.
    pub(crate) ewma_gap_secs: f64,
    /// Debounced contact events seen so far.
    pub(crate) contacts: u64,
}

/// Meeting-rate-estimation forwarding (after Shaghaghian & Coates).
///
/// Every node estimates its sink inter-contact gap from overheard sink
/// frames (debounced, EWMA-smoothed) and derives a delivery-probability
/// metric `ξ = 1 − exp(−horizon / ĝ)` — the chance of meeting a sink
/// within the delivery horizon under exponential inter-contact times.
/// Forwarding is single-copy to the strictly-better-ξ neighbour, like
/// ZBR, but the metric is measured rather than diffusion-learned. The
/// Δ-timeout decay of Eq. 1 still applies between contacts.
#[derive(Debug, Clone, PartialEq)]
pub struct MeetingRate {
    horizon_secs: f64,
    debounce_secs: f64,
    beta: f64,
    states: Vec<MeetState>,
}

impl MeetingRate {
    /// Default delivery horizon (seconds).
    pub const DEFAULT_HORIZON_SECS: f64 = 600.0;
    /// Default contact debounce window (seconds).
    pub const DEFAULT_DEBOUNCE_SECS: f64 = 5.0;
    /// Default EWMA gain for the gap estimator.
    pub const DEFAULT_BETA: f64 = 0.3;

    /// A meeting-rate policy with the given estimator constants; NaN or
    /// non-positive inputs fall back to the defaults.
    #[must_use]
    pub fn new(horizon_secs: f64, debounce_secs: f64, beta: f64) -> Self {
        let ok = |v: f64, d: f64| if v.is_finite() && v > 0.0 { v } else { d };
        MeetingRate {
            horizon_secs: ok(horizon_secs, Self::DEFAULT_HORIZON_SECS),
            debounce_secs: ok(debounce_secs, Self::DEFAULT_DEBOUNCE_SECS),
            beta: ok(beta, Self::DEFAULT_BETA).min(1.0),
            states: Vec::new(),
        }
    }

    /// The delivery horizon (seconds).
    #[must_use]
    pub fn horizon_secs(&self) -> f64 {
        self.horizon_secs
    }

    /// The contact debounce window (seconds).
    #[must_use]
    pub fn debounce_secs(&self) -> f64 {
        self.debounce_secs
    }

    /// The estimator's EWMA gain.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    pub(crate) fn states(&self) -> &[MeetState] {
        &self.states
    }

    pub(crate) fn restore_states(&mut self, states: Vec<MeetState>) {
        self.states = states;
    }
}

impl Default for MeetingRate {
    fn default() -> Self {
        Self::new(
            Self::DEFAULT_HORIZON_SECS,
            Self::DEFAULT_DEBOUNCE_SECS,
            Self::DEFAULT_BETA,
        )
    }
}

impl ForwardingPolicy for MeetingRate {
    fn label(&self) -> &'static str {
        "MEETRATE"
    }

    fn mac(&self) -> MacControls {
        MacControls::OPT
    }

    fn init(&mut self, nodes: usize) {
        self.states = vec![MeetState::default(); nodes];
    }

    #[inline]
    fn qualifies(&self, rx: &RxView<'_>, rts: &RtsInfo) -> bool {
        rx.xi > rts.xi && !rx.queue.is_full() && !rx.queue.contains(rts.msg)
    }

    fn select(
        &self,
        ctx: &SelectCtx,
        candidates: &[Candidate],
        _scratch: &mut SelectionScratch,
        out: &mut Selection,
    ) {
        out.clear();
        // Single-copy move to the best estimated sink-meeting rate.
        let best = candidates
            .iter()
            .filter(|c| c.buffer_space > 0 && c.xi.is_finite())
            .max_by(|a, b| a.xi.total_cmp(&b.xi).then_with(|| b.id.cmp(&a.id)));
        if let Some(c) = best {
            out.receivers
                .push((c.id, ctx.msg.ftd.receiver_copy(ctx.sender_metric, &[])));
            out.receiver_xis.push(c.xi);
            out.combined_delivery = ctx.msg.ftd.combined_delivery(&out.receiver_xis);
        }
    }

    #[inline]
    fn advertise(&self, _sender: NodeId, metric: f64, msg: &Message) -> (f64, f64) {
        (metric, msg.ftd.value())
    }

    fn on_multicast(
        &mut self,
        _sender: NodeId,
        _msg: &Message,
        confirmed: &Confirmed<'_>,
        _alpha: f64,
        _ftd_drop_threshold: f64,
        _metric: &mut DeliveryProb,
    ) -> CopyFate {
        // The metric is estimator-driven; transmissions do not move it.
        if confirmed.any_sink {
            CopyFate::Delivered
        } else {
            CopyFate::Moved
        }
    }

    fn on_frame_from(
        &mut self,
        rx: NodeId,
        _src: NodeId,
        src_is_sink: bool,
        now: SimTime,
    ) -> Option<f64> {
        if !src_is_sink {
            return None;
        }
        let debounce = self.debounce_secs;
        let state = &mut self.states[rx.index()];
        if let Some(t) = state.last_heard {
            if now.saturating_since(t).as_secs_f64() <= debounce {
                // Same contact event, still in radio range: extend it.
                state.last_heard = Some(now);
                return None;
            }
        }
        // A new debounced contact event begins.
        state.last_heard = Some(now);
        if state.contacts == 0 {
            state.contact_at = now;
            state.contacts = 1;
            return None;
        }
        let gap = now
            .saturating_since(state.contact_at)
            .as_secs_f64()
            .max(1e-6);
        state.ewma_gap_secs = if state.contacts == 1 {
            gap
        } else {
            (1.0 - self.beta) * state.ewma_gap_secs + self.beta * gap
        };
        state.contact_at = now;
        state.contacts += 1;
        let xi = 1.0 - (-self.horizon_secs / state.ewma_gap_secs.max(1e-6)).exp();
        Some(xi.clamp(0.0, 1.0))
    }

    fn on_copy_discarded(&mut self, _at: NodeId, _msg: &Message) {}
}

// ---------------------------------------------------------------------
// The sealed enum-of-impls and its serializable descriptor
// ---------------------------------------------------------------------

/// The engine's policy slot: a sealed enum over every implementation, so
/// dispatch is a single predictable branch (no vtable on the hot path).
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// A builtin paper variant.
    Builtin(Builtin),
    /// Two-hop relay with a copy budget.
    TwoHop(TwoHopRelay),
    /// Meeting-rate-estimation forwarding.
    MeetingRate(MeetingRate),
}

impl Policy {
    /// The builtin policy for a variant configuration.
    #[must_use]
    pub fn builtin(config: VariantConfig) -> Policy {
        Policy::Builtin(Builtin::new(config))
    }

    /// The serializable descriptor reproducing this policy's parameters
    /// (not its runtime state — checkpoints carry that separately).
    #[must_use]
    pub fn spec(&self) -> PolicySpec {
        match self {
            Policy::Builtin(_) => PolicySpec::Builtin,
            Policy::TwoHop(p) => PolicySpec::TwoHop { budget: p.budget() },
            Policy::MeetingRate(p) => PolicySpec::MeetingRate {
                horizon_secs: p.horizon_secs(),
                debounce_secs: p.debounce_secs(),
                beta: p.beta(),
            },
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            Policy::Builtin($p) => $body,
            Policy::TwoHop($p) => $body,
            Policy::MeetingRate($p) => $body,
        }
    };
}

impl ForwardingPolicy for Policy {
    #[inline]
    fn label(&self) -> &'static str {
        dispatch!(self, p => p.label())
    }

    #[inline]
    fn mac(&self) -> MacControls {
        dispatch!(self, p => p.mac())
    }

    #[inline]
    fn init(&mut self, nodes: usize) {
        dispatch!(self, p => p.init(nodes));
    }

    #[inline]
    fn qualifies(&self, rx: &RxView<'_>, rts: &RtsInfo) -> bool {
        dispatch!(self, p => p.qualifies(rx, rts))
    }

    #[inline]
    fn select(
        &self,
        ctx: &SelectCtx,
        candidates: &[Candidate],
        scratch: &mut SelectionScratch,
        out: &mut Selection,
    ) {
        dispatch!(self, p => p.select(ctx, candidates, scratch, out));
    }

    #[inline]
    fn advertise(&self, sender: NodeId, metric: f64, msg: &Message) -> (f64, f64) {
        dispatch!(self, p => p.advertise(sender, metric, msg))
    }

    #[inline]
    fn on_multicast(
        &mut self,
        sender: NodeId,
        msg: &Message,
        confirmed: &Confirmed<'_>,
        alpha: f64,
        ftd_drop_threshold: f64,
        metric: &mut DeliveryProb,
    ) -> CopyFate {
        dispatch!(self, p => p.on_multicast(sender, msg, confirmed, alpha, ftd_drop_threshold, metric))
    }

    #[inline]
    fn on_frame_from(
        &mut self,
        rx: NodeId,
        src: NodeId,
        src_is_sink: bool,
        now: SimTime,
    ) -> Option<f64> {
        dispatch!(self, p => p.on_frame_from(rx, src, src_is_sink, now))
    }

    #[inline]
    fn on_copy_discarded(&mut self, at: NodeId, msg: &Message) {
        dispatch!(self, p => p.on_copy_discarded(at, msg));
    }
}

/// A serializable, parameter-only policy descriptor: what the CLI flag,
/// the bench `RunSpec` and the checkpoint policy frame carry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PolicySpec {
    /// Use the builtin variant the run's `VariantConfig` names.
    #[default]
    Builtin,
    /// [`TwoHopRelay`] with the given copy budget.
    TwoHop {
        /// Maximum relay copies the source may spawn per message.
        budget: u32,
    },
    /// [`MeetingRate`] with the given estimator constants.
    MeetingRate {
        /// Delivery horizon (seconds) in `ξ = 1 − exp(−horizon/ĝ)`.
        horizon_secs: f64,
        /// Debounce window (seconds) merging frames into one contact.
        debounce_secs: f64,
        /// EWMA gain of the gap estimator.
        beta: f64,
    },
}

impl PolicySpec {
    /// [`TwoHopRelay`] with the default copy budget.
    #[must_use]
    pub fn default_two_hop() -> PolicySpec {
        PolicySpec::TwoHop {
            budget: TwoHopRelay::DEFAULT_BUDGET,
        }
    }

    /// [`MeetingRate`] with the default estimator constants.
    #[must_use]
    pub fn default_meeting_rate() -> PolicySpec {
        PolicySpec::MeetingRate {
            horizon_secs: MeetingRate::DEFAULT_HORIZON_SECS,
            debounce_secs: MeetingRate::DEFAULT_DEBOUNCE_SECS,
            beta: MeetingRate::DEFAULT_BETA,
        }
    }

    /// Instantiates the runtime policy (state empty; the engine calls
    /// [`ForwardingPolicy::init`] when attaching it).
    #[must_use]
    pub fn into_policy(self, config: VariantConfig) -> Policy {
        match self {
            PolicySpec::Builtin => Policy::builtin(config),
            PolicySpec::TwoHop { budget } => Policy::TwoHop(TwoHopRelay::new(budget)),
            PolicySpec::MeetingRate {
                horizon_secs,
                debounce_secs,
                beta,
            } => Policy::MeetingRate(MeetingRate::new(horizon_secs, debounce_secs, beta)),
        }
    }

    /// The label the policy would report (`"BUILTIN"` stands for
    /// whatever variant the run config names).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PolicySpec::Builtin => "BUILTIN",
            PolicySpec::TwoHop { .. } => "TWOHOP",
            PolicySpec::MeetingRate { .. } => "MEETRATE",
        }
    }

    /// Parses `NAME[:k=v,...]` (case-insensitive names) as accepted by
    /// the CLI `--policy` flag.
    ///
    /// * `builtin` — no keys (the variant's own rules);
    /// * `twohop` — keys: `budget` (integer ≥ 1);
    /// * `meetrate` — keys: `horizon`, `debounce`, `beta`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the unknown policy, unknown key
    /// or malformed value.
    pub fn parse(s: &str) -> Result<PolicySpec, String> {
        let (name, rest) = match s.split_once(':') {
            Some((n, r)) => (n, Some(r)),
            None => (s, None),
        };
        let mut kvs: Vec<(&str, f64)> = Vec::new();
        if let Some(rest) = rest {
            for pair in rest.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("malformed policy parameter '{pair}' (want k=v)"))?;
                let v: f64 = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("policy parameter '{k}' has non-numeric value '{v}'"))?;
                kvs.push((k.trim(), v));
            }
        }
        let take = |kvs: &[(&str, f64)], key: &str, default: f64| -> f64 {
            kvs.iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(key))
                .map_or(default, |&(_, v)| v)
        };
        match name.trim().to_ascii_lowercase().as_str() {
            "builtin" | "default" => {
                if let Some((k, _)) = kvs.first() {
                    return Err(format!("builtin takes no parameters, got '{k}'"));
                }
                Ok(PolicySpec::Builtin)
            }
            "twohop" | "two-hop" | "twohoprelay" => {
                for (k, _) in &kvs {
                    if !k.eq_ignore_ascii_case("budget") {
                        return Err(format!("unknown twohop parameter '{k}' (want budget)"));
                    }
                }
                let budget = take(&kvs, "budget", f64::from(TwoHopRelay::DEFAULT_BUDGET));
                if !(budget.is_finite() && budget >= 1.0 && budget.fract() == 0.0) {
                    return Err(format!(
                        "twohop budget must be an integer ≥ 1, got {budget}"
                    ));
                }
                Ok(PolicySpec::TwoHop {
                    budget: budget as u32,
                })
            }
            "meetrate" | "meeting-rate" | "meetingrate" => {
                for (k, _) in &kvs {
                    if !["horizon", "debounce", "beta"]
                        .iter()
                        .any(|w| k.eq_ignore_ascii_case(w))
                    {
                        return Err(format!(
                            "unknown meetrate parameter '{k}' (want horizon, debounce or beta)"
                        ));
                    }
                }
                let horizon = take(&kvs, "horizon", MeetingRate::DEFAULT_HORIZON_SECS);
                let debounce = take(&kvs, "debounce", MeetingRate::DEFAULT_DEBOUNCE_SECS);
                let beta = take(&kvs, "beta", MeetingRate::DEFAULT_BETA);
                let wellformed = horizon.is_finite()
                    && horizon > 0.0
                    && debounce.is_finite()
                    && debounce > 0.0
                    && beta.is_finite()
                    && beta > 0.0
                    && beta <= 1.0;
                if !wellformed {
                    return Err(
                        "meetrate wants horizon > 0, debounce > 0 and beta in (0, 1]".to_owned(),
                    );
                }
                Ok(PolicySpec::MeetingRate {
                    horizon_secs: horizon,
                    debounce_secs: debounce,
                    beta,
                })
            }
            other => Err(format!(
                "unknown policy '{other}' (available: builtin, twohop, meetrate)"
            )),
        }
    }
}

impl std::fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicySpec::Builtin => write!(f, "builtin"),
            PolicySpec::TwoHop { budget } => write!(f, "twohop:budget={budget}"),
            PolicySpec::MeetingRate {
                horizon_secs,
                debounce_secs,
                beta,
            } => write!(
                f,
                "meetrate:horizon={horizon_secs},debounce={debounce_secs},beta={beta}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::ProtocolKind;

    fn cand(id: usize, xi: f64, space: usize) -> Candidate {
        Candidate {
            id: NodeId(id),
            xi,
            buffer_space: space,
        }
    }

    fn msg(id: u64, origin: usize) -> Message {
        Message::sensed(MessageId(id), NodeId(origin), SimTime::ZERO)
    }

    #[test]
    fn builtin_labels_follow_the_kind() {
        for kind in ProtocolKind::ALL {
            let p = Policy::builtin(kind.config());
            assert_eq!(p.label(), kind.label());
            assert_eq!(p.spec(), PolicySpec::Builtin);
        }
    }

    #[test]
    fn twohop_origin_spends_budget_relays_do_not() {
        let mut p = TwoHopRelay::new(2);
        let m = msg(1, 0);
        // Origin advertisement carries the remaining budget.
        assert_eq!(p.advertise(NodeId(0), 0.3, &m), (0.3, 2.0));
        // A relay advertises zero.
        assert_eq!(p.advertise(NodeId(5), 0.3, &m), (0.3, 0.0));
        // Confirming two relay copies exhausts the budget.
        let confirmed = Confirmed {
            xis: &[0.4, 0.2],
            any_sink: false,
        };
        let mut xi = DeliveryProb::ZERO;
        let fate = p.on_multicast(NodeId(0), &m, &confirmed, 0.25, 0.9, &mut xi);
        assert_eq!(fate, CopyFate::Retain);
        assert_eq!(p.advertise(NodeId(0), 0.3, &m), (0.3, 0.0));
        // Sink delivery clears the ledger entry.
        let sink = Confirmed {
            xis: &[1.0],
            any_sink: true,
        };
        let fate = p.on_multicast(NodeId(0), &m, &sink, 0.25, 0.9, &mut xi);
        assert_eq!(fate, CopyFate::Delivered);
        assert_eq!(p.copies_spawned(MessageId(1)), 0);
    }

    #[test]
    fn twohop_selection_prefers_sinks_and_caps_relays() {
        let p = TwoHopRelay::new(1);
        let ctx = SelectCtx {
            sender: NodeId(0),
            sender_metric: 0.2,
            msg: msg(7, 0),
            threshold_r: 0.9,
        };
        let candidates = [cand(3, 0.5, 4), cand(9, 1.0, usize::MAX), cand(4, 0.6, 4)];
        let mut scratch = SelectionScratch::default();
        let mut out = Selection::default();
        p.select(&ctx, &candidates, &mut scratch, &mut out);
        let ids: Vec<NodeId> = out.receivers.iter().map(|&(id, _)| id).collect();
        // Sink first (ξ=1), then the single budgeted relay (best ξ).
        assert_eq!(ids, vec![NodeId(9), NodeId(4)]);
    }

    #[test]
    fn twohop_relay_offers_reach_only_sinks() {
        let p = TwoHopRelay::new(3);
        let q = FtdQueue::new(4);
        let rx = RxView { xi: 0.9, queue: &q };
        let relay_rts = RtsInfo {
            sender: NodeId(2),
            xi: 0.1,
            ftd: 0.0,
            msg: MessageId(1),
        };
        assert!(!p.qualifies(&rx, &relay_rts), "relay RTS must not recruit");
        let origin_rts = RtsInfo {
            ftd: 3.0,
            ..relay_rts
        };
        assert!(p.qualifies(&rx, &origin_rts));
    }

    #[test]
    fn meetrate_estimator_needs_two_contacts() {
        let mut p = MeetingRate::new(600.0, 5.0, 0.3);
        p.init(4);
        let t = |s: u64| SimTime::from_secs(s);
        // First contact: anchor only.
        assert_eq!(p.on_frame_from(NodeId(1), NodeId(9), true, t(100)), None);
        // Same contact, debounced.
        assert_eq!(p.on_frame_from(NodeId(1), NodeId(9), true, t(103)), None);
        // Second contact: gaps are start-to-start, ĝ = 200, ξ = 1 − e^{−3}.
        let xi = p
            .on_frame_from(NodeId(1), NodeId(9), true, t(300))
            .expect("second contact moves the metric");
        assert!((xi - (1.0 - (-3.0f64).exp())).abs() < 1e-12);
        // Non-sink frames never feed the estimator.
        assert_eq!(p.on_frame_from(NodeId(1), NodeId(2), false, t(400)), None);
    }

    #[test]
    fn spec_parse_round_trips() {
        let cases = [
            ("twohop", PolicySpec::TwoHop { budget: 4 }),
            ("TWOHOP:budget=9", PolicySpec::TwoHop { budget: 9 }),
            (
                "meetrate:horizon=300,beta=0.5",
                PolicySpec::MeetingRate {
                    horizon_secs: 300.0,
                    debounce_secs: 5.0,
                    beta: 0.5,
                },
            ),
        ];
        for (s, want) in cases {
            assert_eq!(PolicySpec::parse(s).unwrap(), want, "{s}");
        }
        assert!(PolicySpec::parse("gossip").is_err());
        assert!(PolicySpec::parse("twohop:budget=0").is_err());
        assert!(PolicySpec::parse("twohop:fanout=2").is_err());
        assert!(PolicySpec::parse("meetrate:beta=2").is_err());
        assert!(PolicySpec::parse("meetrate:horizon=abc").is_err());
    }

    #[test]
    fn builtin_on_multicast_matches_the_paper_rules() {
        let mut p = Builtin::new(ProtocolKind::Opt.config());
        let m = msg(1, 0);
        let mut xi = DeliveryProb::ZERO;
        // Sink confirmation: delivered, ξ pulled toward 1.
        let fate = p.on_multicast(
            NodeId(0),
            &m,
            &Confirmed {
                xis: &[1.0],
                any_sink: true,
            },
            0.25,
            0.9,
            &mut xi,
        );
        assert_eq!(fate, CopyFate::Delivered);
        assert!((xi.value() - 0.25).abs() < 1e-12);
        // Relay confirmation: Eq. 3 demotion below the threshold.
        let fate = p.on_multicast(
            NodeId(0),
            &m,
            &Confirmed {
                xis: &[0.5],
                any_sink: false,
            },
            0.25,
            0.9,
            &mut xi,
        );
        assert!(matches!(fate, CopyFate::Demote(_)));
    }
}
