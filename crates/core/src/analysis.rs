//! Analytic models of the two basic DFT-MSN delivery approaches.
//!
//! The companion work (\[5\] in the paper: "DFT-MSN: The Delay Fault
//! Tolerant Mobile Sensor Network for Pervasive Information Gathering",
//! INFOCOM 2006) analyses **direct transmission** and **flooding** with
//! queueing models before proposing the FTD scheme. This module rebuilds
//! that analytic substrate with the standard continuous-time Markov-chain
//! treatment of opportunistic contacts:
//!
//! * pairwise contacts are Poisson with rate λ (the exponential
//!   inter-contact approximation, accurate for random-direction-style
//!   mobility at sub-area transmission ranges);
//! * [`ContactModel`] estimates λ from the scenario geometry
//!   (`λ ≈ 2·r·v_rel / A`);
//! * [`direct_delivery_probability`] solves the one-state model;
//! * [`EpidemicModel`] integrates the flooding master equation: state
//!   *i* = number of message holders, infection rate `i(n−i)λ_nn`,
//!   absorption (delivery) rate `i·k·λ_ns`.
//!
//! These models deliberately ignore queueing losses, MAC overhead and the
//! home-zone bias of the paper's mobility — they are the *upper-bound
//! sanity rails* the simulator is checked against in the integration
//! tests, not a replacement for it.

use crate::params::ScenarioParams;
use serde::{Deserialize, Serialize};

/// First-order Poisson contact-rate estimates from scenario geometry.
///
/// # Examples
///
/// ```
/// use dftmsn_core::analysis::ContactModel;
/// use dftmsn_core::params::ScenarioParams;
///
/// let m = ContactModel::from_scenario(&ScenarioParams::paper_default());
/// assert!(m.lambda_node_sink > 0.0);
/// assert!(m.lambda_node_node > m.lambda_node_sink); // moving targets meet faster
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContactModel {
    /// Pairwise sensor–sensor contact rate (1/s).
    pub lambda_node_node: f64,
    /// Sensor–(single stationary sink) contact rate (1/s).
    pub lambda_node_sink: f64,
}

impl ContactModel {
    /// Estimates contact rates from the deployment geometry.
    ///
    /// Uses the classical well-mixed approximation
    /// `λ = 2·r·E[v_rel]/A` with `E[v_rel] ≈ 1.27·v̄` for two
    /// random-direction movers and `E[v_rel] = v̄` against a stationary
    /// sink, where `v̄` is the mean node speed.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails validation.
    #[must_use]
    pub fn from_scenario(s: &ScenarioParams) -> Self {
        s.validate()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
        let area = s.area_width_m * s.area_height_m;
        let v_mean = (s.speed_min_mps + s.speed_max_mps) / 2.0;
        let r = s.channel.range_m;
        ContactModel {
            lambda_node_node: 2.0 * r * 1.27 * v_mean / area,
            lambda_node_sink: 2.0 * r * v_mean / area,
        }
    }

    /// Mean inter-contact time (s) between two sensors.
    #[must_use]
    pub fn mean_intercontact_nn(&self) -> f64 {
        1.0 / self.lambda_node_node
    }

    /// Mean time (s) for one sensor to meet one specific sink.
    #[must_use]
    pub fn mean_intercontact_ns(&self) -> f64 {
        1.0 / self.lambda_node_sink
    }
}

/// Probability that direct transmission delivers a message within
/// `horizon_secs`, given `sinks` stationary sinks and the node–sink
/// contact rate: `1 − exp(−k·λ·t)`.
///
/// # Panics
///
/// Panics if `lambda_ns` or `horizon_secs` is negative, or `sinks == 0`.
#[must_use]
pub fn direct_delivery_probability(lambda_ns: f64, sinks: usize, horizon_secs: f64) -> f64 {
    assert!(lambda_ns >= 0.0, "negative contact rate");
    assert!(horizon_secs >= 0.0, "negative horizon");
    assert!(sinks > 0, "need at least one sink");
    1.0 - (-(sinks as f64) * lambda_ns * horizon_secs).exp()
}

/// Mean direct-transmission delivery delay: `1/(k·λ)`.
///
/// # Panics
///
/// Panics if the rate is not positive or `sinks == 0`.
#[must_use]
pub fn direct_expected_delay(lambda_ns: f64, sinks: usize) -> f64 {
    assert!(lambda_ns > 0.0, "rate must be positive");
    assert!(sinks > 0, "need at least one sink");
    1.0 / (sinks as f64 * lambda_ns)
}

/// Average delivery probability over messages generated uniformly during
/// a run of length `duration_secs` (later messages have less residual
/// horizon): `1 − (1 − e^{−μT})/(μT)` with `μ = k·λ`.
#[must_use]
pub fn direct_average_ratio(lambda_ns: f64, sinks: usize, duration_secs: f64) -> f64 {
    let mu = sinks as f64 * lambda_ns;
    let x = mu * duration_secs;
    if x <= 0.0 {
        return 0.0;
    }
    1.0 - (1.0 - (-x).exp()) / x
}

/// The flooding (epidemic) master-equation model: a pure-birth CTMC over
/// the number of message holders with delivery as absorption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpidemicModel {
    /// Total sensors that can hold a copy.
    pub sensors: usize,
    /// Sink count.
    pub sinks: usize,
    /// Sensor–sensor contact rate (1/s).
    pub lambda_nn: f64,
    /// Sensor–sink contact rate (1/s).
    pub lambda_ns: f64,
}

impl EpidemicModel {
    /// Builds the model from geometry estimates.
    #[must_use]
    pub fn from_scenario(s: &ScenarioParams) -> Self {
        let contacts = ContactModel::from_scenario(s);
        EpidemicModel {
            sensors: s.sensors,
            sinks: s.sinks,
            lambda_nn: contacts.lambda_node_node,
            lambda_ns: contacts.lambda_node_sink,
        }
    }

    fn birth_rate(&self, holders: usize) -> f64 {
        holders as f64 * (self.sensors - holders) as f64 * self.lambda_nn
    }

    fn absorb_rate(&self, holders: usize) -> f64 {
        holders as f64 * self.sinks as f64 * self.lambda_ns
    }

    /// Expected delivery delay (s) starting from one holder, by first-step
    /// analysis over the birth chain.
    ///
    /// # Panics
    ///
    /// Panics if the model has no sensors or non-positive rates.
    #[must_use]
    pub fn expected_delay(&self) -> f64 {
        assert!(self.sensors > 0, "no sensors");
        assert!(
            self.lambda_ns > 0.0 && self.lambda_nn >= 0.0,
            "rates must be positive"
        );
        // T_i = 1/(µ_i + b_i) + b_i/(µ_i + b_i) · T_{i+1}, T at i = n has
        // b = 0.
        let n = self.sensors;
        let mut t_next = 1.0 / self.absorb_rate(n);
        for i in (1..n).rev() {
            let b = self.birth_rate(i);
            let mu = self.absorb_rate(i);
            t_next = (1.0 + b * t_next) / (mu + b);
        }
        t_next
    }

    /// Probability the message is delivered within `horizon_secs`,
    /// integrated from the master equation by explicit Euler with step
    /// `dt_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `dt_secs` is not positive or the horizon is negative.
    #[must_use]
    pub fn delivery_probability_by(&self, horizon_secs: f64, dt_secs: f64) -> f64 {
        assert!(dt_secs > 0.0, "dt must be positive");
        assert!(horizon_secs >= 0.0, "negative horizon");
        let n = self.sensors;
        // p[i] = P(i holders, not yet delivered), i in 1..=n; p_abs =
        // P(delivered).
        let mut p = vec![0.0f64; n + 1];
        p[1] = 1.0;
        let mut absorbed = 0.0;
        let steps = (horizon_secs / dt_secs).ceil() as u64;
        // Stability: the fastest total exit rate bounds the usable dt.
        let max_rate = (1..=n)
            .map(|i| self.birth_rate(i) + self.absorb_rate(i))
            .fold(0.0f64, f64::max);
        let dt = dt_secs.min(if max_rate > 0.0 {
            0.5 / max_rate
        } else {
            dt_secs
        });
        let substeps = (dt_secs / dt).ceil() as u64;
        let dt = dt_secs / substeps as f64;
        for _ in 0..steps * substeps {
            let mut next = p.clone();
            for i in 1..=n {
                if p[i] == 0.0 {
                    continue;
                }
                let b = self.birth_rate(i) * dt;
                let a = self.absorb_rate(i) * dt;
                let out = (b + a).min(1.0);
                next[i] -= p[i] * out;
                if i < n {
                    next[i + 1] += p[i] * b;
                } else {
                    // No more susceptible relays; births are impossible
                    // (birth_rate(n) is 0 anyway).
                }
                absorbed += p[i] * a;
            }
            p = next;
        }
        absorbed.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> EpidemicModel {
        EpidemicModel::from_scenario(&ScenarioParams::paper_default())
    }

    #[test]
    fn contact_rates_have_sane_magnitudes() {
        let m = ContactModel::from_scenario(&ScenarioParams::paper_default());
        // 150x150 m², r = 10 m, v̄ = 2.5 m/s → λ_ns ≈ 2·10·2.5/22500 ≈ 2.2e-3.
        assert!((m.lambda_node_sink - 2.222e-3).abs() < 1e-4);
        assert!(m.mean_intercontact_ns() > 100.0);
        assert!(m.mean_intercontact_nn() < m.mean_intercontact_ns());
    }

    #[test]
    fn direct_probability_behaves() {
        assert_eq!(direct_delivery_probability(0.001, 1, 0.0), 0.0);
        let short = direct_delivery_probability(0.001, 1, 100.0);
        let long = direct_delivery_probability(0.001, 1, 10_000.0);
        assert!(long > short);
        let more_sinks = direct_delivery_probability(0.001, 5, 100.0);
        assert!(more_sinks > short);
        assert!(long < 1.0 + 1e-12);
    }

    #[test]
    fn direct_expected_delay_is_inverse_rate() {
        assert!((direct_expected_delay(0.002, 1) - 500.0).abs() < 1e-9);
        assert!((direct_expected_delay(0.002, 4) - 125.0).abs() < 1e-9);
    }

    #[test]
    fn direct_average_ratio_interpolates() {
        // As T → ∞ the average ratio → 1; tiny T → ~0.
        assert!(direct_average_ratio(0.002, 3, 1e7) > 0.99);
        assert!(direct_average_ratio(0.002, 3, 1.0) < 0.01);
        let mid = direct_average_ratio(0.002, 3, 1_000.0);
        assert!((0.1..0.9).contains(&mid), "mid ratio {mid}");
    }

    #[test]
    fn epidemic_beats_direct_on_delay() {
        let m = paper_model();
        let direct = direct_expected_delay(m.lambda_ns, m.sinks);
        let epidemic = m.expected_delay();
        assert!(
            epidemic < direct / 5.0,
            "flooding {epidemic:.0}s should crush direct {direct:.0}s"
        );
    }

    #[test]
    fn epidemic_delay_shrinks_with_population() {
        let mut small = paper_model();
        small.sensors = 20;
        let mut large = paper_model();
        large.sensors = 200;
        assert!(large.expected_delay() < small.expected_delay());
    }

    #[test]
    fn master_equation_is_a_cdf() {
        let m = paper_model();
        let mut prev = 0.0;
        for h in [0.0, 50.0, 200.0, 1_000.0, 5_000.0] {
            let p = m.delivery_probability_by(h, 1.0);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev - 1e-9, "CDF decreased at {h}");
            prev = p;
        }
        assert!(
            prev > 0.9,
            "flooding should almost surely deliver by 5000 s"
        );
    }

    #[test]
    fn master_equation_median_matches_expected_delay_order() {
        let m = paper_model();
        let expected = m.expected_delay();
        let p_at_expected = m.delivery_probability_by(expected, 1.0);
        // For these unimodal first-passage laws the mean sits near the
        // bulk: P(T ≤ E[T]) lands in a broad central band.
        assert!(
            (0.25..0.95).contains(&p_at_expected),
            "P(T<=E[T]) = {p_at_expected}"
        );
    }

    #[test]
    fn single_sensor_epidemic_reduces_to_direct() {
        let mut m = paper_model();
        m.sensors = 1;
        let expected = m.expected_delay();
        let direct = direct_expected_delay(m.lambda_ns, m.sinks);
        assert!((expected - direct).abs() / direct < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one sink")]
    fn zero_sinks_panics() {
        let _ = direct_delivery_probability(0.001, 0, 10.0);
    }
}
