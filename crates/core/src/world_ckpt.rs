//! Versioned snapshot/resume for [`Simulation`] — the `dftmsn-ckpt/1`
//! format.
//!
//! A checkpoint captures the *complete* live state of a run: every node's
//! protocol tables (ξ, FTD queue, sleep history, neighbor table, MAC
//! context), the timing-wheel event set, every RNG stream (shared mobility,
//! fault, per-node protocol, and Lazy mode's per-node mobility forks), the
//! in-flight radio medium, the run counters, and the windowed observer's
//! accumulation state. Resuming reconstructs a simulation whose subsequent
//! event stream is bit-for-bit identical to the uninterrupted run: same
//! golden counters, same observe JSONL bytes, for every protocol variant
//! and both mobility modes.
//!
//! # File format
//!
//! ```text
//! magic   13 bytes   b"dftmsn-ckpt/1"
//! len      8 bytes   payload length, u64 LE
//! payload  n bytes   SnapWriter-encoded state
//! checksum 8 bytes   FNV-1a 64 of the payload, u64 LE
//! ```
//!
//! Writes are atomic: the file is written to `<path>.tmp`, the previous
//! checkpoint (if any) is rotated to `<path>.bak`, and the temp file is
//! renamed into place. A corrupt primary file is rejected with a
//! diagnostic and [`Simulation::resume`] falls back to the `.bak` rotation.
//!
//! # What is *not* captured
//!
//! * Custom [`TraceSink`]s attached via
//!   [`SimulationBuilder::trace`] — a resumed run re-attaches only the
//!   [`MetricsRecorder`] observer (whose byte-exact output cursor is part
//!   of the snapshot). Callers that need their own sink must re-attach it
//!   out of band and accept that it observes only post-resume events.
//! * The observer's retained in-memory rows —
//!   [`MetricsRecorder::rows`]/[`MetricsRecorder::series`] on a resumed
//!   recorder cover only post-resume windows. The JSONL stream and the
//!   totals line are exact.

use super::*;
use crate::behavior::NodeBehavior;
use crate::neighbor::{NeighborEntry, NeighborTable};
use crate::observe::{ObserveRow, RecorderState, WindowCounters};
use crate::queue::FtdQueue;
use crate::report::FaultCounters;
use crate::sleep::SleepController;
use crate::variants::QueueDiscipline;
use crate::variants::{MetricKind, SelectionKind};
use dftmsn_metrics::histogram::Histogram;
use dftmsn_metrics::stats::RunningStats;
use dftmsn_radio::energy::EnergyMeter;
use dftmsn_radio::medium::{ActiveTxState, MediumState};
use dftmsn_sim::snap::{fnv1a64, SnapError, SnapReader, SnapWriter};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file; the trailing `/1` is the
/// format version.
pub const CKPT_MAGIC: &[u8; 13] = b"dftmsn-ckpt/1";

/// Why a checkpoint could not be written or resumed.
#[derive(Debug)]
pub enum CkptError {
    /// A filesystem operation failed.
    Io {
        /// What was being attempted (e.g. `"write checkpoint"`).
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The bytes are not a valid `dftmsn-ckpt/1` snapshot: bad magic,
    /// truncation, checksum mismatch, or malformed payload.
    Corrupt {
        /// The file the bytes came from, when known.
        path: Option<PathBuf>,
        /// What exactly failed to parse.
        detail: String,
    },
    /// The snapshot decoded, but its parameters fail validation (e.g. a
    /// checkpoint from an incompatible build).
    Invalid {
        /// The validation failure.
        detail: String,
    },
}

impl CkptError {
    fn corrupt(detail: impl Into<String>) -> Self {
        CkptError::Corrupt {
            path: None,
            detail: detail.into(),
        }
    }

    fn with_path(self, path: &Path) -> Self {
        match self {
            CkptError::Corrupt { path: None, detail } => CkptError::Corrupt {
                path: Some(path.to_owned()),
                detail,
            },
            other => other,
        }
    }

    /// True when the bytes were unreadable as a snapshot (as opposed to an
    /// I/O failure); this is the case the `.bak` fallback covers.
    #[must_use]
    pub fn is_corrupt(&self) -> bool {
        matches!(self, CkptError::Corrupt { .. } | CkptError::Invalid { .. })
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            CkptError::Corrupt {
                path: Some(p),
                detail,
            } => {
                write!(f, "corrupt checkpoint {}: {detail}", p.display())
            }
            CkptError::Corrupt { path: None, detail } => {
                write!(f, "corrupt checkpoint: {detail}")
            }
            CkptError::Invalid { detail } => {
                write!(f, "checkpoint holds invalid parameters: {detail}")
            }
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SnapError> for CkptError {
    fn from(e: SnapError) -> Self {
        CkptError::corrupt(e.message().to_owned())
    }
}

/// A run reconstructed by [`Simulation::resume`].
#[derive(Debug)]
pub struct Resumed {
    /// The reconstructed simulation, ready to [`run`](Simulation::run) or
    /// [`step`](Simulation::step).
    pub sim: Simulation,
    /// The restored observer, when the checkpointed run had one attached.
    /// Its output stream is detached; re-attach with
    /// [`MetricsRecorder::with_output`] after truncating the observe file
    /// to [`RecorderState::bytes_written`] bytes (the snapshot's cursor) —
    /// the continuation then produces a byte-identical JSONL stream.
    pub recorder: Option<MetricsRecorder>,
    /// True when the primary file was corrupt and the state was recovered
    /// from the `.bak` rotation.
    pub from_backup: bool,
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

// ---------------------------------------------------------------------
// Leaf codecs (all fallible on read; tags are explicit so a truncated or
// hand-edited payload yields a diagnostic, not a panic).
// ---------------------------------------------------------------------

fn w_time(w: &mut SnapWriter, t: SimTime) {
    w.u64(t.ticks());
}

fn r_time(r: &mut SnapReader) -> Result<SimTime, SnapError> {
    Ok(SimTime::from_ticks(r.u64()?))
}

fn w_node_id(w: &mut SnapWriter, id: NodeId) {
    w.usize(id.index());
}

fn r_node_id(r: &mut SnapReader) -> Result<NodeId, SnapError> {
    Ok(NodeId(r.usize()?))
}

fn w_rng(w: &mut SnapWriter, rng: &SimRng) {
    for word in rng.state() {
        w.u64(word);
    }
}

fn r_rng(r: &mut SnapReader) -> Result<SimRng, SnapError> {
    let s = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
    if s == [0, 0, 0, 0] {
        return Err(SnapError::new("all-zero RNG state"));
    }
    Ok(SimRng::from_state(s))
}

fn w_message(w: &mut SnapWriter, m: &Message) {
    w.u64(m.id.0);
    w_node_id(w, m.origin);
    w_time(w, m.created);
    w.f64(m.ftd.value());
    w.u32(m.hops);
}

fn r_message(r: &mut SnapReader) -> Result<Message, SnapError> {
    Ok(Message {
        id: MessageId(r.u64()?),
        origin: r_node_id(r)?,
        created: r_time(r)?,
        ftd: Ftd::new(r.f64()?),
        hops: r.u32()?,
    })
}

fn tx_plan_tag(p: TxPlan) -> u8 {
    match p {
        TxPlan::Preamble => 0,
        TxPlan::Rts => 1,
        TxPlan::Cts => 2,
        TxPlan::Schedule => 3,
        TxPlan::Data => 4,
        TxPlan::Ack => 5,
    }
}

fn r_tx_plan(r: &mut SnapReader) -> Result<TxPlan, SnapError> {
    Ok(match r.u8()? {
        0 => TxPlan::Preamble,
        1 => TxPlan::Rts,
        2 => TxPlan::Cts,
        3 => TxPlan::Schedule,
        4 => TxPlan::Data,
        5 => TxPlan::Ack,
        t => return Err(SnapError::new(format!("bad TxPlan tag {t}"))),
    })
}

fn w_mac_state(w: &mut SnapWriter, s: MacState) {
    match s {
        MacState::Sleeping => w.u8(0),
        MacState::Passive => w.u8(1),
        MacState::SenderListen => w.u8(2),
        MacState::Transmitting(plan) => {
            w.u8(3);
            w.u8(tx_plan_tag(plan));
        }
        MacState::CollectCts => w.u8(4),
        MacState::AwaitAcks => w.u8(5),
        MacState::AwaitRts => w.u8(6),
        MacState::CtsPending => w.u8(7),
        MacState::AwaitSchedule => w.u8(8),
        MacState::AwaitData => w.u8(9),
        MacState::AckPending => w.u8(10),
    }
}

fn r_mac_state(r: &mut SnapReader) -> Result<MacState, SnapError> {
    Ok(match r.u8()? {
        0 => MacState::Sleeping,
        1 => MacState::Passive,
        2 => MacState::SenderListen,
        3 => MacState::Transmitting(r_tx_plan(r)?),
        4 => MacState::CollectCts,
        5 => MacState::AwaitAcks,
        6 => MacState::AwaitRts,
        7 => MacState::CtsPending,
        8 => MacState::AwaitSchedule,
        9 => MacState::AwaitData,
        10 => MacState::AckPending,
        t => return Err(SnapError::new(format!("bad MacState tag {t}"))),
    })
}

fn w_radio_state(w: &mut SnapWriter, s: RadioState) {
    w.u8(s.index() as u8);
}

fn r_radio_state(r: &mut SnapReader) -> Result<RadioState, SnapError> {
    Ok(match r.u8()? {
        0 => RadioState::Sleep,
        1 => RadioState::Idle,
        2 => RadioState::Rx,
        3 => RadioState::Tx,
        t => return Err(SnapError::new(format!("bad RadioState tag {t}"))),
    })
}

fn w_payload(w: &mut SnapWriter, p: &MacPayload) {
    match p {
        MacPayload::Preamble => w.u8(0),
        MacPayload::Rts {
            xi,
            ftd,
            window_slots,
            msg,
        } => {
            w.u8(1);
            w.f64(*xi);
            w.f64(*ftd);
            w.u32(*window_slots);
            w.u64(msg.0);
        }
        MacPayload::Cts {
            xi,
            buffer_space,
            msg,
        } => {
            w.u8(2);
            w.f64(*xi);
            w.u32(*buffer_space);
            w.u64(msg.0);
        }
        MacPayload::Schedule { receivers, msg } => {
            w.u8(3);
            w.seq(receivers, |w, &(id, ftd)| {
                w_node_id(w, id);
                w.f64(ftd);
            });
            w.u64(msg.0);
        }
        MacPayload::Data { msg } => {
            w.u8(4);
            w_message(w, msg);
        }
        MacPayload::Ack { msg } => {
            w.u8(5);
            w.u64(msg.0);
        }
    }
}

fn r_payload(r: &mut SnapReader) -> Result<MacPayload, SnapError> {
    Ok(match r.u8()? {
        0 => MacPayload::Preamble,
        1 => MacPayload::Rts {
            xi: r.f64()?,
            ftd: r.f64()?,
            window_slots: r.u32()?,
            msg: MessageId(r.u64()?),
        },
        2 => MacPayload::Cts {
            xi: r.f64()?,
            buffer_space: r.u32()?,
            msg: MessageId(r.u64()?),
        },
        3 => MacPayload::Schedule {
            receivers: r.seq(|r| Ok((r_node_id(r)?, r.f64()?)))?,
            msg: MessageId(r.u64()?),
        },
        4 => MacPayload::Data { msg: r_message(r)? },
        5 => MacPayload::Ack {
            msg: MessageId(r.u64()?),
        },
        t => return Err(SnapError::new(format!("bad MacPayload tag {t}"))),
    })
}

fn w_timer(w: &mut SnapWriter, t: Timer) {
    w.u8(match t {
        Timer::WakeUp => 0,
        Timer::ListenDone => 1,
        Timer::CtsSlot => 2,
        Timer::CtsWindowEnd => 3,
        Timer::AckSlot => 4,
        Timer::AckWindowEnd => 5,
        Timer::Guard => 6,
    });
}

fn r_timer(r: &mut SnapReader) -> Result<Timer, SnapError> {
    Ok(match r.u8()? {
        0 => Timer::WakeUp,
        1 => Timer::ListenDone,
        2 => Timer::CtsSlot,
        3 => Timer::CtsWindowEnd,
        4 => Timer::AckSlot,
        5 => Timer::AckWindowEnd,
        6 => Timer::Guard,
        t => return Err(SnapError::new(format!("bad Timer tag {t}"))),
    })
}

fn w_event(w: &mut SnapWriter, e: &Event) {
    match e {
        Event::MobilityTick => w.u8(0),
        Event::DataGen(i) => {
            w.u8(1);
            w_node_id(w, *i);
        }
        Event::MetricTimeout(i) => {
            w.u8(2);
            w_node_id(w, *i);
        }
        Event::TxEnd(i, handle) => {
            w.u8(3);
            w_node_id(w, *i);
            w.u64(handle.raw());
        }
        Event::Timer(i, epoch, timer) => {
            w.u8(4);
            w_node_id(w, *i);
            w.u64(*epoch);
            w_timer(w, *timer);
        }
        Event::Fault(k) => {
            w.u8(5);
            w.usize(*k);
        }
        Event::ObserveTick => w.u8(6),
    }
}

fn r_event(r: &mut SnapReader) -> Result<Event, SnapError> {
    Ok(match r.u8()? {
        0 => Event::MobilityTick,
        1 => Event::DataGen(r_node_id(r)?),
        2 => Event::MetricTimeout(r_node_id(r)?),
        3 => Event::TxEnd(r_node_id(r)?, TxHandle::from_raw(r.u64()?)),
        4 => Event::Timer(r_node_id(r)?, r.u64()?, r_timer(r)?),
        5 => Event::Fault(r.usize()?),
        6 => Event::ObserveTick,
        t => return Err(SnapError::new(format!("bad Event tag {t}"))),
    })
}

fn w_fault_kind(w: &mut SnapWriter, k: &FaultKind) {
    match k {
        FaultKind::NodeCrash(i) => {
            w.u8(0);
            w_node_id(w, *i);
        }
        FaultKind::NodeRecover(i) => {
            w.u8(1);
            w_node_id(w, *i);
        }
        FaultKind::BatteryDeath(i) => {
            w.u8(2);
            w_node_id(w, *i);
        }
        FaultKind::LinkDegrade { a, b, drop_prob } => {
            w.u8(3);
            w_node_id(w, *a);
            w_node_id(w, *b);
            w.f64(*drop_prob);
        }
        FaultKind::GlobalLinkDegrade { drop_prob } => {
            w.u8(4);
            w.f64(*drop_prob);
        }
        FaultKind::DataCorruption { node, prob } => {
            w.u8(5);
            w_node_id(w, *node);
            w.f64(*prob);
        }
        FaultKind::SinkDown(i) => {
            w.u8(6);
            w_node_id(w, *i);
        }
        FaultKind::SinkUp(i) => {
            w.u8(7);
            w_node_id(w, *i);
        }
        FaultKind::BehaviorChange { node, behavior } => {
            w.u8(8);
            w_node_id(w, *node);
            w.u8(behavior.tag());
        }
    }
}

fn r_fault_kind(r: &mut SnapReader) -> Result<FaultKind, SnapError> {
    Ok(match r.u8()? {
        0 => FaultKind::NodeCrash(r_node_id(r)?),
        1 => FaultKind::NodeRecover(r_node_id(r)?),
        2 => FaultKind::BatteryDeath(r_node_id(r)?),
        3 => FaultKind::LinkDegrade {
            a: r_node_id(r)?,
            b: r_node_id(r)?,
            drop_prob: r.f64()?,
        },
        4 => FaultKind::GlobalLinkDegrade {
            drop_prob: r.f64()?,
        },
        5 => FaultKind::DataCorruption {
            node: r_node_id(r)?,
            prob: r.f64()?,
        },
        6 => FaultKind::SinkDown(r_node_id(r)?),
        7 => FaultKind::SinkUp(r_node_id(r)?),
        8 => FaultKind::BehaviorChange {
            node: r_node_id(r)?,
            behavior: {
                let t = r.u8()?;
                NodeBehavior::from_tag(t)
                    .ok_or_else(|| SnapError::new(format!("bad NodeBehavior tag {t}")))?
            },
        },
        t => return Err(SnapError::new(format!("bad FaultKind tag {t}"))),
    })
}

// ---------------------------------------------------------------------
// Parameter sections
// ---------------------------------------------------------------------

fn mobility_kind_tag(k: MobilityKind) -> u8 {
    match k {
        MobilityKind::ZoneBased => 0,
        MobilityKind::RandomWaypoint => 1,
        MobilityKind::RandomWalk => 2,
    }
}

fn r_mobility_kind(r: &mut SnapReader) -> Result<MobilityKind, SnapError> {
    Ok(match r.u8()? {
        0 => MobilityKind::ZoneBased,
        1 => MobilityKind::RandomWaypoint,
        2 => MobilityKind::RandomWalk,
        t => return Err(SnapError::new(format!("bad MobilityKind tag {t}"))),
    })
}

fn w_scenario(w: &mut SnapWriter, s: &ScenarioParams) {
    w.f64(s.area_width_m);
    w.f64(s.area_height_m);
    w.usize(s.zone_cols);
    w.usize(s.zone_rows);
    w.usize(s.sensors);
    w.usize(s.sinks);
    w.f64(s.speed_min_mps);
    w.f64(s.speed_max_mps);
    w.f64(s.zone_exit_prob);
    w.usize(s.queue_capacity);
    w.f64(s.data_interval_secs);
    w.u64(s.data_bits);
    w.u64(s.control_bits);
    w.u64(s.channel.bandwidth_bps);
    w.f64(s.channel.range_m);
    w.f64(s.energy.p_tx_w);
    w.f64(s.energy.p_rx_w);
    w.f64(s.energy.p_idle_w);
    w.f64(s.energy.p_sleep_w);
    w.f64(s.energy.e_switch_j);
    w.u64(s.duration_secs);
    w.f64(s.mobility_tick_secs);
    w.u8(mobility_kind_tag(s.mobility));
    w.usize(s.mobile_sinks);
}

fn r_scenario(r: &mut SnapReader) -> Result<ScenarioParams, SnapError> {
    Ok(ScenarioParams {
        area_width_m: r.f64()?,
        area_height_m: r.f64()?,
        zone_cols: r.usize()?,
        zone_rows: r.usize()?,
        sensors: r.usize()?,
        sinks: r.usize()?,
        speed_min_mps: r.f64()?,
        speed_max_mps: r.f64()?,
        zone_exit_prob: r.f64()?,
        queue_capacity: r.usize()?,
        data_interval_secs: r.f64()?,
        data_bits: r.u64()?,
        control_bits: r.u64()?,
        channel: dftmsn_radio::channel::ChannelParams {
            bandwidth_bps: r.u64()?,
            range_m: r.f64()?,
        },
        energy: dftmsn_radio::energy::EnergyModel {
            p_tx_w: r.f64()?,
            p_rx_w: r.f64()?,
            p_idle_w: r.f64()?,
            p_sleep_w: r.f64()?,
            e_switch_j: r.f64()?,
        },
        duration_secs: r.u64()?,
        mobility_tick_secs: r.f64()?,
        mobility: r_mobility_kind(r)?,
        mobile_sinks: r.usize()?,
    })
}

fn w_protocol(w: &mut SnapWriter, p: &ProtocolParams) {
    w.f64(p.alpha);
    w.f64(p.xi_timeout_secs);
    w.f64(p.delivery_threshold_r);
    w.f64(p.ftd_drop_threshold);
    w.usize(p.inactivity_cycles_l);
    w.usize(p.history_window_s);
    w.f64(p.sleep_h);
    w.f64(p.urgency_ftd_bound);
    w.f64(p.t_min_secs);
    w.f64(p.tau_collision_target);
    w.u64(p.tau_max_cap_slots);
    w.u64(p.tau_max_fixed_slots);
    w.f64(p.cts_collision_target);
    w.u64(p.cts_window_cap);
    w.u64(p.cts_window_fixed);
    w.f64(p.fixed_sleep_secs);
    w.f64(p.proc_gap_secs);
    w.f64(p.backoff_min_secs);
    w.f64(p.backoff_max_secs);
    w.f64(p.receiver_window_secs);
    w.f64(p.neighbor_ttl_secs);
}

fn r_protocol(r: &mut SnapReader) -> Result<ProtocolParams, SnapError> {
    Ok(ProtocolParams {
        alpha: r.f64()?,
        xi_timeout_secs: r.f64()?,
        delivery_threshold_r: r.f64()?,
        ftd_drop_threshold: r.f64()?,
        inactivity_cycles_l: r.usize()?,
        history_window_s: r.usize()?,
        sleep_h: r.f64()?,
        urgency_ftd_bound: r.f64()?,
        t_min_secs: r.f64()?,
        tau_collision_target: r.f64()?,
        tau_max_cap_slots: r.u64()?,
        tau_max_fixed_slots: r.u64()?,
        cts_collision_target: r.f64()?,
        cts_window_cap: r.u64()?,
        cts_window_fixed: r.u64()?,
        fixed_sleep_secs: r.f64()?,
        proc_gap_secs: r.f64()?,
        backoff_min_secs: r.f64()?,
        backoff_max_secs: r.f64()?,
        receiver_window_secs: r.f64()?,
        neighbor_ttl_secs: r.f64()?,
    })
}

fn w_config(w: &mut SnapWriter, c: &VariantConfig) {
    w.u8(match c.kind {
        ProtocolKind::Opt => 0,
        ProtocolKind::NoOpt => 1,
        ProtocolKind::NoSleep => 2,
        ProtocolKind::Zbr => 3,
        ProtocolKind::Direct => 4,
        ProtocolKind::Epidemic => 5,
    });
    w.bool(c.sleeps);
    w.bool(c.adaptive_sleep);
    w.bool(c.adaptive_tau);
    w.bool(c.adaptive_window);
    w.u8(match c.metric {
        MetricKind::DeliveryProb => 0,
        MetricKind::SinkHistory => 1,
    });
    w.u8(match c.selection {
        SelectionKind::FtdThreshold => 0,
        SelectionKind::SingleBest => 1,
        SelectionKind::AllResponders => 2,
        SelectionKind::SinkOnly => 3,
    });
    w.u8(match c.queue {
        QueueDiscipline::Ftd => 0,
        QueueDiscipline::Fifo => 1,
    });
}

fn r_config(r: &mut SnapReader) -> Result<VariantConfig, SnapError> {
    let kind = match r.u8()? {
        0 => ProtocolKind::Opt,
        1 => ProtocolKind::NoOpt,
        2 => ProtocolKind::NoSleep,
        3 => ProtocolKind::Zbr,
        4 => ProtocolKind::Direct,
        5 => ProtocolKind::Epidemic,
        t => return Err(SnapError::new(format!("bad ProtocolKind tag {t}"))),
    };
    let sleeps = r.bool()?;
    let adaptive_sleep = r.bool()?;
    let adaptive_tau = r.bool()?;
    let adaptive_window = r.bool()?;
    let metric = match r.u8()? {
        0 => MetricKind::DeliveryProb,
        1 => MetricKind::SinkHistory,
        t => return Err(SnapError::new(format!("bad MetricKind tag {t}"))),
    };
    let selection = match r.u8()? {
        0 => SelectionKind::FtdThreshold,
        1 => SelectionKind::SingleBest,
        2 => SelectionKind::AllResponders,
        3 => SelectionKind::SinkOnly,
        t => return Err(SnapError::new(format!("bad SelectionKind tag {t}"))),
    };
    let queue = match r.u8()? {
        0 => QueueDiscipline::Ftd,
        1 => QueueDiscipline::Fifo,
        t => return Err(SnapError::new(format!("bad QueueDiscipline tag {t}"))),
    };
    Ok(VariantConfig {
        kind,
        sleeps,
        adaptive_sleep,
        adaptive_tau,
        adaptive_window,
        metric,
        selection,
        queue,
    })
}

// ---------------------------------------------------------------------
// Node state
// ---------------------------------------------------------------------

fn w_node(w: &mut SnapWriter, node: &Node) {
    w.f64(node.metric.value());
    let items: Vec<Message> = node.queue.iter().copied().collect();
    w.seq(&items, w_message);
    let history: Vec<bool> = node.sleep.history().collect();
    w.seq(&history, |w, &b| w.bool(b));
    let entries = node.table.sorted_entries();
    w.seq(&entries, |w, &(id, e)| {
        w_node_id(w, id);
        w.f64(e.xi);
        w_time(w, e.last_seen);
    });
    w_mac_state(w, node.state);
    w.u64(node.epoch);
    w.usize(node.cycles_inactive);
    w.u32(node.listen_retries);
    w_time(w, node.last_tx);
    w.bool(node.alive);
    w.bool(node.battery_dead);
    w.f64(node.corrupt_rx_prob);
    w_time(w, node.xi_anchor);
    w.option(node.cached_tau.as_ref(), |w, &(at, tau)| {
        w_time(w, at);
        w.u64(tau);
    });
    let (state, since, per_state_j, switch_j, switches) = node.meter.raw_parts();
    w_radio_state(w, state);
    w_time(w, since);
    for j in per_state_j {
        w.f64(j);
    }
    w.f64(switch_j);
    w.u64(switches);
    w_rng(w, &node.rng);
    w.option(node.sender_ctx.as_ref(), |w, ctx| {
        w_message(w, &ctx.msg);
        w.u32(ctx.window_slots);
        w.seq(&ctx.candidates, |w, c| {
            w_node_id(w, c.id);
            w.f64(c.xi);
            w.usize(c.buffer_space);
        });
        w.option(ctx.selection.as_ref(), |w, sel| {
            w.seq(&sel.receivers, |w, &(id, ftd)| {
                w_node_id(w, id);
                w.f64(ftd.value());
            });
            w.seq(&sel.receiver_xis, |w, &xi| w.f64(xi));
            w.f64(sel.combined_delivery);
        });
        w.seq(&ctx.acked, |w, &id| w_node_id(w, id));
    });
    w.option(node.receiver_ctx.as_ref(), |w, ctx| {
        w_node_id(w, ctx.sender);
        w.u64(ctx.msg.0);
        w.f64(ctx.rts_ftd);
        w.u32(ctx.window_slots);
        w_time(w, ctx.rts_end);
        w.option(ctx.assigned_ftd.as_ref(), |w, ftd| w.f64(ftd.value()));
        w.u32(ctx.ack_slot);
    });
}

fn restore_node(r: &mut SnapReader, node: &mut Node) -> Result<(), SnapError> {
    node.metric = DeliveryProb::new(r.f64()?);
    let items = r.seq(r_message)?;
    if items.len() > node.queue.capacity() {
        return Err(SnapError::new(format!(
            "queue of {} items exceeds capacity {}",
            items.len(),
            node.queue.capacity()
        )));
    }
    let sorted = items
        .windows(2)
        .all(|w| (w[0].ftd.value(), w[0].id.0) <= (w[1].ftd.value(), w[1].id.0));
    if !sorted {
        return Err(SnapError::new("queue items out of FTD order"));
    }
    node.queue = FtdQueue::from_sorted_items(node.queue.capacity(), items);
    let history = r.seq(|r| r.bool())?;
    if history.len() > node.sleep.window() {
        return Err(SnapError::new("sleep history exceeds its window"));
    }
    node.sleep = SleepController::from_history(node.sleep.window(), history);
    let entries = r.seq(|r| {
        Ok((
            r_node_id(r)?,
            NeighborEntry {
                xi: r.f64()?,
                last_seen: r_time(r)?,
            },
        ))
    })?;
    node.table = NeighborTable::from_entries(entries);
    node.state = r_mac_state(r)?;
    node.epoch = r.u64()?;
    node.cycles_inactive = r.usize()?;
    node.listen_retries = r.u32()?;
    node.last_tx = r_time(r)?;
    node.alive = r.bool()?;
    node.battery_dead = r.bool()?;
    node.corrupt_rx_prob = r.f64()?;
    node.xi_anchor = r_time(r)?;
    node.cached_tau = r.option(|r| Ok((r_time(r)?, r.u64()?)))?;
    let state = r_radio_state(r)?;
    let since = r_time(r)?;
    let per_state_j = [r.f64()?, r.f64()?, r.f64()?, r.f64()?];
    let switch_j = r.f64()?;
    let switches = r.u64()?;
    node.meter = EnergyMeter::from_raw_parts(state, since, per_state_j, switch_j, switches);
    node.rng = r_rng(r)?;
    node.sender_ctx = r.option(|r| {
        Ok(SenderCtx {
            msg: r_message(r)?,
            window_slots: r.u32()?,
            candidates: r.seq(|r| {
                Ok(Candidate {
                    id: r_node_id(r)?,
                    xi: r.f64()?,
                    buffer_space: r.usize()?,
                })
            })?,
            selection: r.option(|r| {
                Ok(Selection {
                    receivers: r.seq(|r| Ok((r_node_id(r)?, Ftd::new(r.f64()?))))?,
                    receiver_xis: r.seq(|r| r.f64())?,
                    combined_delivery: r.f64()?,
                })
            })?,
            acked: r.seq(r_node_id)?,
        })
    })?;
    node.receiver_ctx = r.option(|r| {
        Ok(ReceiverCtx {
            sender: r_node_id(r)?,
            msg: MessageId(r.u64()?),
            rts_ftd: r.f64()?,
            window_slots: r.u32()?,
            rts_end: r_time(r)?,
            assigned_ftd: r.option(|r| Ok(Ftd::new(r.f64()?)))?,
            ack_slot: r.u32()?,
        })
    })?;
    Ok(())
}

// ---------------------------------------------------------------------
// Metrics / observer sections
// ---------------------------------------------------------------------

fn w_run_metrics(w: &mut SnapWriter, m: &RunMetrics) {
    w.u64(m.generated);
    w.u64(m.delivered);
    w.u64(m.sink_receptions);
    let (count, mean, m2, min, max) = m.delay.raw_parts();
    w.u64(count);
    w.f64(mean);
    w.f64(m2);
    w.f64(min);
    w.f64(max);
    let (lo, hi, buckets, underflow, overflow) = m.delay_hist.raw_parts();
    w.f64(lo);
    w.f64(hi);
    w.seq(buckets, |w, &b| w.u64(b));
    w.u64(underflow);
    w.u64(overflow);
    w.u64(m.drops_overflow);
    w.u64(m.drops_rejected);
    w.u64(m.drops_ftd);
    w.u64(m.attempts);
    w.u64(m.failed_attempts);
    w.u64(m.multicasts);
    w.u64(m.copies_sent);
    for k in m.frames_by_kind {
        w.u64(k);
    }
    w.u64(m.control_bits);
    w.u64(m.data_bits);
    w_fault_counters(w, &m.faults);
}

fn r_run_metrics(r: &mut SnapReader) -> Result<RunMetrics, SnapError> {
    let generated = r.u64()?;
    let delivered = r.u64()?;
    let sink_receptions = r.u64()?;
    let (count, mean, m2, min, max) = (r.u64()?, r.f64()?, r.f64()?, r.f64()?, r.f64()?);
    if mean.is_nan() || m2.is_nan() {
        return Err(SnapError::new("NaN in delay statistics"));
    }
    let delay = RunningStats::from_raw_parts(count, mean, m2, min, max);
    let (lo, hi) = (r.f64()?, r.f64()?);
    let buckets = r.seq(|r| r.u64())?;
    let (underflow, overflow) = (r.u64()?, r.u64()?);
    if !(lo.is_finite() && hi.is_finite() && lo < hi) || buckets.is_empty() {
        return Err(SnapError::new("bad delay histogram geometry"));
    }
    let delay_hist = Histogram::from_raw_parts(lo, hi, buckets, underflow, overflow);
    let mut m = RunMetrics::new(1.0);
    m.generated = generated;
    m.delivered = delivered;
    m.sink_receptions = sink_receptions;
    m.delay = delay;
    m.delay_hist = delay_hist;
    m.drops_overflow = r.u64()?;
    m.drops_rejected = r.u64()?;
    m.drops_ftd = r.u64()?;
    m.attempts = r.u64()?;
    m.failed_attempts = r.u64()?;
    m.multicasts = r.u64()?;
    m.copies_sent = r.u64()?;
    for k in &mut m.frames_by_kind {
        *k = r.u64()?;
    }
    m.control_bits = r.u64()?;
    m.data_bits = r.u64()?;
    m.faults = r_fault_counters(r)?;
    Ok(m)
}

fn w_fault_counters(w: &mut SnapWriter, f: &FaultCounters) {
    w.u64(f.crashes);
    w.u64(f.recoveries);
    w.u64(f.battery_deaths);
    w.u64(f.sink_outages);
    w.u64(f.messages_lost_to_crash);
    w.u64(f.frames_dropped);
    w.u64(f.data_corrupted);
    w.u64(f.retransmissions_triggered);
    w.u64(f.deliveries_despite_faults);
}

// Frozen nine-counter layout (`dftmsn-ckpt/1` mid-payload; the committed
// golden fixture pins it). The five behavioral counters ride the appended
// behavior tail frame instead — see `w_behavior_tail`.
fn r_fault_counters(r: &mut SnapReader) -> Result<FaultCounters, SnapError> {
    Ok(FaultCounters {
        crashes: r.u64()?,
        recoveries: r.u64()?,
        battery_deaths: r.u64()?,
        sink_outages: r.u64()?,
        messages_lost_to_crash: r.u64()?,
        frames_dropped: r.u64()?,
        data_corrupted: r.u64()?,
        retransmissions_triggered: r.u64()?,
        deliveries_despite_faults: r.u64()?,
        ..FaultCounters::default()
    })
}

fn w_window_counters(w: &mut SnapWriter, c: &WindowCounters) {
    w.u64(c.deliveries);
    w.f64(c.delay_sum_secs);
    w.u64(c.drops_overflow);
    w.u64(c.drops_rejected);
    w.u64(c.drops_ftd);
    w.u64(c.collisions);
    w.u64(c.frames_sent);
    for k in c.frames_by_kind {
        w.u64(k);
    }
    w.u64(c.frame_deliveries);
    w.u64(c.control_bits);
    w.u64(c.data_bits);
    w.u64(c.sleeps);
    w.f64(c.sleep_secs);
    w.u64(c.faults);
}

fn r_window_counters(r: &mut SnapReader) -> Result<WindowCounters, SnapError> {
    let mut c = WindowCounters {
        deliveries: r.u64()?,
        delay_sum_secs: r.f64()?,
        drops_overflow: r.u64()?,
        drops_rejected: r.u64()?,
        drops_ftd: r.u64()?,
        collisions: r.u64()?,
        frames_sent: r.u64()?,
        ..WindowCounters::default()
    };
    for k in &mut c.frames_by_kind {
        *k = r.u64()?;
    }
    c.frame_deliveries = r.u64()?;
    c.control_bits = r.u64()?;
    c.data_bits = r.u64()?;
    c.sleeps = r.u64()?;
    c.sleep_secs = r.f64()?;
    c.faults = r.u64()?;
    Ok(c)
}

fn w_world_snapshot(w: &mut SnapWriter, s: &WorldSnapshot) {
    w.f64(s.queue_mean);
    w.u64(s.queue_max);
    w.f64(s.xi_mean);
    w.f64(s.xi_min);
    w.f64(s.xi_max);
    w.f64(s.asleep_fraction);
    w.f64(s.energy_j);
}

// Frozen seven-field layout (`dftmsn-ckpt/1` mid-payload). `alive_nodes`
// rides the behavior tail frame as a patch for the pending row and is
// filled with 0 here; legacy checkpoints leave it 0, which `inspect`
// renders as "unknown" only for the single pending window.
fn r_world_snapshot(r: &mut SnapReader) -> Result<WorldSnapshot, SnapError> {
    Ok(WorldSnapshot {
        queue_mean: r.f64()?,
        queue_max: r.u64()?,
        xi_mean: r.f64()?,
        xi_min: r.f64()?,
        xi_max: r.f64()?,
        asleep_fraction: r.f64()?,
        energy_j: r.f64()?,
        alive_nodes: 0,
    })
}

fn w_recorder_state(w: &mut SnapWriter, s: &RecorderState) {
    w.f64(s.window_secs);
    w.option(s.meta.as_ref(), |w, meta| {
        w.string(&meta.protocol);
        w.u64(meta.seed);
        w.f64(meta.duration_secs);
        w.usize(meta.sensors);
        w.usize(meta.sinks);
    });
    w.bool(s.header_written);
    w.u64(s.cur_index);
    w_window_counters(w, &s.cur);
    w.option(s.pending.as_ref(), w_observe_row);
    w_window_counters(w, &s.totals);
    w.u64(s.windows_emitted);
    w.u64(s.bytes_written);
}

fn w_observe_row(w: &mut SnapWriter, row: &ObserveRow) {
    w.u64(row.window);
    w.f64(row.t0_secs);
    w.f64(row.t1_secs);
    w_window_counters(w, &row.counters);
    w.option(row.snapshot.as_ref(), w_world_snapshot);
}

fn r_observe_row(r: &mut SnapReader) -> Result<ObserveRow, SnapError> {
    Ok(ObserveRow {
        window: r.u64()?,
        t0_secs: r.f64()?,
        t1_secs: r.f64()?,
        counters: r_window_counters(r)?,
        snapshot: r.option(r_world_snapshot)?,
    })
}

fn r_recorder_state(r: &mut SnapReader) -> Result<RecorderState, SnapError> {
    let window_secs = r.f64()?;
    if !window_secs.is_finite() || window_secs < 0.0 {
        return Err(SnapError::new("bad observer window width"));
    }
    Ok(RecorderState {
        window_secs,
        meta: r.option(|r| {
            Ok(RunMeta {
                protocol: r.string()?,
                seed: r.u64()?,
                duration_secs: r.f64()?,
                sensors: r.usize()?,
                sinks: r.usize()?,
            })
        })?,
        header_written: r.bool()?,
        cur_index: r.u64()?,
        cur: r_window_counters(r)?,
        pending: r.option(r_observe_row)?,
        totals: r_window_counters(r)?,
        windows_emitted: r.u64()?,
        bytes_written: r.u64()?,
    })
}

// ---------------------------------------------------------------------
// Whole-simulation encode/decode
// ---------------------------------------------------------------------

impl Simulation {
    /// Serializes the complete live state into a framed, checksummed
    /// `dftmsn-ckpt/1` byte buffer. Call between events — e.g. after
    /// [`step`](Self::step) returns — so the snapshot sits on an event
    /// boundary.
    ///
    /// Takes `&mut self` only to settle outstanding ticked coast leases
    /// into their mobility models first; the settle is observationally a
    /// no-op, so checkpointing never perturbs the run.
    #[must_use]
    pub fn checkpoint_bytes(&mut self) -> Vec<u8> {
        self.settle_coast();
        let mut w = SnapWriter::new();
        self.encode_payload(&mut w);
        let payload = w.into_bytes();
        let mut out = Vec::with_capacity(CKPT_MAGIC.len() + 16 + payload.len());
        out.extend_from_slice(CKPT_MAGIC);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = fnv1a64(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    fn encode_payload(&self, w: &mut SnapWriter) {
        // Parameters — everything construct() needs to rebuild the static
        // world (zones, timings, grid geometry, model parameters).
        w_scenario(w, &self.scenario);
        w_protocol(w, &self.protocol);
        w_config(w, &self.config);
        w.u64(self.seed);
        w.u8(match self.lazy {
            None => 0,
            Some(_) => 1,
        });
        w.seq(&self.fault_plan.events, |w, ev| {
            w.f64(ev.at_secs);
            w_fault_kind(w, &ev.kind);
        });

        // Clock and random streams.
        w_time(w, self.events.now());
        w.u64(self.events.popped());
        w_rng(w, &self.mobility_rng);
        w_rng(w, &self.fault_rng);
        if let Some(lazy) = &self.lazy {
            w.seq(&lazy.rngs, w_rng);
            w.seq(&lazy.synced_at, |w, &t| w_time(w, t));
        }

        // Mobility models (positions are derived from these on restore).
        w.usize(self.mobility.len());
        for m in &self.mobility {
            let state = m.save_state();
            w.seq(&state, |w, &v| w.f64(v));
        }

        // Per-node protocol state.
        w.usize(self.nodes.len());
        for node in &self.nodes {
            w_node(w, node);
        }

        // The radio medium, including frames in flight.
        let medium = self.medium.snapshot_state();
        w.seq(&medium.listening, |w, &b| w.bool(b));
        w.seq(&medium.rx, |w, rx| {
            w.option(rx.as_ref(), |w, &(tx, corrupted)| {
                w.u64(tx);
                w.bool(corrupted);
            });
        });
        w.seq(&medium.active, |w, tx| {
            w.u64(tx.id);
            w_node_id(w, tx.frame.src);
            w.u64(tx.frame.bits);
            w_payload(w, &tx.frame.payload);
            w.seq(&tx.audible, |w, &id| w_node_id(w, id));
            w_time(w, tx.start);
        });
        w.u64(medium.next_id);
        w.u64(medium.counters.frames_sent);
        w.u64(medium.counters.deliveries);
        w.u64(medium.counters.collisions);
        w.u64(medium.counters.bits_sent);

        // Bookkeeping and counters.
        w.u64(self.ids.issued());
        w.seq(self.delivered_ids.raw_words(), |w, &word| w.u64(word));
        w_run_metrics(w, &self.metrics);
        w.seq(&self.deliveries, |w, d| {
            w.u64(d.msg.0);
            w_node_id(w, d.origin);
            w.f64(d.created_secs);
            w.f64(d.delay_secs);
            w_node_id(w, d.sink);
            w.u32(d.hops);
        });

        // The pending event set (sorted by (time, seq); restore re-issues
        // seqs in this order, preserving same-instant tie-breaking).
        let pending = self.events.pending();
        w.usize(pending.len());
        for (at, ev) in &pending {
            w_time(w, *at);
            w_event(w, ev);
        }

        w.u64(self.observe_ticks);
        w.f64(self.global_link_drop);
        let drops = self.link_drop.set_entries();
        w.seq(&drops, |w, &(a, b, p)| {
            w_node_id(w, a);
            w_node_id(w, b);
            w.f64(p);
        });
        w.bool(self.fault_regime);

        // Observer accumulation state (None when no recorder attached).
        let recorder_state = self.observer.as_ref().map(|r| r.snapshot_state());
        w.option(recorder_state.as_ref(), w_recorder_state);

        // Policy frame: id tag, parameters, then runtime state. Appended
        // last so pre-seam checkpoints (which end at the recorder option)
        // keep decoding — reader exhaustion here means legacy Builtin.
        match &self.policy {
            Policy::Builtin(_) => w.u8(0),
            Policy::TwoHop(p) => {
                w.u8(1);
                w.u32(p.budget());
                let entries = p.copies_entries();
                w.seq(&entries, |w, &(m, c)| {
                    w.u64(m.0);
                    w.u32(c);
                });
            }
            Policy::MeetingRate(p) => {
                w.u8(2);
                w.f64(p.horizon_secs());
                w.f64(p.debounce_secs());
                w.f64(p.beta());
                w.seq(p.states(), |w, s| {
                    w.option(s.last_heard.as_ref(), |w, &t| w_time(w, t));
                    w_time(w, s.contact_at);
                    w.f64(s.ewma_gap_secs);
                    w.u64(s.contacts);
                });
            }
        }

        // Behavior tail frame (appended after the policy frame; reader
        // exhaustion there means all-honest, zero behavioral counters and
        // no death anchors — exactly what pre-behavior checkpoints imply).
        w.u8(1); // tail version
        let assigned: Vec<(usize, NodeBehavior)> = self.behaviors.entries().collect();
        w.seq(&assigned, |w, &(i, b)| {
            w.usize(i);
            w.u8(b.tag());
        });
        for c in [
            self.metrics.faults.behavior_changes,
            self.metrics.faults.copies_captured,
            self.metrics.faults.forged_frames,
            self.metrics.faults.forged_detected,
            self.metrics.faults.lied_advertisements,
        ] {
            w.u64(c);
        }
        w.option(self.lifetime.first_death_secs().as_ref(), |w, &t| w.f64(t));
        w.option(self.lifetime.half_death_secs().as_ref(), |w, &t| w.f64(t));
        w.option(self.lifetime.last_death_secs().as_ref(), |w, &t| w.f64(t));
        // The pending observe row embeds a frozen 7-field snapshot layout
        // mid-payload, so its `alive_nodes` travels here as a patch.
        let pending_alive = recorder_state
            .as_ref()
            .and_then(|s| s.pending.as_ref())
            .and_then(|row| row.snapshot.as_ref())
            .map(|s| s.alive_nodes);
        w.option(pending_alive.as_ref(), |w, &a| w.u64(a));
    }

    /// Reconstructs a simulation from [`checkpoint_bytes`] output.
    ///
    /// Returns the simulation plus the restored observer (when the
    /// checkpointed run had one); see [`Resumed::recorder`] for how to
    /// re-attach its output stream.
    ///
    /// # Errors
    ///
    /// [`CkptError::Corrupt`] on bad magic, truncation, checksum mismatch
    /// or a malformed payload; [`CkptError::Invalid`] when the decoded
    /// parameters fail validation.
    ///
    /// [`checkpoint_bytes`]: Self::checkpoint_bytes
    pub fn resume_from_bytes(
        bytes: &[u8],
    ) -> Result<(Simulation, Option<MetricsRecorder>), CkptError> {
        let header = CKPT_MAGIC.len() + 8;
        if bytes.len() < header + 8 {
            return Err(CkptError::corrupt(format!(
                "file too short ({} bytes) to be a checkpoint",
                bytes.len()
            )));
        }
        if &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
            return Err(CkptError::corrupt(
                "bad magic: not a dftmsn-ckpt/1 file".to_owned(),
            ));
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bytes[CKPT_MAGIC.len()..header]);
        let len = u64::from_le_bytes(len_bytes) as usize;
        if bytes.len() != header + len + 8 {
            return Err(CkptError::corrupt(format!(
                "length mismatch: header says {len} payload bytes, file holds {}",
                bytes.len().saturating_sub(header + 8)
            )));
        }
        let payload = &bytes[header..header + len];
        let mut sum_bytes = [0u8; 8];
        sum_bytes.copy_from_slice(&bytes[header + len..]);
        let stored = u64::from_le_bytes(sum_bytes);
        let actual = fnv1a64(payload);
        if stored != actual {
            return Err(CkptError::corrupt(format!(
                "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
            )));
        }
        let mut r = SnapReader::new(payload);
        let out = Self::decode_payload(&mut r)?;
        if !r.is_exhausted() {
            return Err(CkptError::corrupt(format!(
                "{} trailing bytes after the payload",
                r.remaining()
            )));
        }
        Ok(out)
    }

    fn decode_payload(
        r: &mut SnapReader,
    ) -> Result<(Simulation, Option<MetricsRecorder>), CkptError> {
        let scenario = r_scenario(r)?;
        let protocol = r_protocol(r)?;
        let config = r_config(r)?;
        let seed = r.u64()?;
        let mode = match r.u8().map_err(CkptError::from)? {
            0 => MobilityMode::Ticked,
            1 => MobilityMode::Lazy,
            t => {
                return Err(CkptError::corrupt(format!("bad MobilityMode tag {t}")));
            }
        };
        let plan = FaultPlan {
            events: r.seq(|r| {
                Ok(crate::faults::FaultEvent {
                    at_secs: r.f64()?,
                    kind: r_fault_kind(r)?,
                })
            })?,
        };
        scenario.validate().map_err(|e| CkptError::Invalid {
            detail: format!("scenario: {e}"),
        })?;
        protocol.validate().map_err(|e| CkptError::Invalid {
            detail: format!("protocol: {e}"),
        })?;
        plan.validate(&scenario).map_err(|e| CkptError::Invalid {
            detail: format!("fault plan: {e}"),
        })?;
        let n = scenario.node_count();

        // Rebuild the static world; every random draw construction makes
        // is immaterial because each stream is overwritten below.
        let mut sim = Simulation::construct(scenario, protocol, config, seed, mode);

        let now = r_time(r)?;
        let popped = r.u64()?;
        sim.mobility_rng = r_rng(r)?;
        sim.fault_rng = r_rng(r)?;
        if mode == MobilityMode::Lazy {
            let rngs = r.seq(r_rng)?;
            let synced_at = r.seq(r_time)?;
            if rngs.len() != n || synced_at.len() != n {
                return Err(CkptError::corrupt("lazy-mobility table length mismatch"));
            }
            let lazy = sim.lazy.as_mut().expect("lazy mode has lazy state");
            lazy.rngs = rngs;
            lazy.synced_at = synced_at;
        }

        let model_count = r.usize()?;
        if model_count != n {
            return Err(CkptError::corrupt(format!(
                "{model_count} mobility models for {n} nodes"
            )));
        }
        for j in 0..n {
            let state = r.seq(|r| r.f64())?;
            if state.len() != sim.mobility[j].save_state().len() {
                return Err(CkptError::corrupt(format!(
                    "mobility model {j} state length mismatch"
                )));
            }
            sim.mobility[j].load_state(&state);
        }

        let node_count = r.usize()?;
        if node_count != n {
            return Err(CkptError::corrupt(format!(
                "{node_count} node records for {n} nodes"
            )));
        }
        for idx in 0..n {
            restore_node(r, &mut sim.nodes[idx])?;
        }

        let listening = r.seq(|r| r.bool())?;
        let rx = r.seq(|r| r.option(|r| Ok((r.u64()?, r.bool()?))))?;
        let active = r.seq(|r| {
            Ok(ActiveTxState {
                id: r.u64()?,
                frame: Frame {
                    src: r_node_id(r)?,
                    bits: r.u64()?,
                    payload: r_payload(r)?,
                },
                audible: r.seq(r_node_id)?,
                start: r_time(r)?,
            })
        })?;
        let next_id = r.u64()?;
        let counters = dftmsn_radio::medium::MediumCounters {
            frames_sent: r.u64()?,
            deliveries: r.u64()?,
            collisions: r.u64()?,
            bits_sent: r.u64()?,
        };
        if listening.len() != n || rx.len() != n {
            return Err(CkptError::corrupt("medium table length mismatch"));
        }
        sim.medium = Medium::restore_state(MediumState {
            listening,
            rx,
            active,
            next_id,
            counters,
        });

        sim.ids = MessageIdAllocator::from_issued(r.u64()?);
        sim.delivered_ids = DeliveredSet::from_raw_words(r.seq(|r| r.u64())?);
        sim.metrics = r_run_metrics(r)?;
        sim.deliveries = r.seq(|r| {
            Ok(DeliveryRecord {
                msg: MessageId(r.u64()?),
                origin: r_node_id(r)?,
                created_secs: r.f64()?,
                delay_secs: r.f64()?,
                sink: r_node_id(r)?,
                hops: r.u32()?,
            })
        })?;

        let pending_count = r.usize()?;
        let mut pending = Vec::with_capacity(pending_count.min(1 << 20));
        for _ in 0..pending_count {
            let at = r_time(r)?;
            let ev = r_event(r)?;
            if at < now {
                return Err(CkptError::corrupt(format!(
                    "pending event at {at} precedes the checkpoint clock {now}"
                )));
            }
            pending.push((at, ev));
        }
        // Restored runs always come up single-lane: the shard count is an
        // execution knob, not state, so it is never serialized. Callers
        // re-shard with `set_shards` after resume if they want parallelism.
        sim.events = ShardedEventQueue::restore(1, now, popped, pending, |_| 0);

        sim.observe_ticks = r.u64()?;
        sim.global_link_drop = r.f64()?;
        let drops = r.seq(|r| Ok((r_node_id(r)?, r_node_id(r)?, r.f64()?)))?;
        for &(a, b, _) in &drops {
            if a.index() >= n || b.index() >= n {
                return Err(CkptError::corrupt("link-drop entry names unknown node"));
            }
        }
        sim.link_drop = LinkDropTable::from_set_entries(n, &drops);
        sim.fault_regime = r.bool()?;
        sim.fault_plan = plan;

        let mut recorder_state = r.option(r_recorder_state)?;

        // Policy frame. A pre-seam checkpoint ends at the recorder option,
        // so reader exhaustion selects the legacy Builtin encoding.
        if r.is_exhausted() {
            sim.install_policy(PolicySpec::Builtin);
        } else {
            match r.u8()? {
                0 => sim.install_policy(PolicySpec::Builtin),
                1 => {
                    let budget = r.u32()?;
                    let entries = r.seq(|r| Ok((MessageId(r.u64()?), r.u32()?)))?;
                    sim.install_policy(PolicySpec::TwoHop { budget });
                    if let Policy::TwoHop(p) = &mut sim.policy {
                        p.restore_copies(entries);
                    }
                }
                2 => {
                    let horizon_secs = r.f64()?;
                    let debounce_secs = r.f64()?;
                    let beta = r.f64()?;
                    let states = r.seq(|r| {
                        Ok(crate::policy::MeetState {
                            last_heard: r.option(r_time)?,
                            contact_at: r_time(r)?,
                            ewma_gap_secs: r.f64()?,
                            contacts: r.u64()?,
                        })
                    })?;
                    if states.len() != n {
                        return Err(CkptError::corrupt("meetrate state table length mismatch"));
                    }
                    sim.install_policy(PolicySpec::MeetingRate {
                        horizon_secs,
                        debounce_secs,
                        beta,
                    });
                    if let Policy::MeetingRate(p) = &mut sim.policy {
                        p.restore_states(states);
                    }
                }
                t => {
                    return Err(CkptError::corrupt(format!("bad policy tag {t}")));
                }
            }
        }

        // Behavior tail frame. Exhaustion means a pre-behavior checkpoint:
        // all-honest assignments, zero behavioral counters, no recorded
        // death anchors (the census below is still recomputed exactly).
        let mut anchors: (Option<f64>, Option<f64>, Option<f64>) = (None, None, None);
        let mut pending_alive: Option<u64> = None;
        if !r.is_exhausted() {
            let tv = r.u8()?;
            if tv != 1 {
                return Err(CkptError::corrupt(format!(
                    "bad behavior tail version {tv}"
                )));
            }
            let assigned = r.seq(|r| Ok((r.usize()?, r.u8()?)))?;
            for (i, tag) in assigned {
                if i >= n {
                    return Err(CkptError::corrupt("behavior entry names unknown node"));
                }
                let b = NodeBehavior::from_tag(tag)
                    .ok_or_else(|| CkptError::corrupt(format!("bad NodeBehavior tag {tag}")))?;
                sim.behaviors.set(i, b);
                if b.is_adversarial() {
                    sim.par.occupied[i] = true;
                }
            }
            sim.metrics.faults.behavior_changes = r.u64()?;
            sim.metrics.faults.copies_captured = r.u64()?;
            sim.metrics.faults.forged_frames = r.u64()?;
            sim.metrics.faults.forged_detected = r.u64()?;
            sim.metrics.faults.lied_advertisements = r.u64()?;
            anchors = (
                r.option(SnapReader::f64)?,
                r.option(SnapReader::f64)?,
                r.option(SnapReader::f64)?,
            );
            pending_alive = r.option(SnapReader::u64)?;
        }
        // The alive census is derived state: recompute it from restored
        // node liveness rather than trusting the wire.
        let alive_sensors = sim
            .nodes
            .iter()
            .take(sim.scenario.sensors)
            .filter(|node| node.alive)
            .count();
        sim.lifetime
            .restore(alive_sensors, anchors.0, anchors.1, anchors.2);
        if let (Some(state), Some(alive)) = (recorder_state.as_mut(), pending_alive) {
            if let Some(snap) = state.pending.as_mut().and_then(|row| row.snapshot.as_mut()) {
                snap.alive_nodes = alive;
            }
        }

        // Derived state: positions mirror the models, the grid mirrors the
        // positions, the hot table mirrors the nodes.
        for j in 0..n {
            sim.positions[j] = sim.mobility[j].position();
        }
        sim.grid.rebuild(&sim.positions);
        for idx in 0..n {
            sim.sync_hot(idx);
            let alive = sim.nodes[idx].alive;
            sim.hot.sync_alive(idx, alive);
        }

        let recorder = recorder_state.map(MetricsRecorder::restore_state);
        if let Some(rec) = &recorder {
            sim.trace = Some(Box::new(rec.clone()));
            sim.observer = Some(rec.clone());
        }
        Ok((sim, recorder))
    }

    /// Atomically writes a checkpoint file: the bytes go to `<path>.tmp`,
    /// any existing checkpoint rotates to `<path>.bak`, and the temp file
    /// renames into place. A crash mid-write therefore never destroys the
    /// last good checkpoint.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] when any filesystem step fails.
    pub fn checkpoint(&mut self, path: &Path) -> Result<(), CkptError> {
        let bytes = self.checkpoint_bytes();
        let tmp = sibling(path, ".tmp");
        fs::write(&tmp, &bytes).map_err(|e| CkptError::Io {
            op: "write checkpoint",
            path: tmp.clone(),
            source: e,
        })?;
        if path.exists() {
            let bak = sibling(path, ".bak");
            fs::rename(path, &bak).map_err(|e| CkptError::Io {
                op: "rotate checkpoint to",
                path: bak,
                source: e,
            })?;
        }
        fs::rename(&tmp, path).map_err(|e| CkptError::Io {
            op: "commit checkpoint",
            path: path.to_owned(),
            source: e,
        })
    }

    /// Loads a checkpoint file and reconstructs the run, falling back to
    /// the `<path>.bak` rotation when the primary file is corrupt.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] when the file cannot be read,
    /// [`CkptError::Corrupt`]/[`CkptError::Invalid`] when neither the
    /// primary nor the backup parses (the primary's error is reported).
    pub fn resume(path: &Path) -> Result<Resumed, CkptError> {
        match Self::resume_file(path) {
            Ok((sim, recorder)) => Ok(Resumed {
                sim,
                recorder,
                from_backup: false,
            }),
            Err(primary) if primary.is_corrupt() => {
                let bak = sibling(path, ".bak");
                match Self::resume_file(&bak) {
                    Ok((sim, recorder)) => Ok(Resumed {
                        sim,
                        recorder,
                        from_backup: true,
                    }),
                    Err(_) => Err(primary),
                }
            }
            Err(e) => Err(e),
        }
    }

    fn resume_file(path: &Path) -> Result<(Simulation, Option<MetricsRecorder>), CkptError> {
        let bytes = fs::read(path).map_err(|e| CkptError::Io {
            op: "read checkpoint",
            path: path.to_owned(),
            source: e,
        })?;
        Self::resume_from_bytes(&bytes).map_err(|e| e.with_path(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    /// A `Write` handle over a shared byte buffer, so tests can keep
    /// reading what the recorder streamed after handing the sink away.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn bytes(&self) -> Vec<u8> {
            self.0.lock().unwrap().clone()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn scenario() -> ScenarioParams {
        ScenarioParams {
            sensors: 16,
            sinks: 2,
            duration_secs: 800,
            ..ScenarioParams::paper_default()
        }
    }

    /// Pops events until the next one would land after `t`, leaving the
    /// simulation on an event boundary at or before `t`.
    fn run_until(sim: &mut Simulation, t: SimTime) {
        while sim.events.peek_time().is_some_and(|at| at <= t) {
            assert!(sim.step());
        }
    }

    fn golden(r: &SimReport) -> [u64; 8] {
        [
            r.generated,
            r.delivered,
            r.sink_receptions,
            r.frames_sent,
            r.collisions,
            r.attempts,
            r.multicasts,
            r.copies_sent,
        ]
    }

    fn build(kind: ProtocolKind, seed: u64, mode: MobilityMode) -> Simulation {
        Simulation::builder(scenario(), kind)
            .seed(seed)
            .mobility_mode(mode)
            .build()
    }

    #[test]
    fn mid_run_resume_reproduces_the_uninterrupted_run() {
        for kind in [ProtocolKind::Opt, ProtocolKind::Epidemic] {
            let baseline = build(kind, 7, MobilityMode::Ticked).run();

            let mut sim = build(kind, 7, MobilityMode::Ticked);
            run_until(&mut sim, SimTime::from_secs(400));
            let bytes = sim.checkpoint_bytes();
            drop(sim);

            let (resumed, recorder) = Simulation::resume_from_bytes(&bytes).unwrap();
            assert!(recorder.is_none());
            let report = resumed.run();
            assert_eq!(
                golden(&report),
                golden(&baseline),
                "{kind}: resumed counters drifted"
            );
            assert_eq!(report.events_processed, baseline.events_processed);
            assert_eq!(
                report.mean_delay_secs.to_bits(),
                baseline.mean_delay_secs.to_bits()
            );
            assert_eq!(
                report.total_sensor_energy_j.to_bits(),
                baseline.total_sensor_energy_j.to_bits()
            );
            assert_eq!(report.deliveries, baseline.deliveries);
        }
    }

    #[test]
    fn lazy_mode_resume_is_bit_identical() {
        let baseline = build(ProtocolKind::Opt, 11, MobilityMode::Lazy).run();

        let mut sim = build(ProtocolKind::Opt, 11, MobilityMode::Lazy);
        run_until(&mut sim, SimTime::from_secs(350));
        let bytes = sim.checkpoint_bytes();
        let (resumed, _) = Simulation::resume_from_bytes(&bytes).unwrap();
        let report = resumed.run();
        assert_eq!(golden(&report), golden(&baseline));
        assert_eq!(
            report.total_sensor_energy_j.to_bits(),
            baseline.total_sensor_energy_j.to_bits()
        );
    }

    #[test]
    fn resume_with_faults_preserves_fault_state() {
        let plan = FaultPlan::node_failures(&scenario(), 0.3, Some(120.0), 9);
        let baseline = Simulation::builder(scenario(), ProtocolKind::Opt)
            .seed(9)
            .faults(plan.clone())
            .build()
            .run();
        assert!(baseline.faults.crashes > 0, "plan must inject something");

        let mut sim = Simulation::builder(scenario(), ProtocolKind::Opt)
            .seed(9)
            .faults(plan)
            .build();
        run_until(&mut sim, SimTime::from_secs(400));
        let bytes = sim.checkpoint_bytes();
        let (resumed, _) = Simulation::resume_from_bytes(&bytes).unwrap();
        let report = resumed.run();
        assert_eq!(golden(&report), golden(&baseline));
        assert_eq!(report.faults, baseline.faults);
    }

    #[test]
    fn observer_stream_is_byte_identical_across_resume() {
        let window = 40.0;

        // Uninterrupted reference run.
        let full_buf = SharedBuf::default();
        let full_rec = MetricsRecorder::new(window).with_output(Box::new(full_buf.clone()));
        let _ = Simulation::builder(scenario(), ProtocolKind::Opt)
            .seed(21)
            .observe(full_rec)
            .build()
            .run();
        let want = full_buf.bytes();

        // Interrupted at 400 s, checkpointed, resumed in a "new process".
        let part_buf = SharedBuf::default();
        let part_rec = MetricsRecorder::new(window).with_output(Box::new(part_buf.clone()));
        let mut sim = Simulation::builder(scenario(), ProtocolKind::Opt)
            .seed(21)
            .observe(part_rec)
            .build();
        run_until(&mut sim, SimTime::from_secs(400));
        let bytes = sim.checkpoint_bytes();
        let cursor = sim
            .observer
            .as_ref()
            .unwrap()
            .snapshot_state()
            .bytes_written as usize;
        let head = part_buf.bytes()[..cursor].to_vec();
        drop(sim);

        let (resumed, recorder) = Simulation::resume_from_bytes(&bytes).unwrap();
        let tail_buf = SharedBuf::default();
        let recorder = recorder.expect("observer state travels in the checkpoint");
        let _ = recorder.with_output(Box::new(tail_buf.clone()));
        let _ = resumed.run();

        let mut got = head;
        got.extend_from_slice(&tail_buf.bytes());
        assert_eq!(
            got, want,
            "resumed observe JSONL diverged from the uninterrupted stream"
        );
    }

    #[test]
    fn corruption_is_rejected_with_a_diagnostic() {
        let mut sim = build(ProtocolKind::Opt, 3, MobilityMode::Ticked);
        run_until(&mut sim, SimTime::from_secs(100));
        let bytes = sim.checkpoint_bytes();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        let err = Simulation::resume_from_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // Any payload bit flip must fail the checksum.
        let mut flipped = bytes.clone();
        let mid = CKPT_MAGIC.len() + 8 + (flipped.len() - CKPT_MAGIC.len() - 16) / 2;
        flipped[mid] ^= 0x01;
        let err = Simulation::resume_from_bytes(&flipped).unwrap_err();
        assert!(err.is_corrupt(), "{err}");

        // Truncation.
        let err = Simulation::resume_from_bytes(&bytes[..bytes.len() - 9]).unwrap_err();
        assert!(err.is_corrupt(), "{err}");

        // Empty input.
        let err = Simulation::resume_from_bytes(&[]).unwrap_err();
        assert!(err.to_string().contains("too short"), "{err}");
    }

    #[test]
    fn checkpoint_file_rotates_and_falls_back_to_backup() {
        let dir = std::env::temp_dir().join(format!("dftmsn-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");

        let mut sim = build(ProtocolKind::Opt, 5, MobilityMode::Ticked);
        run_until(&mut sim, SimTime::from_secs(200));
        sim.checkpoint(&path).unwrap();
        run_until(&mut sim, SimTime::from_secs(400));
        sim.checkpoint(&path).unwrap();
        let baseline = golden(&sim.run());

        // Both the primary and the rotated backup exist.
        assert!(path.exists());
        assert!(sibling(&path, ".bak").exists());

        // The healthy primary resumes and finishes identically.
        let resumed = Simulation::resume(&path).unwrap();
        assert!(!resumed.from_backup);
        assert_eq!(golden(&resumed.sim.run()), baseline);

        // Corrupt the primary: resume falls back to the 200 s backup and
        // still reaches the same end state (earlier checkpoint, same run).
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let recovered = Simulation::resume(&path).unwrap();
        assert!(recovered.from_backup);
        assert_eq!(golden(&recovered.sim.run()), baseline);

        // With the backup also gone, the corruption error surfaces.
        std::fs::remove_file(sibling(&path, ".bak")).unwrap();
        let err = Simulation::resume(&path).unwrap_err();
        assert!(err.is_corrupt(), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_report_covers_the_elapsed_horizon() {
        let mut sim = build(ProtocolKind::Opt, 2, MobilityMode::Ticked);
        run_until(&mut sim, SimTime::from_secs(300));
        let report = sim.finish_partial();
        assert!(report.duration_secs <= 300.0 + 1.0);
        assert!(report.generated > 0);
        assert!(report.total_sensor_energy_j > 0.0);
    }
}
