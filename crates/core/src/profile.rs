//! Per-event-kind wall-time profiling for the discrete-event core.
//!
//! [`EventProfile`] is a fixed table of counters the event loop feeds when
//! profiling is enabled ([`crate::world::Simulation::run_profiled`]): one
//! row per event kind holding a pop count, total handler nanoseconds and a
//! coarse power-of-two histogram of per-event cost. The histogram buckets
//! are `[2^b, 2^(b+1))` ns for `b` in `0..HIST_BUCKETS`, which spans 1 ns
//! to ~8 ms — far beyond any single handler — so nothing is ever dropped;
//! the top bucket absorbs outliers.
//!
//! Profiling costs two `Instant::now` calls per event (~40 ns), so the
//! profiled run's *aggregate* wall time is not comparable with an
//! unprofiled baseline; the per-kind *shares* are what the table is for.
//! A disabled profile costs one predictable branch per event.

use std::time::Duration;

/// Power-of-two histogram buckets per kind (1 ns .. ~8 ms).
pub const HIST_BUCKETS: usize = 24;

/// Counters for one event kind.
#[derive(Debug, Clone)]
pub struct KindStats {
    /// Human-readable kind label (e.g. `"Timer:WakeUp"`).
    pub label: &'static str,
    /// Events of this kind dispatched.
    pub count: u64,
    /// Total wall nanoseconds spent in this kind's handler.
    pub total_ns: u128,
    /// `hist[b]` counts events whose handler took `[2^b, 2^(b+1))` ns
    /// (top bucket is open-ended).
    pub hist: [u64; HIST_BUCKETS],
}

impl KindStats {
    /// Mean handler cost in nanoseconds (0 when the kind never fired).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total_ns as f64 / self.count as f64
    }

    /// Approximate p50 handler cost: the lower edge of the bucket holding
    /// the median sample.
    #[must_use]
    pub fn p50_ns(&self) -> u64 {
        self.quantile_bucket_lo(0.5)
    }

    /// Approximate p99 handler cost (lower edge of the p99 bucket).
    #[must_use]
    pub fn p99_ns(&self) -> u64 {
        self.quantile_bucket_lo(0.99)
    }

    fn quantile_bucket_lo(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count as f64 * q).ceil() as u64;
        let mut seen = 0;
        for (b, &c) in self.hist.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_lo_ns(b);
            }
        }
        bucket_lo_ns(HIST_BUCKETS - 1)
    }
}

/// Lower edge of histogram bucket `b` in nanoseconds.
#[must_use]
pub fn bucket_lo_ns(b: usize) -> u64 {
    1u64 << b
}

/// The per-kind profile of one simulation run.
#[derive(Debug, Clone)]
pub struct EventProfile {
    /// One row per event kind, in the core's dispatch order.
    pub kinds: Vec<KindStats>,
}

impl EventProfile {
    /// An empty profile over the given kind labels.
    #[must_use]
    pub fn new(labels: &[&'static str]) -> Self {
        EventProfile {
            kinds: labels
                .iter()
                .map(|&label| KindStats {
                    label,
                    count: 0,
                    total_ns: 0,
                    hist: [0; HIST_BUCKETS],
                })
                .collect(),
        }
    }

    /// Records one handled event of `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is out of range for the label set.
    pub fn record(&mut self, kind: usize, took: Duration) {
        let ns = took.as_nanos();
        let row = &mut self.kinds[kind];
        row.count += 1;
        row.total_ns += ns;
        let bucket = (128 - u128::leading_zeros(ns | 1) - 1).min(HIST_BUCKETS as u32 - 1);
        row.hist[bucket as usize] += 1;
    }

    /// Total events recorded across all kinds.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.kinds.iter().map(|k| k.count).sum()
    }

    /// Total handler nanoseconds recorded across all kinds.
    #[must_use]
    pub fn total_ns(&self) -> u128 {
        self.kinds.iter().map(|k| k.total_ns).sum()
    }

    /// Rows sorted by descending total cost, zero-count kinds dropped.
    #[must_use]
    pub fn by_cost(&self) -> Vec<&KindStats> {
        let mut rows: Vec<&KindStats> = self.kinds.iter().filter(|k| k.count > 0).collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
        rows
    }
}

/// Power-of-two histogram buckets for events-per-interval (1 .. ~32k).
pub const INTERVAL_HIST_BUCKETS: usize = 16;

/// Telemetry of the within-epoch parallel executor
/// ([`crate::world::Simulation::advance`] with `threads > 1`).
///
/// Every interval the executor either splits its drained events into
/// parallel chunks plus a sequential commit lane, falls back to a fully
/// sequential interval (the interaction quarantine flooded or an event
/// shape the chunk path cannot take appeared on a clean node), or bypasses
/// classification entirely while a flood streak persists. These counters
/// make Amdahl losses attributable: the sequential-commit fraction bounds
/// the achievable speedup, and `stall_ns` measures worker idleness at the
/// interval join barrier.
///
/// Pure telemetry: never serialized, never consulted by the engine, and
/// bit-identical results are guaranteed regardless of which path ran.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Parallel intervals executed (excluding fallbacks and bypasses).
    pub intervals: u64,
    /// Intervals classified but executed sequentially: the marked set
    /// exceeded the cap (quarantine flood) or a clean node held an event
    /// kind outside the chunk-executable set.
    pub fallback_intervals: u64,
    /// Intervals run as plain sequential steps without attempting
    /// classification (flood-streak backoff).
    pub bypass_intervals: u64,
    /// Events executed inside parallel chunks.
    pub parallel_events: u64,
    /// Events executed on the sequential commit lane (including all events
    /// of fallback intervals, but not bypass intervals).
    pub sequential_events: u64,
    /// Interval terminators (faults, observer ticks, lazy sweeps) executed
    /// at interval boundaries.
    pub terminator_events: u64,
    /// Events spawned and consumed entirely within an interval.
    pub spawns_consumed: u64,
    /// Events spawned within an interval and re-filed past its bound.
    pub spawns_parked: u64,
    /// Wall nanoseconds of the parallel chunk phase (spawn through join).
    pub chunk_ns: u64,
    /// Estimated worker idle nanoseconds at interval join barriers:
    /// `chunk wall × workers − Σ worker busy time`.
    pub stall_ns: u64,
    /// `hist[b]` counts intervals that drained `[2^b, 2^(b+1))` events
    /// (top bucket open-ended); fallback and bypass intervals included.
    pub drained_hist: [u64; INTERVAL_HIST_BUCKETS],
}

impl ExecStats {
    /// Records the drained-event count of one interval into the histogram.
    pub fn record_drained(&mut self, n: usize) {
        let bucket =
            (64 - u64::leading_zeros((n as u64) | 1) - 1).min(INTERVAL_HIST_BUCKETS as u32 - 1);
        self.drained_hist[bucket as usize] += 1;
    }

    /// Fraction of interval-executed events that ran on the sequential
    /// commit lane (1.0 when nothing ran in parallel) — the Amdahl bound's
    /// serial share, directly.
    #[must_use]
    pub fn sequential_fraction(&self) -> f64 {
        let total = self.parallel_events + self.sequential_events;
        if total == 0 {
            return 1.0;
        }
        self.sequential_events as f64 / total as f64
    }

    /// Total intervals of any flavor.
    #[must_use]
    pub fn total_intervals(&self) -> u64 {
        self.intervals + self.fallback_intervals + self.bypass_intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_stats_histogram_and_fractions() {
        let mut s = ExecStats::default();
        s.record_drained(0); // bucket 0
        s.record_drained(1); // bucket 0
        s.record_drained(1000); // bucket 9
        assert_eq!(s.drained_hist[0], 2);
        assert_eq!(s.drained_hist[9], 1);
        assert!((s.sequential_fraction() - 1.0).abs() < 1e-12);
        s.parallel_events = 3;
        s.sequential_events = 1;
        assert!((s.sequential_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn records_into_log2_buckets() {
        let mut p = EventProfile::new(&["a", "b"]);
        p.record(0, Duration::from_nanos(1));
        p.record(0, Duration::from_nanos(7));
        p.record(1, Duration::from_nanos(1024));
        assert_eq!(p.kinds[0].count, 2);
        assert_eq!(p.kinds[0].total_ns, 8);
        assert_eq!(p.kinds[0].hist[0], 1); // 1 ns → bucket [1,2)
        assert_eq!(p.kinds[0].hist[2], 1); // 7 ns → bucket [4,8)
        assert_eq!(p.kinds[1].hist[10], 1); // 1024 ns → bucket [1024,2048)
        assert_eq!(p.total_events(), 3);
        assert_eq!(p.total_ns(), 8 + 1024);
    }

    #[test]
    fn zero_duration_lands_in_bottom_bucket() {
        let mut p = EventProfile::new(&["a"]);
        p.record(0, Duration::ZERO);
        assert_eq!(p.kinds[0].hist[0], 1);
        assert_eq!(p.kinds[0].total_ns, 0);
    }

    #[test]
    fn outliers_land_in_top_bucket() {
        let mut p = EventProfile::new(&["a"]);
        p.record(0, Duration::from_secs(1));
        assert_eq!(p.kinds[0].hist[HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn quantiles_walk_the_histogram() {
        let mut p = EventProfile::new(&["a"]);
        for _ in 0..99 {
            p.record(0, Duration::from_nanos(16));
        }
        p.record(0, Duration::from_nanos(100_000));
        assert_eq!(p.kinds[0].p50_ns(), 16);
        assert_eq!(p.kinds[0].p99_ns(), 16);
        let mut q = EventProfile::new(&["a"]);
        for _ in 0..10 {
            q.record(0, Duration::from_nanos(1 << 10));
        }
        assert_eq!(q.kinds[0].p50_ns(), 1 << 10);
    }

    #[test]
    fn by_cost_sorts_and_filters() {
        let mut p = EventProfile::new(&["cheap", "dear", "unused"]);
        p.record(0, Duration::from_nanos(10));
        p.record(1, Duration::from_nanos(10_000));
        let rows = p.by_cost();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "dear");
        assert_eq!(rows[1].label, "cheap");
    }
}
