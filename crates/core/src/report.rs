//! Run metrics and the final [`SimReport`].
//!
//! [`RunMetrics`] is the live accumulator the world updates while events
//! fire; [`SimReport`] is the immutable summary a finished run returns —
//! the quantities the paper's evaluation plots (delivery ratio, average
//! nodal power consumption rate, average delivery delay) plus the
//! diagnostics behind them.

use crate::message::MessageId;
use dftmsn_metrics::histogram::Histogram;
use dftmsn_metrics::stats::RunningStats;
use dftmsn_radio::ids::NodeId;
use dftmsn_sim::snap::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// One first-copy delivery, for post-hoc coverage analysis (e.g. field
/// reconstruction in the sensing layer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    /// The delivered message.
    pub msg: MessageId,
    /// The sensor that sensed it.
    pub origin: NodeId,
    /// Sensing time (s since run start).
    pub created_secs: f64,
    /// End-to-end delay (s).
    pub delay_secs: f64,
    /// The receiving sink.
    pub sink: NodeId,
    /// Handovers from the sensing node to the sink.
    pub hops: u32,
}

/// Per-node end-of-run summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSummary {
    /// The node.
    pub id: NodeId,
    /// Final routing metric (ξ or ZBR history).
    pub final_metric: f64,
    /// Total energy consumed (J).
    pub energy_j: f64,
    /// Messages still queued at the end.
    pub queue_len: usize,
    /// Radio sleep/wake transitions.
    pub switches: u64,
    /// Energy spent per radio state `[sleep, idle, rx, tx]` (J), excluding
    /// switch costs. In the Berkeley-mote model receive power equals
    /// idle-listening power, so the engine meters reception time as idle
    /// and the rx slot stays zero.
    pub energy_by_state_j: [f64; 4],
}

/// Fault-attributed counters.
///
/// All zero on a fault-free run (an empty
/// [`FaultPlan`](crate::faults::FaultPlan) injects nothing), so any nonzero
/// field is directly attributable to injected faults.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct FaultCounters {
    /// Node crash events applied (including sink outages).
    pub crashes: u64,
    /// Node recovery events applied (including sinks coming back).
    pub recoveries: u64,
    /// Permanent battery deaths applied.
    pub battery_deaths: u64,
    /// Sink-down events applied (also counted in `crashes`).
    pub sink_outages: u64,
    /// Queued message copies destroyed by crashes.
    pub messages_lost_to_crash: u64,
    /// (frame, receiver) receptions suppressed by link faults or because
    /// the receiver was dead.
    pub frames_dropped: u64,
    /// DATA frames corrupted at a receiver and discarded.
    pub data_corrupted: u64,
    /// Lost or corrupted DATA receptions the sender must retry: the copy
    /// stays queued, so a later multicast re-transmits it.
    pub retransmissions_triggered: u64,
    /// First-copy sink deliveries after the first fault fired — the
    /// "delivered despite faults" numerator.
    pub deliveries_despite_faults: u64,
    /// `BehaviorChange` events applied (adversarial or back to honest).
    pub behavior_changes: u64,
    /// DATA copies accepted by an adversarial node — each is a copy the
    /// honest network believes is in flight but the adversary will sit on
    /// (or, for blackholes, has already destroyed).
    pub copies_captured: u64,
    /// Frames a forger emitted with corrupted or fabricated content.
    pub forged_frames: u64,
    /// Forged DATA receptions detected and discarded at a receiver.
    pub forged_detected: u64,
    /// RTS/CTS advertisements in which a liar inflated its ξ/FTD.
    pub lied_advertisements: u64,
}

impl FaultCounters {
    /// True when any fault left a trace in this run.
    #[must_use]
    pub fn any(&self) -> bool {
        *self != FaultCounters::default()
    }
}

/// Network-lifetime summary: LEACH-style death anchors plus the end-of-run
/// sensor energy distribution.
///
/// Marked `#[non_exhaustive]`: only the engine constructs it (tests can use
/// [`Lifetime::quiet`]), so new lifetime diagnostics can land without
/// breaking downstream consumers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct Lifetime {
    /// First node death time (s) — FND. `None` when every sensor survived.
    pub first_death_secs: Option<f64>,
    /// Half nodes dead time (s) — HND: when the alive census first reached
    /// half the sensor population or less.
    pub half_death_secs: Option<f64>,
    /// Last node death time (s) — LND: when the alive census reached zero.
    pub last_death_secs: Option<f64>,
    /// Sensors alive (not crashed, not battery-dead) at the end of the run.
    pub alive_at_end: u64,
    /// Distribution of per-sensor total energy consumed (J).
    pub energy_hist: Histogram,
}

impl Lifetime {
    /// The lifetime block of a run in which no sensor ever died and no
    /// energy histogram was collected — the baseline for tests and for
    /// legacy serialized reports that predate the lifetime tier.
    #[must_use]
    pub fn quiet(sensors: usize) -> Lifetime {
        Lifetime {
            first_death_secs: None,
            half_death_secs: None,
            last_death_secs: None,
            alive_at_end: sensors as u64,
            energy_hist: Histogram::new(0.0, 1.0, 8),
        }
    }
}

/// Live counters updated during a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Messages sensed (generated) by sensors.
    pub generated: u64,
    /// Unique messages that reached any sink.
    pub delivered: u64,
    /// Total data receptions at sinks (including duplicate copies).
    pub sink_receptions: u64,
    /// End-to-end delay of first-copy deliveries (s).
    pub delay: RunningStats,
    /// Delay distribution (s).
    pub delay_hist: Histogram,
    /// Copies evicted by queue overflow (drop-tail).
    pub drops_overflow: u64,
    /// Copies rejected outright because a full queue had nothing less
    /// important.
    pub drops_rejected: u64,
    /// Copies purged for exceeding the FTD threshold.
    pub drops_ftd: u64,
    /// Entries into the asynchronous listening phase, counting each
    /// busy-channel re-listen within a cycle.
    pub attempts: u64,
    /// Attempts abandoned before any data was acknowledged.
    pub failed_attempts: u64,
    /// Multicasts with at least one acknowledged receiver.
    pub multicasts: u64,
    /// Acknowledged copies handed to receivers.
    pub copies_sent: u64,
    /// Frames transmitted, by kind: [preamble, rts, cts, schedule, data, ack].
    pub frames_by_kind: [u64; 6],
    /// Control bits put on the air.
    pub control_bits: u64,
    /// Data bits put on the air.
    pub data_bits: u64,
    /// Fault-attributed counters (all zero without injected faults).
    pub faults: FaultCounters,
}

impl RunMetrics {
    /// Creates zeroed metrics; the delay histogram spans `[0, max_delay)`
    /// seconds.
    #[must_use]
    pub fn new(max_delay_secs: f64) -> Self {
        RunMetrics {
            generated: 0,
            delivered: 0,
            sink_receptions: 0,
            delay: RunningStats::new(),
            delay_hist: Histogram::new(0.0, max_delay_secs.max(1.0), 100),
            drops_overflow: 0,
            drops_rejected: 0,
            drops_ftd: 0,
            attempts: 0,
            failed_attempts: 0,
            multicasts: 0,
            copies_sent: 0,
            frames_by_kind: [0; 6],
            control_bits: 0,
            data_bits: 0,
            faults: FaultCounters::default(),
        }
    }

    /// Records a first-copy delivery with the given end-to-end delay.
    pub fn record_delivery(&mut self, delay_secs: f64) {
        self.delivered += 1;
        self.delay.record(delay_secs);
        self.delay_hist.record(delay_secs);
    }

    /// Index into `frames_by_kind` for a frame tag.
    #[must_use]
    pub fn kind_index(tag: &str) -> usize {
        match tag {
            "PRE" => 0,
            "RTS" => 1,
            "CTS" => 2,
            "SCHD" => 3,
            "DATA" => 4,
            _ => 5,
        }
    }
}

/// The summary of one finished simulation run.
///
/// Marked `#[non_exhaustive]`: only the engine constructs reports, and new
/// diagnostic fields can land without breaking downstream consumers.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SimReport {
    /// Variant label (OPT, NOOPT, …).
    pub protocol: String,
    /// Run seed.
    pub seed: u64,
    /// Simulated seconds.
    pub duration_secs: f64,
    /// Sensor count.
    pub sensors: usize,
    /// Sink count.
    pub sinks: usize,
    /// Messages generated.
    pub generated: u64,
    /// Unique messages delivered to a sink.
    pub delivered: u64,
    /// Total sink data receptions (with duplicates).
    pub sink_receptions: u64,
    /// Mean first-copy delivery delay (s); 0 when nothing was delivered.
    pub mean_delay_secs: f64,
    /// 95th-percentile delivery delay (s).
    pub p95_delay_secs: f64,
    /// Average sensor power consumption rate (mW) — the paper's Fig. 2(b)
    /// metric.
    pub avg_sensor_power_mw: f64,
    /// Total energy consumed by all sensors (J).
    pub total_sensor_energy_j: f64,
    /// Sensor energy per radio state `[sleep, idle, rx, tx]` (J),
    /// excluding switch costs.
    pub energy_by_state_j: [f64; 4],
    /// Control bits transmitted.
    pub control_bits: u64,
    /// Data bits transmitted.
    pub data_bits: u64,
    /// Frames transmitted in total.
    pub frames_sent: u64,
    /// (frame, receiver) losses to collisions.
    pub collisions: u64,
    /// Queue drop-tail evictions.
    pub drops_overflow: u64,
    /// Full-queue rejections.
    pub drops_rejected: u64,
    /// FTD-threshold purges.
    pub drops_ftd: u64,
    /// Entries into the asynchronous listening phase (including
    /// busy-channel re-listens).
    pub attempts: u64,
    /// Attempts with no acknowledged receiver.
    pub failed_attempts: u64,
    /// Successful multicasts.
    pub multicasts: u64,
    /// Acknowledged copies transferred.
    pub copies_sent: u64,
    /// Discrete events the engine processed to complete the run — the
    /// denominator for events/second throughput figures.
    pub events_processed: u64,
    /// Mean sensor delivery probability at the end of the run.
    pub mean_final_xi: f64,
    /// Mean handovers per delivered message (1 = handed straight to a
    /// sink).
    pub mean_hops: f64,
    /// Fault-attributed counters (all zero without injected faults).
    pub faults: FaultCounters,
    /// Network-lifetime summary (death anchors, final energy spread).
    pub lifetime: Lifetime,
    /// Full delay statistics.
    pub delay_stats: RunningStats,
    /// Delay distribution.
    pub delay_hist: Histogram,
    /// Every first-copy delivery (origin, timing, sink).
    pub deliveries: Vec<DeliveryRecord>,
    /// Per-sensor end-of-run summaries (sinks excluded).
    pub node_summaries: Vec<NodeSummary>,
}

impl SimReport {
    /// Delivery ratio: unique deliveries over generated messages, in
    /// `[0, 1]` (0 when nothing was generated).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.delivered as f64 / self.generated as f64
        }
    }

    /// Control-plane overhead: control bits per delivered data bit
    /// (infinite-ish when nothing was delivered; reported as raw ratio of
    /// control to total transmitted data bits if undelivered).
    #[must_use]
    pub fn control_overhead(&self) -> f64 {
        if self.data_bits == 0 {
            return 0.0;
        }
        self.control_bits as f64 / self.data_bits as f64
    }

    /// Acknowledged copies per unique delivery — the replication factor.
    #[must_use]
    pub fn copies_per_delivery(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.copies_sent as f64 / self.delivered as f64
        }
    }

    /// Exports the headline metrics (and per-node summaries) as a JSON
    /// object for external plotting pipelines.
    #[must_use]
    pub fn to_json(&self) -> dftmsn_metrics::json::Json {
        use dftmsn_metrics::json::Json;
        let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
        let nodes: Vec<Json> = self
            .node_summaries
            .iter()
            .map(|n| {
                Json::object()
                    .field("id", n.id.index())
                    .field("final_metric", n.final_metric)
                    .field("energy_j", n.energy_j)
                    .field("queue_len", n.queue_len)
                    .field("switches", n.switches)
            })
            .collect();
        Json::object()
            .field("protocol", self.protocol.as_str())
            .field("seed", self.seed)
            .field("duration_secs", self.duration_secs)
            .field("sensors", self.sensors)
            .field("sinks", self.sinks)
            .field("generated", self.generated)
            .field("delivered", self.delivered)
            .field("delivery_ratio", self.delivery_ratio())
            .field("sink_receptions", self.sink_receptions)
            .field("mean_delay_secs", self.mean_delay_secs)
            .field("p95_delay_secs", self.p95_delay_secs)
            .field("avg_sensor_power_mw", self.avg_sensor_power_mw)
            .field("total_sensor_energy_j", self.total_sensor_energy_j)
            .field(
                "energy_by_state_j",
                Json::Arr(
                    self.energy_by_state_j
                        .iter()
                        .map(|&x| Json::Num(x))
                        .collect(),
                ),
            )
            .field("control_bits", self.control_bits)
            .field("data_bits", self.data_bits)
            .field("frames_sent", self.frames_sent)
            .field("collisions", self.collisions)
            .field("drops_overflow", self.drops_overflow)
            .field("drops_rejected", self.drops_rejected)
            .field("drops_ftd", self.drops_ftd)
            .field("attempts", self.attempts)
            .field("multicasts", self.multicasts)
            .field("copies_sent", self.copies_sent)
            .field("events_processed", self.events_processed)
            .field("mean_final_xi", self.mean_final_xi)
            .field("mean_hops", self.mean_hops)
            .field(
                "faults",
                Json::object()
                    .field("crashes", self.faults.crashes)
                    .field("recoveries", self.faults.recoveries)
                    .field("battery_deaths", self.faults.battery_deaths)
                    .field("sink_outages", self.faults.sink_outages)
                    .field("messages_lost_to_crash", self.faults.messages_lost_to_crash)
                    .field("frames_dropped", self.faults.frames_dropped)
                    .field("data_corrupted", self.faults.data_corrupted)
                    .field(
                        "retransmissions_triggered",
                        self.faults.retransmissions_triggered,
                    )
                    .field(
                        "deliveries_despite_faults",
                        self.faults.deliveries_despite_faults,
                    )
                    .field("behavior_changes", self.faults.behavior_changes)
                    .field("copies_captured", self.faults.copies_captured)
                    .field("forged_frames", self.faults.forged_frames)
                    .field("forged_detected", self.faults.forged_detected)
                    .field("lied_advertisements", self.faults.lied_advertisements),
            )
            .field(
                "lifetime",
                Json::object()
                    .field("first_death_secs", opt_num(self.lifetime.first_death_secs))
                    .field("half_death_secs", opt_num(self.lifetime.half_death_secs))
                    .field("last_death_secs", opt_num(self.lifetime.last_death_secs))
                    .field("alive_at_end", self.lifetime.alive_at_end),
            )
            .field("nodes", Json::Arr(nodes))
    }

    /// Serializes the *complete* report (including the fields
    /// [`to_json`](Self::to_json) elides: delay statistics, the delay
    /// histogram, per-delivery records) into the little-endian binary
    /// layout shared with the checkpoint subsystem, so sweep harnesses can
    /// persist finished runs losslessly and skip them on a rerun.
    #[must_use]
    pub fn snap_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u8(2); // layout version (2 = v1 + behavioral counters + lifetime)
        w.string(&self.protocol);
        w.u64(self.seed);
        w.f64(self.duration_secs);
        w.usize(self.sensors);
        w.usize(self.sinks);
        w.u64(self.generated);
        w.u64(self.delivered);
        w.u64(self.sink_receptions);
        w.f64(self.mean_delay_secs);
        w.f64(self.p95_delay_secs);
        w.f64(self.avg_sensor_power_mw);
        w.f64(self.total_sensor_energy_j);
        for &e in &self.energy_by_state_j {
            w.f64(e);
        }
        w.u64(self.control_bits);
        w.u64(self.data_bits);
        w.u64(self.frames_sent);
        w.u64(self.collisions);
        w.u64(self.drops_overflow);
        w.u64(self.drops_rejected);
        w.u64(self.drops_ftd);
        w.u64(self.attempts);
        w.u64(self.failed_attempts);
        w.u64(self.multicasts);
        w.u64(self.copies_sent);
        w.u64(self.events_processed);
        w.f64(self.mean_final_xi);
        w.f64(self.mean_hops);
        for c in [
            self.faults.crashes,
            self.faults.recoveries,
            self.faults.battery_deaths,
            self.faults.sink_outages,
            self.faults.messages_lost_to_crash,
            self.faults.frames_dropped,
            self.faults.data_corrupted,
            self.faults.retransmissions_triggered,
            self.faults.deliveries_despite_faults,
        ] {
            w.u64(c);
        }
        let (count, mean, m2, min, max) = self.delay_stats.raw_parts();
        w.u64(count);
        w.f64(mean);
        w.f64(m2);
        w.f64(min);
        w.f64(max);
        let (lo, hi, buckets, underflow, overflow) = self.delay_hist.raw_parts();
        w.f64(lo);
        w.f64(hi);
        w.seq(buckets, |w, &b| w.u64(b));
        w.u64(underflow);
        w.u64(overflow);
        w.seq(&self.deliveries, |w, d| {
            w.u64(d.msg.0);
            w.usize(d.origin.index());
            w.f64(d.created_secs);
            w.f64(d.delay_secs);
            w.usize(d.sink.index());
            w.u32(d.hops);
        });
        w.seq(&self.node_summaries, |w, n| {
            w.usize(n.id.index());
            w.f64(n.final_metric);
            w.f64(n.energy_j);
            w.usize(n.queue_len);
            w.u64(n.switches);
            for &e in &n.energy_by_state_j {
                w.f64(e);
            }
        });
        self.write_v2_tail(&mut w);
        w.into_bytes()
    }

    /// The v2-only suffix: behavioral fault counters plus the lifetime
    /// block, strictly appended after the v1 payload so v1 decoding can
    /// stop right before it.
    fn write_v2_tail(&self, w: &mut SnapWriter) {
        for c in [
            self.faults.behavior_changes,
            self.faults.copies_captured,
            self.faults.forged_frames,
            self.faults.forged_detected,
            self.faults.lied_advertisements,
        ] {
            w.u64(c);
        }
        w.option(self.lifetime.first_death_secs.as_ref(), |w, &t| w.f64(t));
        w.option(self.lifetime.half_death_secs.as_ref(), |w, &t| w.f64(t));
        w.option(self.lifetime.last_death_secs.as_ref(), |w, &t| w.f64(t));
        w.u64(self.lifetime.alive_at_end);
        let (lo, hi, buckets, underflow, overflow) = self.lifetime.energy_hist.raw_parts();
        w.f64(lo);
        w.f64(hi);
        w.seq(buckets, |w, &b| w.u64(b));
        w.u64(underflow);
        w.u64(overflow);
    }

    /// Reconstructs a report serialized with [`snap_bytes`](Self::snap_bytes).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on truncation, trailing bytes, an unknown
    /// layout version, or histogram geometry that would not validate.
    pub fn from_snap_bytes(bytes: &[u8]) -> Result<SimReport, SnapError> {
        let mut r = SnapReader::new(bytes);
        let version = r.u8()?;
        if version != 1 && version != 2 {
            return Err(SnapError::new(format!(
                "unknown SimReport layout version {version}"
            )));
        }
        let protocol = r.string()?;
        let seed = r.u64()?;
        let duration_secs = r.f64()?;
        let sensors = r.usize()?;
        let sinks = r.usize()?;
        let generated = r.u64()?;
        let delivered = r.u64()?;
        let sink_receptions = r.u64()?;
        let mean_delay_secs = r.f64()?;
        let p95_delay_secs = r.f64()?;
        let avg_sensor_power_mw = r.f64()?;
        let total_sensor_energy_j = r.f64()?;
        let mut energy_by_state_j = [0.0; 4];
        for e in &mut energy_by_state_j {
            *e = r.f64()?;
        }
        let control_bits = r.u64()?;
        let data_bits = r.u64()?;
        let frames_sent = r.u64()?;
        let collisions = r.u64()?;
        let drops_overflow = r.u64()?;
        let drops_rejected = r.u64()?;
        let drops_ftd = r.u64()?;
        let attempts = r.u64()?;
        let failed_attempts = r.u64()?;
        let multicasts = r.u64()?;
        let copies_sent = r.u64()?;
        let events_processed = r.u64()?;
        let mean_final_xi = r.f64()?;
        let mean_hops = r.f64()?;
        let mut faults = FaultCounters {
            crashes: r.u64()?,
            recoveries: r.u64()?,
            battery_deaths: r.u64()?,
            sink_outages: r.u64()?,
            messages_lost_to_crash: r.u64()?,
            frames_dropped: r.u64()?,
            data_corrupted: r.u64()?,
            retransmissions_triggered: r.u64()?,
            deliveries_despite_faults: r.u64()?,
            ..FaultCounters::default()
        };
        let count = r.u64()?;
        let mean = r.f64()?;
        let m2 = r.f64()?;
        let min = r.f64()?;
        let max = r.f64()?;
        let delay_stats = RunningStats::from_raw_parts(count, mean, m2, min, max);
        let lo = r.f64()?;
        let hi = r.f64()?;
        let buckets = r.seq(SnapReader::u64)?;
        let underflow = r.u64()?;
        let overflow = r.u64()?;
        if !(lo.is_finite() && hi.is_finite() && lo < hi) || buckets.is_empty() {
            return Err(SnapError::new("invalid delay histogram geometry"));
        }
        let delay_hist = Histogram::from_raw_parts(lo, hi, buckets, underflow, overflow);
        let deliveries = r.seq(|r| {
            Ok(DeliveryRecord {
                msg: MessageId(r.u64()?),
                origin: NodeId(r.usize()?),
                created_secs: r.f64()?,
                delay_secs: r.f64()?,
                sink: NodeId(r.usize()?),
                hops: r.u32()?,
            })
        })?;
        let node_summaries = r.seq(|r| {
            let id = NodeId(r.usize()?);
            let final_metric = r.f64()?;
            let energy_j = r.f64()?;
            let queue_len = r.usize()?;
            let switches = r.u64()?;
            let mut energy_by_state_j = [0.0; 4];
            for e in &mut energy_by_state_j {
                *e = r.f64()?;
            }
            Ok(NodeSummary {
                id,
                final_metric,
                energy_j,
                queue_len,
                switches,
                energy_by_state_j,
            })
        })?;
        let lifetime = if version >= 2 {
            faults.behavior_changes = r.u64()?;
            faults.copies_captured = r.u64()?;
            faults.forged_frames = r.u64()?;
            faults.forged_detected = r.u64()?;
            faults.lied_advertisements = r.u64()?;
            let first_death_secs = r.option(SnapReader::f64)?;
            let half_death_secs = r.option(SnapReader::f64)?;
            let last_death_secs = r.option(SnapReader::f64)?;
            let alive_at_end = r.u64()?;
            let elo = r.f64()?;
            let ehi = r.f64()?;
            let ebuckets = r.seq(SnapReader::u64)?;
            let eunder = r.u64()?;
            let eover = r.u64()?;
            if !(elo.is_finite() && ehi.is_finite() && elo < ehi) || ebuckets.is_empty() {
                return Err(SnapError::new("invalid energy histogram geometry"));
            }
            Lifetime {
                first_death_secs,
                half_death_secs,
                last_death_secs,
                alive_at_end,
                energy_hist: Histogram::from_raw_parts(elo, ehi, ebuckets, eunder, eover),
            }
        } else {
            // v1 predates the lifetime tier: behavioral counters stay zero
            // and the lifetime block reads as "nothing ever died".
            Lifetime::quiet(sensors)
        };
        if !r.is_exhausted() {
            return Err(SnapError::new("trailing bytes after SimReport payload"));
        }
        Ok(SimReport {
            protocol,
            seed,
            duration_secs,
            sensors,
            sinks,
            generated,
            delivered,
            sink_receptions,
            mean_delay_secs,
            p95_delay_secs,
            avg_sensor_power_mw,
            total_sensor_energy_j,
            energy_by_state_j,
            control_bits,
            data_bits,
            frames_sent,
            collisions,
            drops_overflow,
            drops_rejected,
            drops_ftd,
            attempts,
            failed_attempts,
            multicasts,
            copies_sent,
            events_processed,
            mean_final_xi,
            mean_hops,
            faults,
            lifetime,
            delay_stats,
            delay_hist,
            deliveries,
            node_summaries,
        })
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}: ratio {:.1}% ({} / {}), power {:.3} mW, delay {:.0} s, collisions {}",
            self.protocol,
            self.delivery_ratio() * 100.0,
            self.delivered,
            self.generated,
            self.avg_sensor_power_mw,
            self.mean_delay_secs,
            self.collisions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(generated: u64, delivered: u64) -> SimReport {
        SimReport {
            protocol: "OPT".into(),
            seed: 1,
            duration_secs: 100.0,
            sensors: 10,
            sinks: 1,
            generated,
            delivered,
            sink_receptions: delivered,
            mean_delay_secs: 10.0,
            p95_delay_secs: 20.0,
            avg_sensor_power_mw: 1.0,
            total_sensor_energy_j: 1.0,
            energy_by_state_j: [0.0; 4],
            control_bits: 500,
            data_bits: 1000,
            frames_sent: 10,
            collisions: 0,
            drops_overflow: 0,
            drops_rejected: 0,
            drops_ftd: 0,
            attempts: 5,
            failed_attempts: 1,
            multicasts: 4,
            copies_sent: 8,
            events_processed: 100,
            mean_final_xi: 0.4,
            mean_hops: 1.0,
            faults: FaultCounters::default(),
            lifetime: Lifetime::quiet(10),
            delay_stats: RunningStats::new(),
            delay_hist: Histogram::new(0.0, 100.0, 10),
            deliveries: Vec::new(),
            node_summaries: Vec::new(),
        }
    }

    #[test]
    fn delivery_ratio_handles_zero_generation() {
        assert_eq!(report(0, 0).delivery_ratio(), 0.0);
        assert_eq!(report(10, 5).delivery_ratio(), 0.5);
    }

    #[test]
    fn overhead_and_copies() {
        let r = report(10, 4);
        assert!((r.control_overhead() - 0.5).abs() < 1e-12);
        assert!((r.copies_per_delivery() - 2.0).abs() < 1e-12);
        assert_eq!(report(10, 0).copies_per_delivery(), 0.0);
    }

    #[test]
    fn summary_mentions_protocol_and_ratio() {
        let s = report(10, 5).summary();
        assert!(s.contains("OPT"));
        assert!(s.contains("50.0%"));
    }

    #[test]
    fn run_metrics_record_delivery() {
        let mut m = RunMetrics::new(1000.0);
        m.record_delivery(10.0);
        m.record_delivery(30.0);
        assert_eq!(m.delivered, 2);
        assert_eq!(m.delay.count(), 2);
        assert_eq!(m.delay.mean(), 20.0);
        assert_eq!(m.delay_hist.total(), 2);
    }

    #[test]
    fn fault_counters_default_to_quiet_and_render_in_json() {
        let mut r = report(10, 5);
        assert!(!r.faults.any(), "fresh counters must read as fault-free");
        r.faults.crashes = 2;
        r.faults.frames_dropped = 7;
        assert!(r.faults.any());
        let js = r.to_json().render();
        assert!(js.contains("\"faults\""), "{js}");
        assert!(js.contains("\"crashes\":2"), "{js}");
        assert!(js.contains("\"frames_dropped\":7"), "{js}");
    }

    #[test]
    fn snap_round_trip_is_lossless() {
        let mut r = report(10, 5);
        r.faults.crashes = 3;
        r.delay_stats.record(12.5);
        r.delay_stats.record(31.25);
        r.delay_hist.record(12.5);
        r.deliveries.push(DeliveryRecord {
            msg: MessageId(42),
            origin: NodeId(3),
            created_secs: 5.5,
            delay_secs: 12.5,
            sink: NodeId(11),
            hops: 2,
        });
        r.node_summaries.push(NodeSummary {
            id: NodeId(3),
            final_metric: 0.625,
            energy_j: 1.75,
            queue_len: 4,
            switches: 9,
            energy_by_state_j: [0.1, 0.2, 0.0, 0.4],
        });
        let bytes = r.snap_bytes();
        let back = SimReport::from_snap_bytes(&bytes).expect("round trip");
        assert_eq!(back.to_json().render(), r.to_json().render());
        assert_eq!(back.failed_attempts, r.failed_attempts);
        assert_eq!(back.deliveries, r.deliveries);
        assert_eq!(back.node_summaries, r.node_summaries);
        assert_eq!(back.delay_stats.raw_parts(), r.delay_stats.raw_parts());
        let (lo, hi, buckets, u, o) = r.delay_hist.raw_parts();
        let (blo, bhi, bbuckets, bu, bo) = back.delay_hist.raw_parts();
        assert_eq!(
            (blo.to_bits(), bhi.to_bits(), bu, bo),
            (lo.to_bits(), hi.to_bits(), u, o)
        );
        assert_eq!(bbuckets, buckets);
    }

    #[test]
    fn snap_decode_rejects_corruption() {
        let r = report(10, 5);
        let bytes = r.snap_bytes();
        // Truncation anywhere must error, not panic.
        assert!(SimReport::from_snap_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(SimReport::from_snap_bytes(&[]).is_err());
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(SimReport::from_snap_bytes(&padded).is_err());
        // Unknown version byte is rejected.
        let mut vers = bytes;
        vers[0] = 99;
        assert!(SimReport::from_snap_bytes(&vers).is_err());
    }

    #[test]
    fn snap_v2_round_trips_behavioral_counters_and_lifetime() {
        let mut r = report(10, 5);
        r.faults.copies_captured = 13;
        r.faults.forged_frames = 4;
        r.faults.lied_advertisements = 21;
        r.lifetime.first_death_secs = Some(312.5);
        r.lifetime.half_death_secs = Some(1000.25);
        r.lifetime.alive_at_end = 3;
        r.lifetime.energy_hist = Histogram::new(0.0, 2.0, 16);
        r.lifetime.energy_hist.record(0.5);
        r.lifetime.energy_hist.record(1.5);
        let back = SimReport::from_snap_bytes(&r.snap_bytes()).expect("round trip");
        assert_eq!(back.faults, r.faults);
        assert_eq!(back.lifetime, r.lifetime);
        let js = back.to_json().render();
        assert!(js.contains("\"copies_captured\":13"), "{js}");
        assert!(js.contains("\"first_death_secs\":312.5"), "{js}");
        assert!(js.contains("\"last_death_secs\":null"), "{js}");
    }

    #[test]
    fn snap_v1_payloads_still_decode_as_pre_lifetime_reports() {
        // A v1 payload is exactly the v2 bytes minus the appended tail,
        // with the version byte rolled back — sweep progress files written
        // before the lifetime tier must keep loading.
        let r = report(10, 5);
        let full = r.snap_bytes();
        let mut tail = SnapWriter::new();
        r.write_v2_tail(&mut tail);
        let tail_len = tail.into_bytes().len();
        let mut v1 = full[..full.len() - tail_len].to_vec();
        v1[0] = 1;
        let back = SimReport::from_snap_bytes(&v1).expect("v1 decode");
        assert_eq!(back.faults, FaultCounters::default());
        assert_eq!(back.lifetime, Lifetime::quiet(10));
        assert_eq!(back.generated, r.generated);
        // But a truncated v2 payload is corruption, not a v1 record.
        let mut bad = full[..full.len() - tail_len].to_vec();
        assert!(SimReport::from_snap_bytes(&bad).is_err());
        bad.push(0);
        assert!(SimReport::from_snap_bytes(&bad).is_err());
    }

    #[test]
    fn kind_indices_are_distinct() {
        let tags = ["PRE", "RTS", "CTS", "SCHD", "DATA", "ACK"];
        let idx: std::collections::HashSet<usize> =
            tags.iter().map(|t| RunMetrics::kind_index(t)).collect();
        assert_eq!(idx.len(), 6);
    }
}
