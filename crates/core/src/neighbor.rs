//! Neighbor knowledge and receiver selection (paper Secs. 3.2.1–3.2.2).
//!
//! During the asynchronous phase a node overhears RTS/CTS packets and
//! builds a [`NeighborTable`] of delivery probabilities; the table feeds
//! the τ_max and contention-window optimizers. When a sender has collected
//! the CTS replies for a message, [`select_receivers`] runs the greedy
//! algorithm of Sec. 3.2.2: walk candidates by descending ξ, keep the
//! qualified ones, and stop as soon as the combined delivery probability
//! of the multicast reaches the threshold *R*.

use crate::ftd::Ftd;
use dftmsn_radio::ids::NodeId;
use dftmsn_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One row of the neighbor table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborEntry {
    /// The neighbor's advertised delivery probability.
    pub xi: f64,
    /// When the advertisement was overheard.
    pub last_seen: SimTime,
}

/// Per-node table of overheard neighbor delivery probabilities.
///
/// # Examples
///
/// ```
/// use dftmsn_core::neighbor::NeighborTable;
/// use dftmsn_radio::ids::NodeId;
/// use dftmsn_sim::time::{SimDuration, SimTime};
///
/// let mut t = NeighborTable::new();
/// t.observe(NodeId(2), 0.6, SimTime::from_secs(10));
/// let fresh = t.fresh_xis(SimTime::from_secs(20), SimDuration::from_secs(300));
/// assert_eq!(fresh, vec![0.6]);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborTable {
    entries: HashMap<NodeId, NeighborEntry>,
}

impl NeighborTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or refreshes) an overheard advertisement.
    ///
    /// # Panics
    ///
    /// Panics if `xi` is outside `[0, 1]`.
    pub fn observe(&mut self, id: NodeId, xi: f64, now: SimTime) {
        assert!(
            xi.is_finite() && (0.0..=1.0).contains(&xi),
            "ξ {xi} outside [0,1]"
        );
        self.entries
            .insert(id, NeighborEntry { xi, last_seen: now });
    }

    /// Number of entries, stale or not.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `id`, if any.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<NeighborEntry> {
        self.entries.get(&id).copied()
    }

    /// The ξ values of entries observed within `ttl` of `now`, in
    /// deterministic (node-id) order.
    #[must_use]
    pub fn fresh_xis(&self, now: SimTime, ttl: SimDuration) -> Vec<f64> {
        let mut fresh: Vec<(NodeId, f64)> = self
            .entries
            .iter()
            .filter(|(_, e)| now.saturating_since(e.last_seen) <= ttl)
            .map(|(&id, e)| (id, e.xi))
            .collect();
        fresh.sort_by_key(|&(id, _)| id);
        fresh.into_iter().map(|(_, xi)| xi).collect()
    }

    /// How many fresh neighbors advertise a ξ strictly above `own_xi` —
    /// the expected number of CTS repliers, input to the Eq. 14 window
    /// search.
    #[must_use]
    pub fn qualified_count(&self, own_xi: f64, now: SimTime, ttl: SimDuration) -> usize {
        self.entries
            .values()
            .filter(|e| now.saturating_since(e.last_seen) <= ttl && e.xi > own_xi)
            .count()
    }

    /// Drops entries older than `ttl`.
    pub fn prune(&mut self, now: SimTime, ttl: SimDuration) {
        self.entries
            .retain(|_, e| now.saturating_since(e.last_seen) <= ttl);
    }

    /// Every entry sorted by node id, for deterministic checkpointing.
    #[must_use]
    pub fn sorted_entries(&self) -> Vec<(NodeId, NeighborEntry)> {
        let mut entries: Vec<(NodeId, NeighborEntry)> =
            self.entries.iter().map(|(&id, &e)| (id, e)).collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        entries
    }

    /// Rebuilds a table from [`sorted_entries`](Self::sorted_entries)
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if any ξ is outside `[0, 1]` (via [`observe`](Self::observe)).
    #[must_use]
    pub fn from_entries(entries: impl IntoIterator<Item = (NodeId, NeighborEntry)>) -> Self {
        let mut table = Self::new();
        for (id, e) in entries {
            table.observe(id, e.xi, e.last_seen);
        }
        table
    }
}

/// A CTS replier: a qualified receiver candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The candidate node.
    pub id: NodeId,
    /// Its advertised delivery probability.
    pub xi: f64,
    /// Its advertised buffer space for the message's FTD class.
    pub buffer_space: usize,
}

/// The outcome of receiver selection: the chosen subset Φ with the FTD to
/// attach to each receiver's copy (Eq. 2).
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// Chosen receivers in transmission-schedule order (descending ξ) with
    /// their copy FTDs.
    pub receivers: Vec<(NodeId, Ftd)>,
    /// The ξ values of the chosen receivers, aligned with `receivers`.
    pub receiver_xis: Vec<f64>,
    /// Combined delivery probability `1 − (1 − F)·∏(1 − ξₘ)` achieved.
    pub combined_delivery: f64,
}

impl Selection {
    /// True when no receiver qualified.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.receivers.is_empty()
    }

    /// Empties the selection, keeping the vector capacity for reuse.
    pub fn clear(&mut self) {
        self.receivers.clear();
        self.receiver_xis.clear();
        self.combined_delivery = 0.0;
    }
}

/// Working memory for [`select_receivers_into`], reused across cycles so
/// steady-state selection performs no heap allocation.
#[derive(Debug, Default)]
pub struct SelectionScratch {
    /// Candidate indices in greedy (descending-ξ) walk order.
    order: Vec<u32>,
    /// ξ of Φ \ {j} while computing receiver j's copy FTD.
    others: Vec<f64>,
}

/// The greedy receiver-selection algorithm of Sec. 3.2.2.
///
/// Walks `candidates` by descending ξ, admits those with `ξ > sender_xi`
/// and positive buffer space, and stops once the combined delivery
/// probability of the multicast exceeds `threshold_r`. Copy FTDs follow
/// Eq. 2 over the final set Φ.
///
/// Candidate ids are expected to be distinct (each neighbor replies with
/// at most one CTS per exchange); duplicates would be treated as distinct
/// receivers.
///
/// # Panics
///
/// Panics if `sender_xi` or `threshold_r` is outside `[0, 1]`.
#[must_use]
pub fn select_receivers(
    sender_xi: f64,
    msg_ftd: Ftd,
    candidates: &[Candidate],
    threshold_r: f64,
) -> Selection {
    let mut scratch = SelectionScratch::default();
    let mut out = Selection::default();
    select_receivers_into(
        sender_xi,
        msg_ftd,
        candidates,
        threshold_r,
        &mut scratch,
        &mut out,
    );
    out
}

/// Allocation-free form of [`select_receivers`]: writes the chosen set into
/// `out` (cleared first), using `scratch` as working memory. The simulation
/// hot path calls this with pooled buffers so steady-state selection never
/// touches the heap.
///
/// # Panics
///
/// Panics if `sender_xi` or `threshold_r` is outside `[0, 1]`.
pub fn select_receivers_into(
    sender_xi: f64,
    msg_ftd: Ftd,
    candidates: &[Candidate],
    threshold_r: f64,
    scratch: &mut SelectionScratch,
    out: &mut Selection,
) {
    assert!(
        sender_xi.is_finite() && (0.0..=1.0).contains(&sender_xi),
        "sender ξ {sender_xi} outside [0,1]"
    );
    assert!(
        (0.0..=1.0).contains(&threshold_r),
        "threshold R {threshold_r} outside [0,1]"
    );
    out.clear();
    if candidates.is_empty() {
        // Degenerate input: nothing replied, so there is nothing to walk.
        // `out` stays empty with a combined delivery of exactly 0.
        return;
    }
    scratch.order.clear();
    scratch.order.extend(0..candidates.len() as u32);
    // Descending ξ; ties broken by id for determinism. total_cmp so a
    // NaN advertisement (a bug upstream) sorts deterministically instead
    // of panicking mid-selection.
    scratch.order.sort_by(|&a, &b| {
        let (a, b) = (&candidates[a as usize], &candidates[b as usize]);
        b.xi.total_cmp(&a.xi).then_with(|| a.id.cmp(&b.id))
    });

    // Greedy admission; the copy FTDs are placeholders until Φ is final.
    for &ci in &scratch.order {
        let c = &candidates[ci as usize];
        if c.xi.is_finite() && c.xi > sender_xi && c.buffer_space > 0 {
            out.receivers.push((c.id, Ftd::NEW));
            out.receiver_xis.push(c.xi);
        }
        if msg_ftd.combined_delivery(&out.receiver_xis) > threshold_r {
            break;
        }
    }
    if out.receivers.is_empty() {
        // No candidate qualified: report an empty selection with combined
        // delivery 0 rather than the message's own FTD.
        return;
    }

    // Eq. 2 over the final set Φ.
    for j in 0..out.receivers.len() {
        scratch.others.clear();
        scratch.others.extend_from_slice(&out.receiver_xis[..j]);
        scratch.others.extend_from_slice(&out.receiver_xis[j + 1..]);
        out.receivers[j].1 = msg_ftd.receiver_copy(sender_xi, &scratch.others);
    }
    out.combined_delivery = msg_ftd.combined_delivery(&out.receiver_xis);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: usize, xi: f64, space: usize) -> Candidate {
        Candidate {
            id: NodeId(id),
            xi,
            buffer_space: space,
        }
    }

    #[test]
    fn table_observe_and_refresh() {
        let mut t = NeighborTable::new();
        t.observe(NodeId(1), 0.3, SimTime::from_secs(1));
        t.observe(NodeId(1), 0.5, SimTime::from_secs(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(NodeId(1)).unwrap().xi, 0.5);
    }

    #[test]
    fn stale_entries_are_filtered_and_pruned() {
        let mut t = NeighborTable::new();
        t.observe(NodeId(1), 0.3, SimTime::from_secs(0));
        t.observe(NodeId(2), 0.7, SimTime::from_secs(100));
        let now = SimTime::from_secs(150);
        let ttl = SimDuration::from_secs(100);
        assert_eq!(t.fresh_xis(now, ttl), vec![0.7]);
        assert_eq!(t.qualified_count(0.5, now, ttl), 1);
        assert_eq!(t.qualified_count(0.8, now, ttl), 0);
        t.prune(now, ttl);
        assert_eq!(t.len(), 1);
        assert!(t.get(NodeId(1)).is_none());
    }

    #[test]
    fn fresh_xis_order_is_deterministic() {
        let mut t = NeighborTable::new();
        t.observe(NodeId(9), 0.9, SimTime::ZERO);
        t.observe(NodeId(1), 0.1, SimTime::ZERO);
        t.observe(NodeId(5), 0.5, SimTime::ZERO);
        assert_eq!(
            t.fresh_xis(SimTime::ZERO, SimDuration::from_secs(1)),
            vec![0.1, 0.5, 0.9]
        );
    }

    #[test]
    fn selection_prefers_high_xi_and_stops_at_threshold() {
        let candidates = [
            cand(1, 0.9, 5),
            cand(2, 0.8, 5),
            cand(3, 0.7, 5),
            cand(4, 0.6, 5),
        ];
        // Fresh message, R = 0.95: 0.9 → 0.9; +0.8 → 0.98 > R, stop.
        let sel = select_receivers(0.1, Ftd::NEW, &candidates, 0.95);
        let ids: Vec<NodeId> = sel.receivers.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![NodeId(1), NodeId(2)]);
        assert!(sel.combined_delivery > 0.95);
    }

    #[test]
    fn unqualified_candidates_are_skipped() {
        let candidates = [
            cand(1, 0.9, 0),  // no buffer space
            cand(2, 0.05, 5), // ξ below sender
            cand(3, 0.5, 5),
        ];
        let sel = select_receivers(0.2, Ftd::NEW, &candidates, 0.95);
        let ids: Vec<NodeId> = sel.receivers.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![NodeId(3)]);
    }

    #[test]
    fn empty_or_hopeless_candidates_give_empty_selection() {
        let sel = select_receivers(0.5, Ftd::NEW, &[], 0.95);
        assert!(sel.is_empty());
        assert_eq!(sel.combined_delivery, 0.0);

        let sel = select_receivers(0.9, Ftd::NEW, &[cand(1, 0.5, 5)], 0.95);
        assert!(sel.is_empty(), "candidate below sender ξ");
    }

    #[test]
    fn high_ftd_message_needs_fewer_receivers() {
        let candidates = [cand(1, 0.9, 5), cand(2, 0.8, 5), cand(3, 0.7, 5)];
        let fresh = select_receivers(0.1, Ftd::NEW, &candidates, 0.95);
        let redundant = select_receivers(0.1, Ftd::new(0.9), &candidates, 0.95);
        assert!(redundant.receivers.len() <= fresh.receivers.len());
        assert_eq!(redundant.receivers.len(), 1, "0.9 + one 0.9-ξ hop > 0.95");
    }

    #[test]
    fn copy_ftds_follow_eq2() {
        let candidates = [cand(1, 0.5, 5), cand(2, 0.25, 5)];
        // Sender ξ = 0.1, fresh message, R high enough to take both.
        let sel = select_receivers(0.1, Ftd::NEW, &candidates, 0.99);
        assert_eq!(sel.receivers.len(), 2);
        // Receiver 1 (ξ=0.5): others = sender(0.1) + receiver2(0.25):
        // F = 1 − 0.9·0.75 = 0.325
        let (id1, f1) = sel.receivers[0];
        assert_eq!(id1, NodeId(1));
        assert!((f1.value() - 0.325).abs() < 1e-12);
        // Receiver 2 (ξ=0.25): others = sender(0.1) + receiver1(0.5):
        // F = 1 − 0.9·0.5 = 0.55
        let (id2, f2) = sel.receivers[1];
        assert_eq!(id2, NodeId(2));
        assert!((f2.value() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn a_sink_candidate_short_circuits_selection() {
        let candidates = [cand(1, 1.0, usize::MAX), cand(2, 0.8, 5)];
        let sel = select_receivers(0.3, Ftd::NEW, &candidates, 0.95);
        assert_eq!(sel.receivers.len(), 1);
        assert_eq!(sel.receivers[0].0, NodeId(1));
        assert_eq!(sel.combined_delivery, 1.0);
    }

    #[test]
    fn empty_selection_reports_zero_combined_even_for_redundant_messages() {
        // A hopeless candidate set yields an empty Φ whose combined
        // delivery is 0 — a non-event, not the message's own FTD.
        let sel = select_receivers(0.9, Ftd::new(0.8), &[cand(1, 0.5, 5)], 0.95);
        assert!(sel.is_empty());
        assert_eq!(sel.combined_delivery, 0.0);
        let sel = select_receivers(0.5, Ftd::new(0.8), &[], 0.95);
        assert!(sel.is_empty());
        assert_eq!(sel.combined_delivery, 0.0);
    }

    #[test]
    fn non_finite_candidate_xi_is_skipped_not_fatal() {
        let candidates = [cand(1, f64::NAN, 5), cand(2, 0.6, 5)];
        let sel = select_receivers(0.1, Ftd::NEW, &candidates, 0.95);
        let ids: Vec<NodeId> = sel.receivers.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![NodeId(2)], "NaN replier must be ignored");
    }

    #[test]
    fn boundary_receiver_xis_select_cleanly() {
        // ξ exactly 1.0 saturates immediately; ξ exactly 0.0 never
        // qualifies against a 0-ξ sender (strict inequality).
        let sel = select_receivers(0.0, Ftd::NEW, &[cand(1, 1.0, 1)], 0.95);
        assert_eq!(sel.receivers.len(), 1);
        assert_eq!(sel.combined_delivery, 1.0);
        let sel = select_receivers(0.0, Ftd::NEW, &[cand(1, 0.0, 1)], 0.95);
        assert!(sel.is_empty());
    }

    #[test]
    fn selection_is_deterministic_under_xi_ties() {
        let candidates = [cand(7, 0.5, 5), cand(3, 0.5, 5)];
        let sel = select_receivers(0.1, Ftd::NEW, &candidates, 0.999);
        let ids: Vec<NodeId> = sel.receivers.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![NodeId(3), NodeId(7)], "ties break by id");
    }
}
