//! Windowed observability: live metrics aggregation over the trace seam.
//!
//! A [`MetricsRecorder`] is a [`TraceSink`] that folds the MAC-level event
//! stream into fixed-width time windows — deliveries, drops by
//! [`DropReason`], collisions, airtime by frame
//! tag, sleep transitions and fault markers — and, when attached through
//! [`SimulationBuilder::observe`](crate::world::SimulationBuilder::observe),
//! receives periodic [`WorldSnapshot`]s of queue occupancy, the ξ
//! distribution, the sleep duty cycle and cumulative energy.
//!
//! Closed windows stream incrementally as JSONL (schema
//! [`SCHEMA`] = `dftmsn-observe/1`) so multi-hour runs never buffer
//! unboundedly, and can simultaneously be retained in memory as
//! [`TimeSeries`] for programmatic use (see [`ObserveSeries`]).
//!
//! The recorder is a clonable handle around shared state, like
//! [`SharedTrace`](crate::trace::SharedTrace): keep one clone, hand the
//! other to the simulation, and read the series back after the run.
//!
//! # Examples
//!
//! ```
//! use dftmsn_core::observe::MetricsRecorder;
//! use dftmsn_core::params::ScenarioParams;
//! use dftmsn_core::variants::ProtocolKind;
//! use dftmsn_core::world::Simulation;
//!
//! let recorder = MetricsRecorder::new(100.0);
//! let report = Simulation::builder(ScenarioParams::smoke_test(), ProtocolKind::Opt)
//!     .seed(1)
//!     .observe(recorder.clone())
//!     .build()
//!     .run();
//! let series = recorder.series();
//! let deliveries = series.get("deliveries").expect("series exists");
//! let total: f64 = deliveries.iter().map(|(_, v)| v).sum();
//! assert_eq!(total as u64, report.delivered);
//! ```

use crate::trace::{DropReason, TraceEvent, TraceSink};
use dftmsn_metrics::json::Json;
use dftmsn_metrics::timeseries::TimeSeries;
use dftmsn_sim::time::SimTime;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// The JSONL schema identifier written in the header line.
pub const SCHEMA: &str = "dftmsn-observe/1";

/// A rejected observation window (non-finite, zero or negative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidWindow(String);

impl std::fmt::Display for InvalidWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for InvalidWindow {}

/// Instantaneous world state sampled at a window boundary.
///
/// Produced by the simulation on its observation tick (sensors only;
/// sinks are excluded from every figure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldSnapshot {
    /// Mean queued messages per sensor.
    pub queue_mean: f64,
    /// Largest sensor queue.
    pub queue_max: u64,
    /// Mean sensor delivery probability ξ (Eq. 1).
    pub xi_mean: f64,
    /// Smallest sensor ξ.
    pub xi_min: f64,
    /// Largest sensor ξ.
    pub xi_max: f64,
    /// Fraction of sensors with the radio asleep — the live duty-cycle
    /// complement of Eqs. 4–8.
    pub asleep_fraction: f64,
    /// Cumulative energy consumed by all sensors so far (J).
    pub energy_j: f64,
    /// Sensors currently alive (not crashed, not battery-dead) — the
    /// lifetime tier's alive-node timeseries. Trailing field so
    /// `dftmsn-observe/1` rows stay backward-compatible.
    pub alive_nodes: u64,
}

/// Event counts accumulated over one window (or over the whole run, for
/// the totals line).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowCounters {
    /// First-copy sink deliveries.
    pub deliveries: u64,
    /// Sum of end-to-end delays of those deliveries (s).
    pub delay_sum_secs: f64,
    /// Drop-tail evictions ([`DropReason::Overflow`]).
    pub drops_overflow: u64,
    /// Full-queue rejections ([`DropReason::QueueFull`]).
    pub drops_rejected: u64,
    /// FTD-threshold purges ([`DropReason::FtdThreshold`]).
    pub drops_ftd: u64,
    /// (frame, receiver) collision losses.
    pub collisions: u64,
    /// Frames put on the air.
    pub frames_sent: u64,
    /// Frames by tag: `[PRE, RTS, CTS, SCHD, DATA, ACK]`.
    pub frames_by_kind: [u64; 6],
    /// Frames decoded intact at a receiver.
    pub frame_deliveries: u64,
    /// Control bits on the air.
    pub control_bits: u64,
    /// Data bits on the air.
    pub data_bits: u64,
    /// Radio sleep transitions.
    pub sleeps: u64,
    /// Total sleep time committed by those transitions (s).
    pub sleep_secs: f64,
    /// Fault-plan events fired.
    pub faults: u64,
}

impl WindowCounters {
    fn absorb(&mut self, o: &WindowCounters) {
        self.deliveries += o.deliveries;
        self.delay_sum_secs += o.delay_sum_secs;
        self.drops_overflow += o.drops_overflow;
        self.drops_rejected += o.drops_rejected;
        self.drops_ftd += o.drops_ftd;
        self.collisions += o.collisions;
        self.frames_sent += o.frames_sent;
        for (a, b) in self.frames_by_kind.iter_mut().zip(o.frames_by_kind) {
            *a += b;
        }
        self.frame_deliveries += o.frame_deliveries;
        self.control_bits += o.control_bits;
        self.data_bits += o.data_bits;
        self.sleeps += o.sleeps;
        self.sleep_secs += o.sleep_secs;
        self.faults += o.faults;
    }
}

/// One closed observation window.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveRow {
    /// 0-based window index.
    pub window: u64,
    /// Window start (s); events at exactly `t0` belong to this window.
    pub t0_secs: f64,
    /// Window end (s); events at exactly `t1` belong to the next window.
    pub t1_secs: f64,
    /// Event counts inside `[t0, t1)`.
    pub counters: WindowCounters,
    /// World state at `t1`, when a snapshot tick coincided with the
    /// boundary (absent for standalone recorders fed only trace events).
    pub snapshot: Option<WorldSnapshot>,
}

/// Run metadata written in the JSONL header line.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Variant label (OPT, NOOPT, …).
    pub protocol: String,
    /// Run seed.
    pub seed: u64,
    /// Configured duration (s).
    pub duration_secs: f64,
    /// Sensor count.
    pub sensors: usize,
    /// Sink count.
    pub sinks: usize,
}

/// The per-metric [`TimeSeries`] view of a finished observation, sampled
/// at window ends.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveSeries {
    /// The window width the series were aggregated at (s).
    pub window_secs: f64,
    /// One series per metric; see [`ObserveSeries::get`].
    pub series: Vec<TimeSeries>,
}

impl ObserveSeries {
    /// Looks a series up by name (`"deliveries"`, `"collisions"`,
    /// `"queue_mean"`, …).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// The available series names.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.series.iter().map(TimeSeries::name).collect()
    }
}

/// Complete resumable recorder state, for checkpointing.
///
/// Captures everything needed to continue the JSONL stream byte-for-byte:
/// the accumulating window, the pending (snapshot-awaiting) row, the
/// running totals and `bytes_written` — the exact length of the output
/// emitted so far, so a resuming process can truncate a partially-written
/// observe file back to the last complete line this state describes.
/// Retained in-memory rows are **not** captured; after a restore,
/// [`MetricsRecorder::rows`]/[`MetricsRecorder::series`] cover only
/// post-resume windows.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderState {
    /// The configured window width (s).
    pub window_secs: f64,
    /// Run metadata for the header line.
    pub meta: Option<RunMeta>,
    /// Whether the header line has been emitted.
    pub header_written: bool,
    /// Index of the currently accumulating window.
    pub cur_index: u64,
    /// Counters accumulated in the current window so far.
    pub cur: WindowCounters,
    /// A closed window still awaiting its boundary snapshot.
    pub pending: Option<ObserveRow>,
    /// Cumulative counters across emitted windows.
    pub totals: WindowCounters,
    /// Number of windows emitted.
    pub windows_emitted: u64,
    /// Bytes written to the attached output so far (0 when none).
    pub bytes_written: u64,
}

struct RecorderInner {
    window_secs: f64,
    meta: Option<RunMeta>,
    header_written: bool,
    /// Index of the currently accumulating window.
    cur_index: u64,
    cur: WindowCounters,
    /// A closed window awaiting its boundary snapshot. At most one window
    /// can be pending: the snapshot tick fires at every boundary, and at a
    /// shared timestamp the event queue may hand us boundary events either
    /// side of the tick.
    pending: Option<ObserveRow>,
    totals: WindowCounters,
    windows_emitted: u64,
    retain: bool,
    rows: Vec<ObserveRow>,
    out: Option<Box<dyn Write + Send>>,
    finished: bool,
    /// Bytes emitted to `out` so far, so a checkpoint records exactly how
    /// much of the observe file is accounted for.
    bytes_written: u64,
}

impl std::fmt::Debug for RecorderInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderInner")
            .field("window_secs", &self.window_secs)
            .field("cur_index", &self.cur_index)
            .field("windows_emitted", &self.windows_emitted)
            .field("retain", &self.retain)
            .field("streaming", &self.out.is_some())
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl RecorderInner {
    fn window_end(&self, index: u64) -> f64 {
        (index + 1) as f64 * self.window_secs
    }

    fn write_line(&mut self, line: &Json) {
        if let Some(out) = self.out.as_mut() {
            let rendered = line.render();
            writeln!(out, "{rendered}").expect("observe output write failed");
            self.bytes_written += rendered.len() as u64 + 1;
        }
    }

    fn write_header(&mut self) {
        if self.header_written {
            return;
        }
        self.header_written = true;
        let mut j = Json::object()
            .field("schema", SCHEMA)
            .field("window_secs", self.window_secs);
        if let Some(meta) = &self.meta {
            j = j
                .field("protocol", meta.protocol.as_str())
                .field("seed", meta.seed)
                .field("duration_secs", meta.duration_secs)
                .field("sensors", meta.sensors)
                .field("sinks", meta.sinks);
        }
        self.write_line(&j);
    }

    /// Closes windows up to (but not including) the one containing `at`.
    /// An event at exactly a boundary closes the window the boundary ends.
    fn roll(&mut self, at_secs: f64) {
        while at_secs >= self.window_end(self.cur_index) {
            self.flush_pending();
            let row = ObserveRow {
                window: self.cur_index,
                t0_secs: self.cur_index as f64 * self.window_secs,
                t1_secs: self.window_end(self.cur_index),
                counters: std::mem::take(&mut self.cur),
                snapshot: None,
            };
            self.pending = Some(row);
            self.cur_index += 1;
        }
    }

    fn flush_pending(&mut self) {
        if let Some(row) = self.pending.take() {
            self.emit_row(row);
        }
    }

    fn emit_row(&mut self, row: ObserveRow) {
        self.write_header();
        self.totals.absorb(&row.counters);
        self.windows_emitted += 1;
        let json = row_json(&row);
        self.write_line(&json);
        if self.retain {
            self.rows.push(row);
        }
    }

    fn record(&mut self, event: TraceEvent) {
        if self.finished {
            return;
        }
        self.roll(event.at().as_secs_f64());
        match event {
            TraceEvent::FrameSent { tag, bits, .. } => {
                self.cur.frames_sent += 1;
                self.cur.frames_by_kind[crate::report::RunMetrics::kind_index(tag)] += 1;
                if tag == "DATA" {
                    self.cur.data_bits += bits;
                } else {
                    self.cur.control_bits += bits;
                }
            }
            TraceEvent::FrameDelivered { .. } => self.cur.frame_deliveries += 1,
            TraceEvent::Collision { .. } => self.cur.collisions += 1,
            TraceEvent::Delivered { delay_secs, .. } => {
                self.cur.deliveries += 1;
                self.cur.delay_sum_secs += delay_secs;
            }
            TraceEvent::Slept { secs, .. } => {
                self.cur.sleeps += 1;
                self.cur.sleep_secs += secs;
            }
            TraceEvent::Dropped { reason, .. } => match reason {
                DropReason::Overflow => self.cur.drops_overflow += 1,
                DropReason::QueueFull => self.cur.drops_rejected += 1,
                DropReason::FtdThreshold => self.cur.drops_ftd += 1,
            },
            TraceEvent::FaultInjected { .. } => self.cur.faults += 1,
        }
    }

    fn snapshot(&mut self, at: SimTime, snap: WorldSnapshot) {
        if self.finished {
            return;
        }
        let at_secs = at.as_secs_f64();
        self.roll(at_secs);
        // The tick fires exactly on a boundary: the snapshot describes the
        // state the just-closed window ended in.
        if let Some(p) = self.pending.as_mut() {
            if p.t1_secs <= at_secs {
                p.snapshot = Some(snap);
            }
        }
        self.flush_pending();
    }

    fn finish(&mut self, at: SimTime, snap: Option<WorldSnapshot>) {
        if self.finished {
            return;
        }
        let at_secs = at.as_secs_f64();
        self.roll(at_secs);
        self.flush_pending();
        // Emit the trailing partial window when the run ended mid-window —
        // or a zero-length one if events landed exactly on the final
        // boundary, so totals still reconcile with the report.
        let t0 = self.cur_index as f64 * self.window_secs;
        if at_secs > t0 || self.cur != WindowCounters::default() {
            let row = ObserveRow {
                window: self.cur_index,
                t0_secs: t0,
                t1_secs: at_secs,
                counters: std::mem::take(&mut self.cur),
                snapshot: snap,
            };
            self.emit_row(row);
        }
        self.finished = true;
        self.write_header();
        let t = self.totals;
        let totals = Json::object()
            .field("totals", true)
            .field("windows", self.windows_emitted)
            .field("deliveries", t.deliveries)
            .field("delay_sum_secs", t.delay_sum_secs)
            .field("drops_overflow", t.drops_overflow)
            .field("drops_rejected", t.drops_rejected)
            .field("drops_ftd", t.drops_ftd)
            .field("collisions", t.collisions)
            .field("frames_sent", t.frames_sent)
            .field("frame_deliveries", t.frame_deliveries)
            .field("control_bits", t.control_bits)
            .field("data_bits", t.data_bits)
            .field("sleeps", t.sleeps)
            .field("faults", t.faults);
        self.write_line(&totals);
        if let Some(out) = self.out.as_mut() {
            out.flush().expect("observe output flush failed");
        }
    }
}

fn row_json(row: &ObserveRow) -> Json {
    let c = &row.counters;
    let frames = Json::object()
        .field("pre", c.frames_by_kind[0])
        .field("rts", c.frames_by_kind[1])
        .field("cts", c.frames_by_kind[2])
        .field("schd", c.frames_by_kind[3])
        .field("data", c.frames_by_kind[4])
        .field("ack", c.frames_by_kind[5]);
    let snapshot = match &row.snapshot {
        Some(s) => Json::object()
            .field("queue_mean", s.queue_mean)
            .field("queue_max", s.queue_max)
            .field("xi_mean", s.xi_mean)
            .field("xi_min", s.xi_min)
            .field("xi_max", s.xi_max)
            .field("asleep_fraction", s.asleep_fraction)
            .field("energy_j", s.energy_j)
            .field("alive_nodes", s.alive_nodes),
        None => Json::Null,
    };
    Json::object()
        .field("window", row.window)
        .field("t0", row.t0_secs)
        .field("t1", row.t1_secs)
        .field("deliveries", c.deliveries)
        .field("delay_sum_secs", c.delay_sum_secs)
        .field("drops_overflow", c.drops_overflow)
        .field("drops_rejected", c.drops_rejected)
        .field("drops_ftd", c.drops_ftd)
        .field("collisions", c.collisions)
        .field("frames", frames)
        .field("frames_sent", c.frames_sent)
        .field("frame_deliveries", c.frame_deliveries)
        .field("control_bits", c.control_bits)
        .field("data_bits", c.data_bits)
        .field("sleeps", c.sleeps)
        .field("sleep_secs", c.sleep_secs)
        .field("faults", c.faults)
        .field("snapshot", snapshot)
}

/// A clonable, thread-safe windowed metrics recorder.
///
/// Implements [`TraceSink`], so it can be attached anywhere a sink goes —
/// through [`SimulationBuilder::observe`](crate::world::SimulationBuilder::observe)
/// (which also feeds it boundary [`WorldSnapshot`]s), through
/// [`SimulationBuilder::trace`](crate::world::SimulationBuilder::trace), or
/// fanned out next to a user sink with a
/// [`TeeSink`](crate::trace::TeeSink).
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl MetricsRecorder {
    /// Creates a recorder aggregating over `window_secs`-wide windows,
    /// retaining closed windows in memory.
    ///
    /// # Panics
    ///
    /// Panics if the window is non-finite, zero or negative; use
    /// [`MetricsRecorder::try_new`] for a fallible form.
    #[must_use]
    pub fn new(window_secs: f64) -> Self {
        Self::try_new(window_secs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`MetricsRecorder::new`].
    ///
    /// # Errors
    ///
    /// Rejects non-finite, zero and negative windows.
    pub fn try_new(window_secs: f64) -> Result<Self, InvalidWindow> {
        if !window_secs.is_finite() || window_secs <= 0.0 {
            return Err(InvalidWindow(format!(
                "observation window must be positive and finite, got {window_secs}"
            )));
        }
        Ok(MetricsRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                window_secs,
                meta: None,
                header_written: false,
                cur_index: 0,
                cur: WindowCounters::default(),
                pending: None,
                totals: WindowCounters::default(),
                windows_emitted: 0,
                retain: true,
                rows: Vec::new(),
                out: None,
                finished: false,
                bytes_written: 0,
            })),
        })
    }

    /// Captures the complete resumable recorder state, for checkpointing.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    #[must_use]
    pub fn snapshot_state(&self) -> RecorderState {
        let inner = self.lock();
        RecorderState {
            window_secs: inner.window_secs,
            meta: inner.meta.clone(),
            header_written: inner.header_written,
            cur_index: inner.cur_index,
            cur: inner.cur,
            pending: inner.pending.clone(),
            totals: inner.totals,
            windows_emitted: inner.windows_emitted,
            bytes_written: inner.bytes_written,
        }
    }

    /// Rebuilds a recorder from [`snapshot_state`](Self::snapshot_state)
    /// output, ready to continue the stream. No output is attached — chain
    /// [`with_output`](Self::with_output) with a file truncated to
    /// [`RecorderState::bytes_written`] to resume a JSONL stream
    /// byte-for-byte. Retention starts empty (see [`RecorderState`]).
    ///
    /// # Panics
    ///
    /// Panics if the state carries an invalid window width.
    #[must_use]
    pub fn restore_state(state: RecorderState) -> Self {
        let recorder = Self::new(state.window_secs);
        {
            let mut inner = recorder.lock();
            inner.meta = state.meta;
            inner.header_written = state.header_written;
            inner.cur_index = state.cur_index;
            inner.cur = state.cur;
            inner.pending = state.pending;
            inner.totals = state.totals;
            inner.windows_emitted = state.windows_emitted;
            inner.bytes_written = state.bytes_written;
        }
        recorder
    }

    /// Bytes emitted to the attached output so far (0 when none).
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.lock().bytes_written
    }

    /// Streams every closed window (and the header/totals lines) to
    /// `out` as JSONL.
    #[must_use]
    pub fn with_output(self, out: Box<dyn Write + Send>) -> Self {
        self.lock().out = Some(out);
        self
    }

    /// Disables in-memory retention: windows are only streamed to the
    /// output, so memory stays flat however long the run is.
    #[must_use]
    pub fn streaming_only(self) -> Self {
        self.lock().retain = false;
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        self.inner.lock().expect("observe lock poisoned")
    }

    /// The configured window width (s).
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    #[must_use]
    pub fn window_secs(&self) -> f64 {
        self.lock().window_secs
    }

    /// Installs run metadata for the JSONL header. Called by the
    /// simulation when the recorder is attached; a no-op after the header
    /// has been written.
    pub fn begin_run(&self, meta: RunMeta) {
        self.lock().meta = Some(meta);
    }

    /// Feeds a world snapshot taken at a window boundary; closes the
    /// window that ends at `at`.
    pub fn record_snapshot(&self, at: SimTime, snap: WorldSnapshot) {
        self.lock().snapshot(at, snap);
    }

    /// Closes the trailing (possibly partial) window at `at`, writes the
    /// totals line and flushes the output. Recording after `finish` is
    /// ignored.
    pub fn finish(&self, at: SimTime, snap: Option<WorldSnapshot>) {
        self.lock().finish(at, snap);
    }

    /// Closed windows retained so far (empty in streaming-only mode).
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    #[must_use]
    pub fn rows(&self) -> Vec<ObserveRow> {
        self.lock().rows.clone()
    }

    /// Windows emitted and the cumulative counters across them — the
    /// figures the totals line carries.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    #[must_use]
    pub fn totals(&self) -> (u64, WindowCounters) {
        let inner = self.lock();
        (inner.windows_emitted, inner.totals)
    }

    /// Builds per-metric [`TimeSeries`] from the retained rows, sampled at
    /// window ends.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    #[must_use]
    pub fn series(&self) -> ObserveSeries {
        let inner = self.lock();
        type RowFn = fn(&ObserveRow) -> f64;
        type SnapFn = fn(&WorldSnapshot) -> f64;
        let counters: [(&str, RowFn); 8] = [
            ("deliveries", |r| r.counters.deliveries as f64),
            ("drops", |r| {
                (r.counters.drops_overflow + r.counters.drops_rejected + r.counters.drops_ftd)
                    as f64
            }),
            ("collisions", |r| r.counters.collisions as f64),
            ("frames_sent", |r| r.counters.frames_sent as f64),
            ("control_bits", |r| r.counters.control_bits as f64),
            ("data_bits", |r| r.counters.data_bits as f64),
            ("sleeps", |r| r.counters.sleeps as f64),
            ("faults", |r| r.counters.faults as f64),
        ];
        let snaps: [(&str, SnapFn); 8] = [
            ("queue_mean", |s| s.queue_mean),
            ("queue_max", |s| s.queue_max as f64),
            ("xi_mean", |s| s.xi_mean),
            ("xi_min", |s| s.xi_min),
            ("xi_max", |s| s.xi_max),
            ("asleep_fraction", |s| s.asleep_fraction),
            ("energy_j", |s| s.energy_j),
            ("alive_nodes", |s| s.alive_nodes as f64),
        ];
        let mut series = Vec::new();
        for (name, f) in counters {
            let mut ts = TimeSeries::new(name);
            for row in &inner.rows {
                ts.push(row.t1_secs, f(row));
            }
            series.push(ts);
        }
        for (name, f) in snaps {
            let mut ts = TimeSeries::new(name);
            for row in &inner.rows {
                if let Some(s) = &row.snapshot {
                    ts.push(row.t1_secs, f(s));
                }
            }
            series.push(ts);
        }
        ObserveSeries {
            window_secs: inner.window_secs,
            series,
        }
    }
}

impl TraceSink for MetricsRecorder {
    fn record(&mut self, event: TraceEvent) {
        self.lock().record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;
    use dftmsn_radio::ids::NodeId;
    use dftmsn_sim::time::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    fn delivered(at_secs: f64) -> TraceEvent {
        TraceEvent::Delivered {
            at: t(at_secs),
            msg: MessageId(0),
            sink: NodeId(1),
            delay_secs: 5.0,
        }
    }

    fn snap(x: f64) -> WorldSnapshot {
        WorldSnapshot {
            queue_mean: x,
            queue_max: 2,
            xi_mean: 0.5,
            xi_min: 0.0,
            xi_max: 1.0,
            asleep_fraction: 0.25,
            energy_j: 1.0,
            alive_nodes: 12,
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_window_is_rejected() {
        let _ = MetricsRecorder::new(0.0);
    }

    #[test]
    fn negative_and_non_finite_windows_are_rejected() {
        assert!(MetricsRecorder::try_new(-1.0).is_err());
        assert!(MetricsRecorder::try_new(f64::NAN).is_err());
        assert!(MetricsRecorder::try_new(f64::INFINITY).is_err());
        assert!(MetricsRecorder::try_new(0.5).is_ok());
    }

    #[test]
    fn events_on_the_exact_boundary_open_the_next_window() {
        let mut rec = MetricsRecorder::new(10.0);
        rec.record(delivered(9.999));
        rec.record(delivered(10.0)); // boundary: belongs to window 1
        rec.finish(SimTime::from_secs(20), None);
        let rows = rec.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].counters.deliveries, 1);
        assert_eq!(rows[1].counters.deliveries, 1);
        assert_eq!(rows[0].t1_secs, 10.0);
        assert_eq!(rows[1].t0_secs, 10.0);
    }

    #[test]
    fn empty_windows_are_still_emitted() {
        let mut rec = MetricsRecorder::new(5.0);
        rec.record(delivered(17.0)); // windows 0..=2 pass with nothing
        rec.finish(SimTime::from_secs(20), None);
        let rows = rec.rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].counters.deliveries, 0);
        assert_eq!(rows[3].counters.deliveries, 1);
    }

    #[test]
    fn trailing_partial_window_closes_at_finish_time() {
        let mut rec = MetricsRecorder::new(10.0);
        rec.record(delivered(12.0));
        rec.finish(t(14.5), Some(snap(1.0)));
        let rows = rec.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].t0_secs, 10.0);
        assert_eq!(rows[1].t1_secs, 14.5);
        assert!(rows[1].snapshot.is_some());
        let (windows, totals) = rec.totals();
        assert_eq!(windows, 2);
        assert_eq!(totals.deliveries, 1);
    }

    #[test]
    fn snapshot_attaches_to_the_window_it_closes_in_either_event_order() {
        // Tick first, then a boundary-time event.
        let mut a = MetricsRecorder::new(10.0);
        a.record(delivered(3.0));
        a.record_snapshot(SimTime::from_secs(10), snap(7.0));
        a.record(delivered(10.0));
        a.finish(SimTime::from_secs(20), None);
        // Boundary-time event first, then the tick.
        let mut b = MetricsRecorder::new(10.0);
        b.record(delivered(3.0));
        b.record(delivered(10.0));
        b.record_snapshot(SimTime::from_secs(10), snap(7.0));
        b.finish(SimTime::from_secs(20), None);
        assert_eq!(a.rows(), b.rows());
        let rows = a.rows();
        assert_eq!(rows[0].snapshot.unwrap().queue_mean, 7.0);
        assert_eq!(rows[1].counters.deliveries, 1);
    }

    #[test]
    fn recording_after_finish_is_ignored() {
        let mut rec = MetricsRecorder::new(10.0);
        rec.finish(SimTime::from_secs(10), None);
        rec.record(delivered(11.0));
        let (windows, totals) = rec.totals();
        assert_eq!(windows, 1);
        assert_eq!(totals.deliveries, 0);
    }

    #[test]
    fn jsonl_stream_has_header_rows_and_totals() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut rec = MetricsRecorder::new(10.0).with_output(Box::new(Shared(buf.clone())));
        rec.begin_run(RunMeta {
            protocol: "OPT".into(),
            seed: 7,
            duration_secs: 20.0,
            sensors: 3,
            sinks: 1,
        });
        rec.record(delivered(1.0));
        rec.finish(SimTime::from_secs(20), None);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 windows + totals: {text}");
        assert!(lines[0].contains("\"schema\":\"dftmsn-observe/1\""));
        assert!(lines[0].contains("\"protocol\":\"OPT\""));
        assert!(lines[1].contains("\"window\":0"));
        assert!(lines[3].contains("\"totals\":true"));
        assert!(lines[3].contains("\"deliveries\":1"));
    }

    #[test]
    fn state_round_trip_continues_the_stream_byte_for_byte() {
        let buf = |b: &Arc<Mutex<Vec<u8>>>| -> Box<dyn Write + Send> {
            struct Shared(Arc<Mutex<Vec<u8>>>);
            impl Write for Shared {
                fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                    self.0.lock().unwrap().extend_from_slice(b);
                    Ok(b.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    Ok(())
                }
            }
            Box::new(Shared(b.clone()))
        };
        let meta = RunMeta {
            protocol: "OPT".into(),
            seed: 7,
            duration_secs: 40.0,
            sensors: 3,
            sinks: 1,
        };
        // Uninterrupted reference run.
        let whole: Arc<Mutex<Vec<u8>>> = Arc::default();
        let mut a = MetricsRecorder::new(10.0).with_output(buf(&whole));
        a.begin_run(meta.clone());
        for &s in &[1.0, 9.0, 12.0, 15.5, 31.0] {
            a.record(delivered(s));
        }
        a.record_snapshot(SimTime::from_secs(20), snap(2.0));
        a.finish(SimTime::from_secs(40), None);

        // Same events split at t = 14: checkpoint, restore, continue.
        let head: Arc<Mutex<Vec<u8>>> = Arc::default();
        let mut b = MetricsRecorder::new(10.0).with_output(buf(&head));
        b.begin_run(meta);
        for &s in &[1.0, 9.0, 12.0] {
            b.record(delivered(s));
        }
        let state = b.snapshot_state();
        assert_eq!(state.bytes_written, head.lock().unwrap().len() as u64);
        let tail: Arc<Mutex<Vec<u8>>> = Arc::default();
        let mut c = MetricsRecorder::restore_state(state).with_output(buf(&tail));
        for &s in &[15.5, 31.0] {
            c.record(delivered(s));
        }
        c.record_snapshot(SimTime::from_secs(20), snap(2.0));
        c.finish(SimTime::from_secs(40), None);

        let mut resumed = head.lock().unwrap().clone();
        resumed.extend_from_slice(&tail.lock().unwrap());
        assert_eq!(
            String::from_utf8(whole.lock().unwrap().clone()).unwrap(),
            String::from_utf8(resumed).unwrap()
        );
        assert_eq!(a.totals(), c.totals());
    }

    #[test]
    fn series_sample_at_window_ends() {
        let mut rec = MetricsRecorder::new(10.0);
        rec.record(delivered(1.0));
        rec.record_snapshot(SimTime::from_secs(10), snap(3.0));
        rec.record(delivered(12.0));
        rec.record(delivered(13.0));
        rec.record_snapshot(SimTime::from_secs(20), snap(4.0));
        rec.finish(SimTime::from_secs(20), None);
        let series = rec.series();
        let d = series.get("deliveries").unwrap();
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![(10.0, 1.0), (20.0, 2.0)]);
        let q = series.get("queue_mean").unwrap();
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![(10.0, 3.0), (20.0, 4.0)]);
        assert!(series.names().contains(&"faults"));
    }
}
