//! Within-epoch parallel event execution (DESIGN.md § 8).
//!
//! [`Simulation::advance`] with `threads > 1` processes events an
//! *interval* at a time instead of one at a time: drain every event due in
//! `[t0, bound)`, prove which of them cannot interact with the rest of the
//! world during the interval (the *interaction quarantine*), execute those
//! on worker threads over disjoint `split_at_mut` views of the SoA node
//! lanes, run everything else on a sequential commit lane in exact global
//! order, then stitch the interval back together so that every observable
//! bit — counters, f64 accumulators, RNG streams, pending-event sequence
//! numbers, checkpoint bytes — is identical to the sequential engine's.
//!
//! # Why results are exact, not approximately right
//!
//! **Quarantine soundness.** A node is *clean* (chunk-executable) only if,
//! at classification time, it is provably unobservable to and unaffected
//! by every event on the sequential lane for the whole interval:
//!
//! * it is `Sleeping` or `Passive` with no MAC context, an empty message
//!   queue and a quiet radio (nothing audible, no reception in progress),
//!   so the only events it can own are wake-ups, cycle guards, metric
//!   timeouts, dead-node generator ticks and stale timers — all of which
//!   read and write that node alone; and
//! * no *capable* node (one that could transmit this interval) can reach
//!   it: capability spreads along stored-position distance bounded by
//!   `range + drift` (a frame only couples nodes within true radio range,
//!   and stored positions lag truth by a mode-specific, classification-
//!   time-computable bound), and every node a sequential-lane handler
//!   could even *inspect* (neighbour queries go out at the inflated
//!   `query_radius`) is conservatively marked. The BFS over the stored-
//!   position grid therefore overapproximates the interval's interaction
//!   closure; anything outside it commutes with the entire sequential
//!   lane, so executing the chunk phase *before* the interleaved-in-time
//!   sequential lane cannot change any outcome.
//!
//! When the closure floods (dense, mostly-awake neighbourhoods percolate
//! — see EXPERIMENTS.md) or an event shape the chunk path cannot take
//! shows up on a clean node, the whole interval falls back to the
//! sequential lane. Fallback is a performance event, never a correctness
//! event, and a streak of floods switches to plain stepping for a while
//! (`bypass`) so classification cost cannot make a flooded run slower.
//!
//! **Sequence-number exactness.** Sequential runs allocate a global
//! sequence number per scheduled event; pop order `(time, seq)` *is* the
//! determinism contract, and the numbers end up in checkpoint bytes. The
//! interval executor cannot allocate at spawn time (chunks run
//! concurrently), so every spawn gets a *provisional* key — drained
//! events keep their real sequence numbers, spawned ones get
//! `PROV_BASE + lane-local index`, which orders them after every drained
//! event at the same instant and in spawn order within a lane, exactly as
//! fresh allocations would. After the interval, a commit walk merges the
//! per-lane spawn logs by `(time, resolved key)` — the true chronological
//! order of the spawning handler calls — and replays the allocations:
//! each spawn draws its real number from the shared counter in the same
//! order the sequential engine would have, parked spawns (due past the
//! interval) are re-filed with their numbers pre-assigned, and consumed
//! spawns are accounted into the lifetime pop counter. Induction on the
//! log order resolves provisional parent keys before they are needed.
//!
//! The executor is engaged only when no trace sink, observer or profiler
//! is attached (those watch individual events), and `Fault`/`ObserveTick`
//! events — plus the lazy-mode staleness sweep — *terminate* the drain
//! and run after the commit walk on fully merged state, because they
//! touch arbitrary nodes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use dftmsn_mobility::models::MobilityModel;
use dftmsn_radio::energy::RadioState;
use dftmsn_radio::ids::NodeId;
use dftmsn_sim::rng::SimRng;
use dftmsn_sim::time::{SimDuration, SimTime};

use super::{event_lane, Event, Simulation, Timer};
use crate::ftd::Ftd;
use crate::node::{MacState, Node};
use crate::params::ProtocolParams;
use crate::profile::ExecStats;
use dftmsn_mobility::geom::Vec2;
use dftmsn_radio::energy::EnergyModel;

/// Provisional spawn keys start here: above every real sequence number a
/// run can allocate, so `(t, key)` ordering puts drained events before
/// same-instant spawns — exactly where fresh allocations would land.
const PROV_BASE: u64 = 1 << 63;

/// Interval drain horizon per mode, seconds. Ticked mode keeps intervals
/// short so the `2·v_max·Δ` motion slack stays well below the radio range
/// and the interaction graph stays subcritical; lazy mode's slack is
/// dominated by position staleness anyway, so it takes a longer horizon.
const INTERVAL_TICKED_SECS: f64 = 0.1;
const INTERVAL_LAZY_SECS: f64 = 0.25;

/// Marked-population percentage beyond which the quarantine is considered
/// flooded and the interval falls back to the sequential lane.
const MARKED_CAP_PCT: usize = 40;

/// Fewer drained events than this and an interval is not worth
/// classifying: it runs on the sequential lane directly.
const MIN_PARALLEL_EVENTS: usize = 48;

/// After this many consecutive flooded intervals the executor stops
/// attempting classification for [`FLOOD_BYPASS_INTERVALS`] intervals
/// (plain sequential stepping), then probes again. Counting in intervals
/// — never wall time — keeps the decision deterministic, and since every
/// path is exact the choice can never affect results.
const FLOOD_BACKOFF_AFTER: u32 = 8;
const FLOOD_BYPASS_INTERVALS: u32 = 64;

/// A spawned-event record in an interval lane log.
#[derive(Debug, Clone, Copy)]
struct SpawnRec {
    due: SimTime,
    ev: Event,
    /// Due at or past the interval bound (or past the run end): re-filed
    /// into the global queue at commit instead of executing here.
    parked: bool,
    /// The real sequence number, assigned by the commit walk.
    seq: u64,
}

/// One spawning handler call: `len` spawns starting at `spawns[start]`,
/// made while handling the event identified by `(t, key)`.
#[derive(Debug, Clone, Copy)]
struct LogEntry {
    t: SimTime,
    key: u64,
    start: u32,
    len: u32,
}

/// Per-lane spawn log; only handler calls that actually spawned are
/// logged, which necessarily includes the parent of every consumed spawn.
#[derive(Debug, Default)]
struct LaneLog {
    entries: Vec<LogEntry>,
    spawns: Vec<SpawnRec>,
}

impl LaneLog {
    /// Resolves a (possibly provisional) key to a real sequence number.
    /// Provisional parents always precede their children in `entries`, so
    /// by the time the commit walk needs a resolution it exists.
    fn resolve(&self, key: u64) -> u64 {
        if key < PROV_BASE {
            return key;
        }
        let seq = self.spawns[(key - PROV_BASE) as usize].seq;
        debug_assert_ne!(seq, u64::MAX, "spawn referenced before its commit");
        seq
    }
}

/// Heap entry for spawns consumed within the interval; ordered by
/// `(t, key)` only — the payload is cargo.
#[derive(Debug)]
struct HeapEv {
    t: SimTime,
    key: u64,
    ev: Event,
}

impl PartialEq for HeapEv {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.key == other.key
    }
}
impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t, self.key).cmp(&(other.t, other.key))
    }
}

/// One interval execution lane: the sequential commit lane and every
/// parallel chunk each own one. Tracks the spawn log, the min-heap of
/// spawns consumed within the interval, and commit accounting.
#[derive(Debug)]
pub(super) struct SeqLane {
    bound: SimTime,
    end: SimTime,
    /// The firing time of the event currently being handled — the base
    /// for relative scheduling, since the queue clock sits at the drain
    /// horizon mid-interval.
    pub(super) current_t: SimTime,
    current_key: u64,
    entry_start: usize,
    heap: BinaryHeap<Reverse<HeapEv>>,
    log: LaneLog,
    /// Spawns consumed (executed) within the interval on this lane.
    consumed: u64,
    /// Latest consumed-spawn firing time (for the clock advance).
    max_consumed: SimTime,
    /// Deferred grid moves (lazy chunks): node indices whose stored
    /// position changed; replayed ascending at commit.
    moves: Vec<u32>,
    /// Worker busy wall time (chunk lanes only; stall telemetry).
    busy_ns: u64,
}

impl SeqLane {
    fn new(bound: SimTime, end: SimTime) -> Self {
        SeqLane {
            bound,
            end,
            current_t: SimTime::ZERO,
            current_key: 0,
            entry_start: 0,
            heap: BinaryHeap::new(),
            log: LaneLog::default(),
            consumed: 0,
            max_consumed: SimTime::ZERO,
            moves: Vec::new(),
            busy_ns: 0,
        }
    }

    /// Files a spawn from a handler running on this lane. Consumed (due
    /// within the interval and the run horizon) or parked for the commit
    /// walk to re-file; either way it is logged so the walk can replay
    /// the sequential engine's allocation order.
    pub(super) fn spawn(&mut self, at: SimTime, ev: Event) {
        debug_assert!(at >= self.current_t, "handlers never schedule the past");
        let parked = !(at < self.bound && at <= self.end);
        let idx = self.log.spawns.len();
        self.log.spawns.push(SpawnRec {
            due: at,
            ev,
            parked,
            seq: u64::MAX,
        });
        if !parked {
            self.heap.push(Reverse(HeapEv {
                t: at,
                key: PROV_BASE + idx as u64,
                ev,
            }));
        }
    }

    /// Picks the next event in `(t, key)` order from the drained slice
    /// cursor and the consumed-spawn heap. Provisional keys sort after
    /// every real sequence number, matching fresh-allocation order.
    fn next_event(
        &mut self,
        drained: &[(SimTime, u64, Event)],
        cursor: &mut usize,
    ) -> Option<(SimTime, u64, Event)> {
        let from_heap = match (drained.get(*cursor), self.heap.peek()) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(&(dt, dk, _)), Some(Reverse(h))) => (h.t, h.key) < (dt, dk),
        };
        if from_heap {
            let Reverse(h) = self.heap.pop().expect("peeked above");
            self.consumed += 1;
            if h.t > self.max_consumed {
                self.max_consumed = h.t;
            }
            Some((h.t, h.key, h.ev))
        } else {
            let e = drained[*cursor];
            *cursor += 1;
            Some(e)
        }
    }

    /// Brackets one handler call so its spawns land in one log entry.
    fn begin_entry(&mut self, t: SimTime, key: u64) {
        self.current_t = t;
        self.current_key = key;
        self.entry_start = self.log.spawns.len();
    }

    fn finish_entry(&mut self) {
        let len = self.log.spawns.len() - self.entry_start;
        if len > 0 {
            self.log.entries.push(LogEntry {
                t: self.current_t,
                key: self.current_key,
                start: self.entry_start as u32,
                len: len as u32,
            });
        }
    }
}

/// Interval-executor runtime state: the worker count, persistent
/// classification scratch, telemetry, and the flood-backoff counters.
/// Pure execution state — never serialized, results never depend on it.
#[derive(Debug)]
pub(super) struct ParRuntime {
    pub(super) threads: usize,
    pub(super) stats: ExecStats,
    /// Overapproximate queue occupancy: set at every insert attempt,
    /// cleared lazily at classification when the queue is seen empty.
    /// Starts all-true (conservative) so a resumed checkpoint with loaded
    /// queues needs no special casing.
    pub(super) occupied: Vec<bool>,
    marked: Vec<bool>,
    capable: Vec<bool>,
    wake_drained: Vec<bool>,
    frontier: Vec<u32>,
    qbuf: Vec<usize>,
    datagen: Vec<u32>,
    drained: Vec<(SimTime, u64, Event)>,
    chunk_events: Vec<Vec<(SimTime, u64, Event)>>,
    seq_events: Vec<(SimTime, u64, Event)>,
    flood_streak: u32,
    bypass_left: u32,
}

impl ParRuntime {
    pub(super) fn new(n: usize) -> Self {
        ParRuntime {
            threads: 1,
            stats: ExecStats::default(),
            occupied: vec![true; n],
            marked: vec![false; n],
            capable: vec![false; n],
            wake_drained: vec![false; n],
            frontier: Vec::new(),
            qbuf: Vec::new(),
            datagen: Vec::new(),
            drained: Vec::new(),
            chunk_events: Vec::new(),
            seq_events: Vec::new(),
            flood_streak: 0,
            bypass_left: 0,
        }
    }
}

/// The protocol constants a chunk handler needs, hoisted once per
/// interval so workers share plain references.
#[derive(Debug)]
struct CleanCfg<'a> {
    energy: &'a EnergyModel,
    protocol: &'a ProtocolParams,
    receiver_window: SimDuration,
    sleeps: bool,
    adaptive_sleep: bool,
    urgency_bound: Ftd,
    data_interval_secs: f64,
}

/// Lazy-mode per-node lanes a chunk owns (`split_at_mut` views).
struct LazyChunk<'a> {
    rngs: &'a mut [SimRng],
    synced_at: &'a mut [SimTime],
    mobility: &'a mut [Box<dyn MobilityModel>],
    positions: &'a mut [Vec2],
}

/// Everything one worker owns for its node range `[base, base + len)`.
/// `sink_all`/`alive_all` are whole-population shared reads (immutable
/// during the chunk phase); every `&mut` slice is chunk-local.
struct ChunkJob<'a> {
    base: usize,
    events: &'a [(SimTime, u64, Event)],
    nodes: &'a mut [Node],
    epoch: &'a mut [u64],
    state: &'a mut [MacState],
    xi: &'a mut [f64],
    sink_all: &'a [bool],
    alive_all: &'a [bool],
    listening: &'a mut [bool],
    lazy: Option<LazyChunk<'a>>,
    cfg: &'a CleanCfg<'a>,
}

impl ChunkJob<'_> {
    /// [`super::Simulation::sync_hot`] for the chunk's slice views.
    fn sync_hot(&mut self, l: usize) {
        let node = &self.nodes[l];
        self.epoch[l] = node.epoch;
        self.state[l] = node.state;
        self.xi[l] = node.metric.value();
    }
}

impl Simulation {
    /// The interval drain horizon (see the mode constants above).
    fn interval_len(&self) -> SimDuration {
        if self.lazy.is_some() {
            SimDuration::from_secs_f64(INTERVAL_LAZY_SECS)
        } else {
            SimDuration::from_secs_f64(INTERVAL_TICKED_SECS)
        }
    }

    /// Events that must see fully merged world state: they touch
    /// arbitrary nodes (fault injection, observer snapshots, the lazy
    /// staleness sweep), so they bound the drain and run after commit.
    /// The ticked per-tick mobility handler, by contrast, is an ordinary
    /// sequential-lane event: chunks never read positions in ticked mode.
    fn is_terminator(&self, ev: &Event) -> bool {
        match ev {
            Event::Fault(_) | Event::ObserveTick => true,
            Event::MobilityTick => self.lazy.is_some(),
            _ => false,
        }
    }

    /// Parallel-path counterpart of [`step`](Self::step): executes one
    /// interval of events and returns `false` when the run is complete.
    /// Every return is a valid checkpoint boundary. Results are
    /// bit-identical to sequential stepping for any thread count.
    pub(super) fn step_interval(&mut self) -> bool {
        debug_assert!(self.seq_lane.is_none());
        let Some(t0) = self.events.peek_time() else {
            return false;
        };
        if t0 > self.end {
            return false;
        }

        // Flood-streak bypass: plain sequential stepping, zero overhead.
        if self.par.bypass_left > 0 {
            self.par.bypass_left -= 1;
            self.par.stats.bypass_intervals += 1;
            let cap = t0 + self.interval_len();
            while let Some(t) = self.events.peek_time() {
                if t >= cap || t > self.end || !self.step() {
                    break;
                }
            }
            return true;
        }

        // ---- Drain: pop everything due before the horizon, stopping at
        // (and holding) the first terminator.
        let mut bound = t0 + self.interval_len();
        let mut drained = std::mem::take(&mut self.par.drained);
        drained.clear();
        let mut terminator: Option<(SimTime, Event)> = None;
        while let Some((t, _)) = self.events.peek_next_key() {
            if t > self.end || t >= bound {
                break;
            }
            let (t, seq, ev) = self.events.pop_keyed().expect("peeked above");
            if self.is_terminator(&ev) {
                bound = t;
                terminator = Some((t, ev));
                break;
            }
            drained.push((t, seq, ev));
        }
        self.par.stats.record_drained(drained.len());

        // ---- Classify + partition (or fall back).
        let parallel = drained.len() >= MIN_PARALLEL_EVENTS && self.plan_interval(&drained, bound);
        if parallel {
            self.par.flood_streak = 0;
            self.par.stats.intervals += 1;

            let t_chunk = Instant::now();
            let chunk_outs = self.run_chunks(bound);
            let wall_ns = t_chunk.elapsed().as_nanos() as u64;
            let workers = chunk_outs.len() as u64;
            let busy: u64 = chunk_outs.iter().map(|c| c.busy_ns).sum();
            self.par.stats.chunk_ns += wall_ns;
            self.par.stats.stall_ns += (wall_ns * workers).saturating_sub(busy);
            let chunk_drained: u64 = self.par.chunk_events.iter().map(|c| c.len() as u64).sum();
            self.par.stats.parallel_events += chunk_drained;

            let seq_events = std::mem::take(&mut self.par.seq_events);
            self.par.stats.sequential_events += seq_events.len() as u64;
            let seq_out = self.run_seq_lane(&seq_events, bound);
            self.par.seq_events = seq_events;
            self.par.seq_events.clear();

            self.commit_interval(seq_out, chunk_outs, terminator.is_none());
        } else {
            if drained.len() >= MIN_PARALLEL_EVENTS {
                // A real flood (or an unexpected event shape), not just a
                // small interval: count towards the bypass streak.
                self.par.flood_streak += 1;
                if self.par.flood_streak >= FLOOD_BACKOFF_AFTER {
                    self.par.flood_streak = 0;
                    self.par.bypass_left = FLOOD_BYPASS_INTERVALS;
                }
            }
            self.par.stats.fallback_intervals += 1;
            self.par.stats.sequential_events += drained.len() as u64;
            let seq_out = self.run_seq_lane(&drained, bound);
            self.commit_interval(seq_out, Vec::new(), terminator.is_none());
        }

        if let Some((t, ev)) = terminator {
            self.par.stats.terminator_events += 1;
            self.handle(t, ev);
        }
        self.par.drained = drained;
        true
    }

    /// Classifies the interval's interaction closure and partitions the
    /// drained events into per-chunk runs plus the sequential lane.
    /// Returns `false` — fall back to fully sequential — when the closure
    /// floods past the cap or a clean node holds an event shape the chunk
    /// path cannot execute.
    ///
    /// The classification is deliberately behavior-blind (DESIGN.md § 10):
    /// every adversarial interception lives in the mid-MAC paths (sender
    /// phase with a non-empty queue, CTS/ACK slots, frame reception from a
    /// non-quiet sender) or in `Event::Fault` handling, and all of those
    /// are quarantined or sequential already. The only clean-path events —
    /// empty-queue WakeUps, Guards, dead-node DataGen, MetricTimeouts —
    /// execute identically for honest and adversarial nodes: a withholding
    /// node with an empty queue takes the same receiver-window branch an
    /// honest empty-queue node does.
    fn plan_interval(&mut self, drained: &[(SimTime, u64, Event)], bound: SimTime) -> bool {
        let n = self.nodes.len();
        let t0 = self.events.now().min(bound);
        let delta = bound.saturating_since(t0).as_secs_f64();
        let range = self.scenario.channel.range_m;
        let vmax = self.scenario.speed_max_mps.max(0.2);

        self.par.marked.fill(false);
        self.par.capable.fill(false);
        self.par.wake_drained.fill(false);
        self.par.frontier.clear();
        self.par.datagen.clear();
        let cap = n * MARKED_CAP_PCT / 100;
        let mut marked_cnt = 0usize;

        // Drained pre-scan: a live WakeUp makes a sleeping node capable of
        // acting this interval; an alive generator tick makes its node a
        // queue holder (and so a potential sender) mid-interval.
        for &(_, _, ev) in drained {
            match ev {
                Event::Timer(i, ep, Timer::WakeUp) if self.hot.epoch[i.index()] == ep => {
                    self.par.wake_drained[i.index()] = true;
                }
                Event::DataGen(i) if self.hot.alive[i.index()] => {
                    self.par.datagen.push(i.index() as u32);
                }
                _ => {}
            }
        }

        // Seed scan: anything mid-cycle, holding traffic, or with a noisy
        // radio anchors the interaction closure. One dense pass; the only
        // `Node` dereferences are occupancy re-checks on flagged nodes.
        for j in 0..n {
            let mid = !matches!(self.hot.state[j], MacState::Sleeping | MacState::Passive);
            let holder = self.par.occupied[j] && {
                if self.nodes[j].queue.is_empty() {
                    self.par.occupied[j] = false;
                    false
                } else {
                    true
                }
            };
            if mid || holder || !self.medium.is_radio_quiet(j) {
                if !self.par.marked[j] {
                    self.par.marked[j] = true;
                    marked_cnt += 1;
                }
                if !self.par.capable[j] {
                    self.par.capable[j] = true;
                    self.par.frontier.push(j as u32);
                }
            }
        }
        for k in 0..self.par.datagen.len() {
            let j = self.par.datagen[k] as usize;
            if !self.par.marked[j] {
                self.par.marked[j] = true;
                marked_cnt += 1;
            }
            if !self.par.capable[j] {
                self.par.capable[j] = true;
                self.par.frontier.push(j as u32);
            }
        }

        // BFS over stored positions: capability propagates along possible
        // true-range contact; everything a capable node's neighbour
        // queries could even inspect gets marked (read quarantine).
        //
        // Lazy: stored positions lag truth by `v_max · staleness`, and a
        // node may be caught up (mutated!) anywhere in the interval, so a
        // node's *reach* is `v_max · (bound − synced_at)`. Queries inspect
        // out to `query_radius`, hence the wider mark threshold.
        //
        // Ticked: positions materialize exactly (a deterministic, RNG-free
        // replay the engine performs before any read), so both thresholds
        // collapse to `range + 2·v_max·Δ`; neighbour-query supersets only
        // materialize candidates (position bookkeeping the chunks never
        // touch), never read their protocol state past true range.
        let lazy_geom = self.lazy.as_ref().map(|lz| {
            (
                lz.query_radius,
                lz.vmax,
                lz.vmax * (lz.sync_every.as_secs_f64() + delta),
            )
        });
        let ticked_thresh = range + 2.0 * vmax * delta;
        // Stored positions can lag true ones by at most a grid cell's
        // diagonal in ticked mode (coast leases never cross a cell).
        let ticked_slack = match &self.lazy {
            Some(_) => 0.0,
            None => (4.0 * range).max(1.0) * std::f64::consts::SQRT_2,
        };

        while let Some(x) = self.par.frontier.pop() {
            if marked_cnt > cap {
                return false; // flooded
            }
            let x = x as usize;
            let (r_collect, reach_x) = match lazy_geom {
                Some((qr, vm, reach_max)) => {
                    let lz = self.lazy.as_ref().expect("lazy geom implies lazy mode");
                    let reach_x = vm * bound.saturating_since(lz.synced_at[x]).as_secs_f64();
                    (qr + reach_x + reach_max, reach_x)
                }
                None => {
                    let coast = self.coast.as_mut().expect("ticked mode");
                    let t = coast.tick_no;
                    coast.materialize(x, t, &mut self.positions);
                    (ticked_thresh + ticked_slack, 0.0)
                }
            };
            self.grid
                .query_within(&self.positions, x, r_collect, &mut self.par.qbuf);
            for k in 0..self.par.qbuf.len() {
                let y = self.par.qbuf[k];
                if self.par.capable[y] {
                    continue;
                }
                let (prop, mark) = match lazy_geom {
                    Some((qr, vm, _)) => {
                        let lz = self.lazy.as_ref().expect("lazy mode");
                        let reach_y = vm * bound.saturating_since(lz.synced_at[y]).as_secs_f64();
                        (range + reach_x + reach_y, qr + reach_x + reach_y)
                    }
                    None => {
                        let coast = self.coast.as_mut().expect("ticked mode");
                        let t = coast.tick_no;
                        coast.materialize(y, t, &mut self.positions);
                        (ticked_thresh, ticked_thresh)
                    }
                };
                let d2 = self.positions[x].distance_sq(self.positions[y]);
                if d2 <= prop * prop {
                    // Within possible true radio range of a capable node:
                    // it can be woken into the exchange, so capability
                    // propagates — unless it provably cannot act (dead, or
                    // asleep with no wake-up due this interval).
                    if !self.par.marked[y] {
                        self.par.marked[y] = true;
                        marked_cnt += 1;
                    }
                    let can_act = self.hot.alive[y]
                        && (self.hot.state[y] != MacState::Sleeping || self.par.wake_drained[y]);
                    if can_act {
                        self.par.capable[y] = true;
                        self.par.frontier.push(y as u32);
                    }
                } else if d2 <= mark * mark && !self.par.marked[y] {
                    // Inspection reach only: sequential-lane queries may
                    // read (and in lazy mode catch up) this node.
                    self.par.marked[y] = true;
                    marked_cnt += 1;
                }
            }
        }

        // Partition the drained events. Any event on a marked node — or
        // any global event — goes to the sequential lane; events on clean
        // nodes must be one of the chunk-executable shapes, else the whole
        // interval is unsound to split and falls back.
        let nchunks = self.par.threads;
        let chunk_size = n.div_ceil(nchunks);
        if self.par.chunk_events.len() < nchunks {
            self.par.chunk_events.resize_with(nchunks, Vec::new);
        }
        for c in &mut self.par.chunk_events {
            c.clear();
        }
        self.par.seq_events.clear();
        for &(t, s, ev) in drained {
            let (node, allowed) = match ev {
                Event::MobilityTick => (None, true),
                Event::DataGen(i) => (Some(i.index()), !self.hot.alive[i.index()]),
                Event::MetricTimeout(i) => (Some(i.index()), true),
                Event::TxEnd(i, _) => (Some(i.index()), false),
                Event::Timer(i, ep, tmr) => {
                    let l = i.index();
                    let stale = self.hot.epoch[l] != ep;
                    (
                        Some(l),
                        stale || matches!(tmr, Timer::WakeUp | Timer::Guard),
                    )
                }
                Event::Fault(_) | Event::ObserveTick => {
                    unreachable!("terminators never reach the partition")
                }
            };
            match node {
                Some(l) if !self.par.marked[l] => {
                    if !allowed {
                        return false; // unexpected shape on a clean node
                    }
                    self.par.chunk_events[l / chunk_size].push((t, s, ev));
                }
                _ => self.par.seq_events.push((t, s, ev)),
            }
        }
        true
    }

    /// Executes the clean chunks on scoped workers over disjoint
    /// `split_at_mut` views. Chunk boundaries are fixed by node index, so
    /// every mutable lane splits the same way; `hot.sink`/`hot.alive` are
    /// shared immutable reads. Joins before returning — the sequential
    /// lane runs on fully released borrows.
    fn run_chunks(&mut self, bound: SimTime) -> Vec<SeqLane> {
        let n = self.nodes.len();
        let nchunks = self.par.threads;
        let chunk_size = n.div_ceil(nchunks);
        let chunk_events = std::mem::take(&mut self.par.chunk_events);
        let cfg = CleanCfg {
            energy: &self.scenario.energy,
            protocol: &self.protocol,
            receiver_window: SimDuration::from_secs_f64(self.protocol.receiver_window_secs),
            sleeps: self.mac.sleeps,
            adaptive_sleep: self.mac.adaptive_sleep,
            urgency_bound: Ftd::new(self.protocol.urgency_ftd_bound),
            data_interval_secs: self.scenario.data_interval_secs,
        };
        let end = self.end;
        let lazy_on = self.lazy.is_some();

        let mut outs: Vec<SeqLane> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            let mut nodes_rest: &mut [Node] = &mut self.nodes;
            let mut epoch_rest: &mut [u64] = &mut self.hot.epoch;
            let mut state_rest: &mut [MacState] = &mut self.hot.state;
            let mut xi_rest: &mut [f64] = &mut self.hot.xi;
            let sink_all: &[bool] = &self.hot.sink;
            let alive_all: &[bool] = &self.hot.alive;
            let mut listen_rest: &mut [bool] = self.medium.listening_mut();
            let (mut rngs_rest, mut synced_rest) = match self.lazy.as_mut() {
                Some(lz) => (
                    Some(lz.rngs.as_mut_slice()),
                    Some(lz.synced_at.as_mut_slice()),
                ),
                None => (None, None),
            };
            let mut mob_rest = lazy_on.then_some(self.mobility.as_mut_slice());
            let mut pos_rest = lazy_on.then_some(self.positions.as_mut_slice());

            for (ci, events) in chunk_events.iter().enumerate() {
                let base = ci * chunk_size;
                if base >= n {
                    break;
                }
                let len = chunk_size.min(n - base);
                let (nodes_c, r) = nodes_rest.split_at_mut(len);
                nodes_rest = r;
                let (epoch_c, r) = epoch_rest.split_at_mut(len);
                epoch_rest = r;
                let (state_c, r) = state_rest.split_at_mut(len);
                state_rest = r;
                let (xi_c, r) = xi_rest.split_at_mut(len);
                xi_rest = r;
                let (listen_c, r) = listen_rest.split_at_mut(len);
                listen_rest = r;
                let lazy_c = if lazy_on {
                    Some(LazyChunk {
                        rngs: split_front(&mut rngs_rest, len),
                        synced_at: split_front(&mut synced_rest, len),
                        mobility: split_front(&mut mob_rest, len),
                        positions: split_front(&mut pos_rest, len),
                    })
                } else {
                    None
                };
                if events.is_empty() {
                    continue;
                }
                let job = ChunkJob {
                    base,
                    events,
                    nodes: nodes_c,
                    epoch: epoch_c,
                    state: state_c,
                    xi: xi_c,
                    sink_all,
                    alive_all,
                    listening: listen_c,
                    lazy: lazy_c,
                    cfg: &cfg,
                };
                handles.push(s.spawn(move || run_chunk(job, bound, end)));
            }
            for h in handles {
                outs.push(h.join().expect("chunk worker panicked"));
            }
        });
        self.par.chunk_events = chunk_events;
        outs
    }

    /// Runs the sequential commit lane: the marked/global events of the
    /// interval, in exact `(t, seq)` order, through the ordinary
    /// [`handle`](Self::handle) dispatch with scheduling intercepted into
    /// the interval spawn log.
    fn run_seq_lane(&mut self, drained: &[(SimTime, u64, Event)], bound: SimTime) -> SeqLane {
        self.seq_lane = Some(Box::new(SeqLane::new(bound, self.end)));
        let mut cursor = 0usize;
        loop {
            let lane = self.seq_lane.as_deref_mut().expect("installed above");
            let Some((t, key, ev)) = lane.next_event(drained, &mut cursor) else {
                break;
            };
            lane.begin_entry(t, key);
            self.handle(t, ev);
            self.seq_lane
                .as_deref_mut()
                .expect("interval lane stays installed")
                .finish_entry();
        }
        *self.seq_lane.take().expect("installed above")
    }

    /// The commit walk: merges every lane's spawn log in `(t, resolved
    /// key)` order — the chronological order of the spawning handler
    /// calls — and replays the sequential engine's sequence-number
    /// allocations. Parked spawns re-file with their numbers
    /// pre-assigned; consumed spawns are folded into the lifetime pop
    /// counter and, when no terminator already advanced it, the queue
    /// clock.
    fn commit_interval(&mut self, seq: SeqLane, chunks: Vec<SeqLane>, advance_clock: bool) {
        let mut consumed = seq.consumed;
        let mut max_consumed = seq.max_consumed;
        let mut moves: Vec<u32> = Vec::new();
        let mut logs: Vec<LaneLog> = Vec::with_capacity(1 + chunks.len());
        logs.push(seq.log);
        for c in chunks {
            consumed += c.consumed;
            if c.max_consumed > max_consumed {
                max_consumed = c.max_consumed;
            }
            moves.extend_from_slice(&c.moves);
            logs.push(c.log);
        }

        let mut cursors = vec![0usize; logs.len()];
        let mut parked = 0u64;
        loop {
            let mut best: Option<(SimTime, u64, usize)> = None;
            for (li, log) in logs.iter().enumerate() {
                if let Some(e) = log.entries.get(cursors[li]) {
                    let rk = log.resolve(e.key);
                    if best.is_none_or(|(bt, bk, _)| (e.t, rk) < (bt, bk)) {
                        best = Some((e.t, rk, li));
                    }
                }
            }
            let Some((_, _, li)) = best else {
                break;
            };
            let e = logs[li].entries[cursors[li]];
            cursors[li] += 1;
            for k in e.start..e.start + e.len {
                let seqno = self.events.alloc_seq();
                let rec = &mut logs[li].spawns[k as usize];
                rec.seq = seqno;
                if rec.parked {
                    parked += 1;
                    let lane = event_lane(&self.shards.node_shard, &rec.ev);
                    self.events
                        .schedule_preassigned(lane, rec.due, rec.ev, seqno);
                }
            }
        }

        self.events.note_external_pops(consumed);
        self.par.stats.spawns_consumed += consumed;
        self.par.stats.spawns_parked += parked;
        if advance_clock && max_consumed > self.events.now() {
            self.events.advance_now(max_consumed);
        }

        // Deferred lazy-chunk grid moves: the grid is a pure function of
        // final stored positions, so an ascending replay lands the exact
        // buckets a sequential run would hold at the interval boundary.
        moves.sort_unstable();
        moves.dedup();
        for &j in &moves {
            self.grid.move_node(j as usize, self.positions[j as usize]);
        }
    }
}

/// Splits `len` elements off the front of an optional slice borrow.
fn split_front<'a, T>(rest: &mut Option<&'a mut [T]>, len: usize) -> &'a mut [T] {
    let slice = rest.take().expect("lazy lanes present in lazy mode");
    let (head, tail) = slice.split_at_mut(len);
    *rest = Some(tail);
    head
}

/// One worker's interval: merge the chunk's drained events with its
/// consumed spawns in `(t, key)` order and dispatch each through the
/// clean-handler transcriptions below.
fn run_chunk(mut job: ChunkJob<'_>, bound: SimTime, end: SimTime) -> SeqLane {
    let t_busy = Instant::now();
    let mut lane = SeqLane::new(bound, end);
    let mut cursor = 0usize;
    while let Some((t, key, ev)) = lane.next_event(job.events, &mut cursor) {
        lane.begin_entry(t, key);
        dispatch_clean(&mut job, &mut lane, t, ev);
        lane.finish_entry();
    }
    lane.busy_ns = t_busy.elapsed().as_nanos() as u64;
    lane
}

/// Chunk-side event dispatch: the clean-shape subset of
/// [`Simulation::handle`], with the same stale-timer filter against the
/// (chunk-local, possibly already advanced) epoch mirror.
fn dispatch_clean(job: &mut ChunkJob<'_>, lane: &mut SeqLane, now: SimTime, ev: Event) {
    match ev {
        Event::Timer(i, epoch, timer) => {
            let l = i.index() - job.base;
            debug_assert_eq!(job.epoch[l], job.nodes[l].epoch);
            if job.epoch[l] != epoch {
                return; // stale — implicit cancellation, as in handle()
            }
            match timer {
                Timer::WakeUp => clean_wakeup(job, lane, now, i),
                Timer::Guard => clean_guard(job, lane, now, i),
                _ => unreachable!("partition admits only WakeUp/Guard live timers"),
            }
        }
        Event::MetricTimeout(i) => clean_metric_timeout(job, lane, now, i),
        Event::DataGen(i) => clean_data_gen_dead(job, lane, now, i),
        _ => unreachable!("partition admits only node-local clean kinds"),
    }
}

// ----------------------------------------------------------------------
// Clean-handler transcriptions.
//
// Each function below is a line-for-line transcription of the matching
// branch of its sequential handler in world.rs, restricted to the state a
// clean node can be in (no MAC context, empty queue, quiet radio — the
// asserts enforce the quarantine's promises). Any behavioural edit to the
// originals MUST be mirrored here; `thread_parity` and the parallel cells
// of tests/sharded_engine.rs diff the two paths bit-for-bit.
// ----------------------------------------------------------------------

/// `start_cycle` for a clean node (world.rs: `fn start_cycle`). The
/// sender branch is unreachable: a queue holder is always marked.
fn clean_wakeup(job: &mut ChunkJob<'_>, lane: &mut SeqLane, now: SimTime, i: NodeId) {
    let l = i.index() - job.base;
    debug_assert_eq!(job.sink_all[i.index()], job.nodes[l].is_sink());
    debug_assert_eq!(job.alive_all[i.index()], job.nodes[l].alive);
    if job.sink_all[i.index()] || !job.alive_all[i.index()] {
        return;
    }
    // Lazy catch-up (`catch_up_node`): per-node RNG stream, deferred grid
    // move (replayed ascending at commit — order-insensitive).
    if let Some(lz) = job.lazy.as_mut() {
        let dt = now.saturating_since(lz.synced_at[l]);
        if !dt.is_zero() {
            lz.synced_at[l] = now;
            lz.mobility[l].advance_span(dt.as_secs_f64(), &mut lz.rngs[l]);
            let p = lz.mobility[l].position();
            lz.positions[l] = p;
            lane.moves.push(i.index() as u32);
        }
    }
    {
        let node = &mut job.nodes[l];
        if node.state == MacState::Sleeping {
            node.meter.set_state(now, RadioState::Idle, job.cfg.energy);
            // set_listening(i, true): a pure flag set — waking a quiet
            // radio aborts no reception.
            job.listening[l] = true;
        }
        assert!(
            node.sender_ctx.is_none() && node.receiver_ctx.is_none(),
            "clean wakeup with a live MAC context"
        );
        node.listen_retries = 0;
    }
    // A queue holder is marked (occupancy seed), so only the empty-queue
    // receiver-window branch of start_cycle is reachable here.
    assert!(
        job.nodes[l].queue.is_empty(),
        "clean wakeup with a queued copy"
    );
    let window = job.cfg.receiver_window;
    job.nodes[l].transition(MacState::Passive);
    job.sync_hot(l);
    lane.spawn(now + window, Event::Timer(i, job.epoch[l], Timer::Guard));
}

/// `end_cycle(.., active: false)` for a clean node (world.rs:
/// `fn end_cycle`), including the sink arm. No `Slept` trace emit: the
/// parallel path never runs with a trace sink attached.
fn clean_guard(job: &mut ChunkJob<'_>, lane: &mut SeqLane, now: SimTime, i: NodeId) {
    let l = i.index() - job.base;
    debug_assert_eq!(job.sink_all[i.index()], job.nodes[l].is_sink());
    if job.sink_all[i.index()] {
        let node = &mut job.nodes[l];
        assert!(
            node.sender_ctx.is_none(),
            "clean sink guard with sender ctx"
        );
        node.receiver_ctx = None;
        node.listen_retries = 0;
        node.transition(MacState::Passive);
        job.sync_hot(l);
        return;
    }
    let (go_sleep, backoff) = {
        let node = &mut job.nodes[l];
        node.sleep.record_cycle(false);
        node.cycles_inactive += 1;
        assert!(node.sender_ctx.is_none(), "clean guard with sender ctx");
        node.receiver_ctx = None;
        node.listen_retries = 0;
        let go_sleep =
            job.cfg.sleeps && node.cycles_inactive >= job.cfg.protocol.inactivity_cycles_l;
        // Inactive cycles always draw the backoff (the active arm's
        // immediate-repeat gap is unreachable for a Guard), keeping the
        // node's RNG stream aligned with the sequential handler.
        let backoff = SimDuration::from_secs_f64(node.rng.gen_range_f64(
            job.cfg.protocol.backoff_min_secs,
            job.cfg.protocol.backoff_max_secs,
        ));
        (go_sleep, backoff)
    };
    if go_sleep {
        let duration = if job.cfg.adaptive_sleep {
            let node = &job.nodes[l];
            node.sleep
                .sleep_duration(node.queue.urgency(job.cfg.urgency_bound), job.cfg.protocol)
        } else {
            SimDuration::from_secs_f64(job.cfg.protocol.fixed_sleep_secs)
        };
        let node = &mut job.nodes[l];
        node.transition(MacState::Sleeping);
        node.meter.set_state(now, RadioState::Sleep, job.cfg.energy);
        job.sync_hot(l);
        // set_listening(i, false): the rx-abort arm is a no-op on a quiet
        // radio, leaving the pure flag clear.
        job.listening[l] = false;
        lane.spawn(now + duration, Event::Timer(i, job.epoch[l], Timer::WakeUp));
    } else {
        job.nodes[l].transition(MacState::Passive);
        job.sync_hot(l);
        lane.spawn(now + backoff, Event::Timer(i, job.epoch[l], Timer::WakeUp));
    }
}

/// `on_metric_timeout` transcription (world.rs): both the frozen-ξ dead
/// branch and the Eq. 1 elapsed-window decay. No RNG, node-local.
fn clean_metric_timeout(job: &mut ChunkJob<'_>, lane: &mut SeqLane, now: SimTime, i: NodeId) {
    let l = i.index() - job.base;
    let delta = SimDuration::from_secs_f64(job.cfg.protocol.xi_timeout_secs);
    let node = &mut job.nodes[l];
    if !node.alive {
        lane.spawn(now + delta, Event::MetricTimeout(i));
        return;
    }
    let anchor = node.last_tx.max(node.xi_anchor);
    let due = anchor + delta;
    if now >= due {
        let windows = (now.saturating_since(anchor).ticks() / delta.ticks().max(1)).max(1);
        node.metric.decay_windows(job.cfg.protocol.alpha, windows);
        node.xi_anchor = anchor + delta * windows;
        job.sync_hot(l);
        lane.spawn(now + delta, Event::MetricTimeout(i));
    } else {
        lane.spawn(due, Event::MetricTimeout(i));
    }
}

/// `on_data_gen` for a dead node (world.rs): the Poisson clock keeps
/// ticking — one per-node-RNG draw, no generation. Alive generator ticks
/// seed the closure and never reach a chunk.
fn clean_data_gen_dead(job: &mut ChunkJob<'_>, lane: &mut SeqLane, now: SimTime, i: NodeId) {
    let l = i.index() - job.base;
    assert!(!job.nodes[l].alive, "live DataGen reached a clean chunk");
    let next = {
        let node = &mut job.nodes[l];
        SimDuration::from_secs_f64(node.rng.gen_exp(job.cfg.data_interval_secs))
    };
    lane.spawn(now + next, Event::DataGen(i));
}
