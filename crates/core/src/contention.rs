//! Contention analysis and optimization (paper Secs. 4.2–4.3, Eqs. 9–14).
//!
//! **RTS phase** (Sec. 4.2): each contender *i* listens for a period drawn
//! uniformly from `{1, …, σᵢ}` slots with `σᵢ = ξᵢ·τ_max` (Eq. 9) — nodes
//! with *lower* delivery probability pick shorter listening periods and so
//! win the channel more often, which is desirable because they are the
//! ones needing receivers. Eqs. 10–12 give the channel-grab and collision
//! probabilities in an isolated cell; Eq. 13 picks the smallest `τ_max`
//! keeping collisions under a target.
//!
//! **CTS phase** (Sec. 4.3): qualified receivers answer in a uniformly
//! random slot of a window of `W` slots; Eq. 14 gives the probability that
//! any two pick the same slot, and a linear search picks the smallest `W`
//! meeting a target.

/// σᵢ of Eq. 9: the upper bound of node *i*'s uniformly random listening
/// period, in slots. Clamped to at least one slot.
///
/// # Panics
///
/// Panics if `xi` is outside `[0, 1]` or `tau_max_slots` is zero.
#[must_use]
pub fn sigma(xi: f64, tau_max_slots: u64) -> u64 {
    assert!(
        xi.is_finite() && (0.0..=1.0).contains(&xi),
        "ξ {xi} outside [0,1]"
    );
    assert!(tau_max_slots > 0, "τ_max must be positive");
    ((xi * tau_max_slots as f64).round() as u64).max(1)
}

/// P(node `i` grabs the channel) per Eqs. 10–11, given every contender's σ.
///
/// Node *i* wins when its drawn listening period is strictly shorter than
/// everyone else's:
/// `Pᵢ = Σ_{τ=1}^{σᵢ} (1/σᵢ)·∏_{j≠i} θᵢⱼ/σⱼ`, with
/// `θᵢⱼ = σⱼ − τ` when `σⱼ > τ` and 0 otherwise.
///
/// # Panics
///
/// Panics if `i` is out of range or any σ is zero.
#[must_use]
pub fn grab_probability(sigmas: &[u64], i: usize) -> f64 {
    assert!(i < sigmas.len(), "contender index out of range");
    assert!(sigmas.iter().all(|&s| s > 0), "σ must be positive");
    let sigma_i = sigmas[i];
    let mut p = 0.0;
    for tau in 1..=sigma_i {
        let mut others = 1.0;
        for (j, &sigma_j) in sigmas.iter().enumerate() {
            if j == i {
                continue;
            }
            if sigma_j > tau {
                others *= (sigma_j - tau) as f64 / sigma_j as f64;
            } else {
                others = 0.0;
                break;
            }
        }
        p += others / sigma_i as f64;
    }
    p
}

/// γ of Eq. 12: the probability that *no* contender cleanly grabs the
/// channel (a preamble collision), `γ = 1 − Σᵢ Pᵢ`.
///
/// With a single contender this is 0.
#[must_use]
pub fn rts_collision_probability(sigmas: &[u64]) -> f64 {
    if sigmas.len() <= 1 {
        // A lone contender (or an empty cell) cannot collide.
        return 0.0;
    }
    let total: f64 = (0..sigmas.len()).map(|i| grab_probability(sigmas, i)).sum();
    (1.0 - total).clamp(0.0, 1.0)
}

/// Eq. 13: the smallest `τ_max ≤ cap` whose collision probability (Eq. 12)
/// over contenders with the given delivery probabilities is at most
/// `target`. Returns `cap` when even the cap misses the target.
///
/// # Panics
///
/// Panics if `cap` is zero or `target` is outside `[0, 1]`.
#[must_use]
pub fn optimize_tau_max(xis: &[f64], target: f64, cap: u64) -> u64 {
    assert!(cap > 0, "τ_max cap must be positive");
    assert!(
        (0.0..=1.0).contains(&target),
        "target {target} outside [0,1]"
    );
    for tau_max in 1..=cap {
        let sigmas: Vec<u64> = xis.iter().map(|&xi| sigma(xi, tau_max)).collect();
        if rts_collision_probability(&sigmas) <= target {
            return tau_max;
        }
    }
    cap
}

/// γₒ of Eq. 14: the probability that `n` repliers choosing uniformly
/// random slots of a `w`-slot contention window do **not** all land in
/// distinct slots: `γₒ = 1 − (w choose n)·n!/wⁿ = 1 − ∏ₖ (w − k)/w`.
///
/// Returns 0 for `n ≤ 1` and 1 when `n > w` (pigeonhole).
///
/// # Panics
///
/// Panics if `w` is zero.
#[must_use]
pub fn cts_collision_probability(n: u64, w: u64) -> f64 {
    assert!(w > 0, "window must be positive");
    if n <= 1 {
        return 0.0;
    }
    if n > w {
        return 1.0;
    }
    let mut all_distinct = 1.0;
    for k in 0..n {
        all_distinct *= (w - k) as f64 / w as f64;
    }
    (1.0 - all_distinct).clamp(0.0, 1.0)
}

/// Sec. 4.3's linear search: the smallest window `w ≤ cap` whose Eq. 14
/// collision probability for `n` expected repliers is at most `target`.
/// Returns `cap` when unreachable.
///
/// # Panics
///
/// Panics if `cap` is zero or `target` is outside `[0, 1]`.
#[must_use]
pub fn optimize_cts_window(n: u64, target: f64, cap: u64) -> u64 {
    assert!(cap > 0, "window cap must be positive");
    assert!(
        (0.0..=1.0).contains(&target),
        "target {target} outside [0,1]"
    );
    for w in 1..=cap {
        if cts_collision_probability(n, w) <= target {
            return w;
        }
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_scales_with_xi_and_floors_at_one() {
        assert_eq!(sigma(0.0, 10), 1);
        assert_eq!(sigma(0.5, 10), 5);
        assert_eq!(sigma(1.0, 10), 10);
        assert_eq!(sigma(0.04, 10), 1);
    }

    #[test]
    fn lone_contender_always_grabs() {
        assert!((grab_probability(&[7], 0) - 1.0).abs() < 1e-12);
        assert_eq!(rts_collision_probability(&[7]), 0.0);
    }

    #[test]
    fn two_equal_contenders_tie_with_known_probability() {
        // Both uniform on {1,…,σ}: collision iff equal draws → 1/σ.
        for s in [2u64, 4, 10] {
            let gamma = rts_collision_probability(&[s, s]);
            assert!((gamma - 1.0 / s as f64).abs() < 1e-12, "σ={s} γ={gamma}");
        }
    }

    #[test]
    fn sigma_one_pair_always_collides() {
        // Both forced to slot 1.
        assert!((rts_collision_probability(&[1, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_xi_grabs_more_often() {
        // σ from ξ = 0.2 vs 0.9 at τ_max = 20 → 4 vs 18.
        let sigmas = [sigma(0.2, 20), sigma(0.9, 20)];
        let p_low = grab_probability(&sigmas, 0);
        let p_high = grab_probability(&sigmas, 1);
        assert!(
            p_low > 2.0 * p_high,
            "low-ξ node should dominate: {p_low} vs {p_high}"
        );
    }

    #[test]
    fn grab_probability_matches_monte_carlo() {
        use dftmsn_sim::rng::SimRng;
        let sigmas = [3u64, 5, 8];
        let mut rng = SimRng::seed_from(42);
        let trials = 200_000;
        let mut wins = [0u64; 3];
        for _ in 0..trials {
            let draws: Vec<u64> = sigmas
                .iter()
                .map(|&s| rng.gen_range_inclusive(1, s))
                .collect();
            let min = *draws.iter().min().unwrap();
            let winners: Vec<usize> = (0..3).filter(|&i| draws[i] == min).collect();
            if winners.len() == 1 {
                wins[winners[0]] += 1;
            }
        }
        for (i, &won) in wins.iter().enumerate() {
            let analytic = grab_probability(&sigmas, i);
            let empirical = won as f64 / trials as f64;
            assert!(
                (analytic - empirical).abs() < 0.005,
                "node {i}: analytic {analytic} vs empirical {empirical}"
            );
        }
    }

    #[test]
    fn rts_collision_decreases_with_tau_max() {
        let xis = [0.3, 0.5, 0.7, 0.2];
        let mut prev = 1.0;
        for tau_max in [2u64, 4, 8, 16, 32] {
            let sigmas: Vec<u64> = xis.iter().map(|&x| sigma(x, tau_max)).collect();
            let gamma = rts_collision_probability(&sigmas);
            assert!(gamma <= prev + 1e-9, "γ rose at τ_max={tau_max}");
            prev = gamma;
        }
    }

    #[test]
    fn optimize_tau_max_is_minimal_and_feasible() {
        let xis = [0.3, 0.5, 0.7];
        let target = 0.1;
        let best = optimize_tau_max(&xis, target, 64);
        let gamma_at = |t: u64| {
            let s: Vec<u64> = xis.iter().map(|&x| sigma(x, t)).collect();
            rts_collision_probability(&s)
        };
        assert!(gamma_at(best) <= target, "infeasible τ_max");
        if best > 1 {
            assert!(gamma_at(best - 1) > target, "not minimal");
        }
    }

    #[test]
    fn optimize_tau_max_returns_cap_when_impossible() {
        // Two ξ=0 contenders always collide (σ=1 each) regardless of τ_max.
        assert_eq!(optimize_tau_max(&[0.0, 0.0], 0.1, 16), 16);
    }

    #[test]
    fn eq14_known_values() {
        assert_eq!(cts_collision_probability(0, 8), 0.0);
        assert_eq!(cts_collision_probability(1, 8), 0.0);
        // Two repliers, w slots: collision 1/w.
        assert!((cts_collision_probability(2, 8) - 1.0 / 8.0).abs() < 1e-12);
        // Birthday problem, n = 3, w = 10: 1 - (10·9·8)/1000 = 0.28.
        assert!((cts_collision_probability(3, 10) - 0.28).abs() < 1e-12);
        // Pigeonhole.
        assert_eq!(cts_collision_probability(9, 8), 1.0);
    }

    #[test]
    fn eq14_monotone_in_n_and_w() {
        for n in 1..6u64 {
            assert!(cts_collision_probability(n + 1, 12) >= cts_collision_probability(n, 12));
        }
        for w in 4..20u64 {
            assert!(cts_collision_probability(4, w + 1) <= cts_collision_probability(4, w));
        }
    }

    #[test]
    fn optimize_cts_window_is_minimal_and_feasible() {
        for n in 1..8u64 {
            let w = optimize_cts_window(n, 0.1, 1024);
            assert!(cts_collision_probability(n, w) <= 0.1, "n={n}");
            if w > 1 {
                assert!(
                    cts_collision_probability(n, w - 1) > 0.1,
                    "n={n} not minimal"
                );
            }
        }
    }

    #[test]
    fn optimize_cts_window_hits_cap() {
        // Five repliers under a 1% target need a big window; cap at 8.
        assert_eq!(optimize_cts_window(5, 0.01, 8), 8);
    }

    #[test]
    fn cts_collision_matches_monte_carlo() {
        use dftmsn_sim::rng::SimRng;
        let mut rng = SimRng::seed_from(7);
        let (n, w) = (4u64, 12u64);
        let trials = 100_000;
        let mut collided = 0u64;
        for _ in 0..trials {
            let mut slots: Vec<u64> = (0..n).map(|_| rng.gen_range_inclusive(1, w)).collect();
            slots.sort_unstable();
            slots.dedup();
            if slots.len() < n as usize {
                collided += 1;
            }
        }
        let analytic = cts_collision_probability(n, w);
        let empirical = collided as f64 / trials as f64;
        assert!(
            (analytic - empirical).abs() < 0.01,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_target_panics() {
        let _ = optimize_tau_max(&[0.5], 1.5, 8);
    }
}
