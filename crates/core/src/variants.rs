//! Protocol variants evaluated in the paper (Sec. 5) plus the two basic
//! DFT-MSN baselines from the companion work \[5\].
//!
//! | Variant | What it is |
//! |---|---|
//! | [`Opt`](ProtocolKind::Opt) | the full protocol with every Sec. 4 optimization (adaptive τ_max, adaptive W, Eq. 6 sleeping) |
//! | [`NoOpt`](ProtocolKind::NoOpt) | the Sec. 3 protocol with fixed τ_max, fixed W and a fixed sleeping period |
//! | [`NoSleep`](ProtocolKind::NoSleep) | OPT without periodic sleeping (always-on radio) |
//! | [`Zbr`](ProtocolKind::Zbr) | OPT's MAC with ZebraNet's history-based single-copy forwarding |
//! | [`Direct`](ProtocolKind::Direct) | direct transmission: sensors hand data to sinks only |
//! | [`Epidemic`](ProtocolKind::Epidemic) | flooding: copy to every encountered node with buffer space |

use serde::{Deserialize, Serialize};

/// How a node updates its routing metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Eq. 1 delivery probability: every transmission pulls ξ toward the
    /// receiver's ξ.
    DeliveryProb,
    /// ZebraNet history: only *direct* contacts with a sink raise the
    /// metric; it decays on the Δ-timeout like ξ.
    SinkHistory,
}

/// How a sender picks receivers from the CTS repliers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionKind {
    /// Sec. 3.2.2: greedy multicast subset until combined delivery
    /// probability exceeds R; copy FTDs per Eq. 2.
    FtdThreshold,
    /// Single best replier (highest metric) and the copy is *moved*, not
    /// replicated (ZebraNet).
    SingleBest,
    /// Every replier gets a copy (epidemic flooding).
    AllResponders,
    /// Only sinks may reply/qualify (direct transmission).
    SinkOnly,
}

/// How the data queue is managed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// FTD-sorted with threshold purge (Sec. 3.1.2).
    Ftd,
    /// Plain FIFO drop-tail (baselines without FTD).
    Fifo,
}

/// The four implementations compared in Fig. 2 plus two extra baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Full protocol with all Sec. 4 optimizations.
    Opt,
    /// Basic Sec. 3 protocol with fixed parameters.
    NoOpt,
    /// OPT without periodic sleeping.
    NoSleep,
    /// ZebraNet-style history-based forwarding on the same MAC.
    Zbr,
    /// Direct transmission to sinks only.
    Direct,
    /// Epidemic flooding.
    Epidemic,
}

impl ProtocolKind {
    /// The four variants of the paper's Fig. 2.
    pub const FIG2: [ProtocolKind; 4] = [
        ProtocolKind::Opt,
        ProtocolKind::NoSleep,
        ProtocolKind::NoOpt,
        ProtocolKind::Zbr,
    ];

    /// Every implemented variant.
    pub const ALL: [ProtocolKind; 6] = [
        ProtocolKind::Opt,
        ProtocolKind::NoOpt,
        ProtocolKind::NoSleep,
        ProtocolKind::Zbr,
        ProtocolKind::Direct,
        ProtocolKind::Epidemic,
    ];

    /// The paper's label for the variant.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Opt => "OPT",
            ProtocolKind::NoOpt => "NOOPT",
            ProtocolKind::NoSleep => "NOSLEEP",
            ProtocolKind::Zbr => "ZBR",
            ProtocolKind::Direct => "DIRECT",
            ProtocolKind::Epidemic => "EPIDEMIC",
        }
    }

    /// The variant's behavioural configuration.
    #[must_use]
    pub fn config(self) -> VariantConfig {
        match self {
            ProtocolKind::Opt => VariantConfig {
                kind: self,
                sleeps: true,
                adaptive_sleep: true,
                adaptive_tau: true,
                adaptive_window: true,
                metric: MetricKind::DeliveryProb,
                selection: SelectionKind::FtdThreshold,
                queue: QueueDiscipline::Ftd,
            },
            ProtocolKind::NoOpt => VariantConfig {
                kind: self,
                sleeps: true,
                adaptive_sleep: false,
                adaptive_tau: false,
                adaptive_window: false,
                metric: MetricKind::DeliveryProb,
                selection: SelectionKind::FtdThreshold,
                queue: QueueDiscipline::Ftd,
            },
            ProtocolKind::NoSleep => VariantConfig {
                kind: self,
                sleeps: false,
                adaptive_sleep: false,
                adaptive_tau: true,
                adaptive_window: true,
                metric: MetricKind::DeliveryProb,
                selection: SelectionKind::FtdThreshold,
                queue: QueueDiscipline::Ftd,
            },
            ProtocolKind::Zbr => VariantConfig {
                kind: self,
                sleeps: true,
                adaptive_sleep: true,
                adaptive_tau: true,
                adaptive_window: true,
                metric: MetricKind::SinkHistory,
                selection: SelectionKind::SingleBest,
                queue: QueueDiscipline::Fifo,
            },
            ProtocolKind::Direct => VariantConfig {
                kind: self,
                sleeps: true,
                adaptive_sleep: true,
                adaptive_tau: true,
                adaptive_window: true,
                metric: MetricKind::DeliveryProb,
                selection: SelectionKind::SinkOnly,
                queue: QueueDiscipline::Fifo,
            },
            ProtocolKind::Epidemic => VariantConfig {
                kind: self,
                sleeps: true,
                adaptive_sleep: true,
                adaptive_tau: true,
                adaptive_window: true,
                metric: MetricKind::DeliveryProb,
                selection: SelectionKind::AllResponders,
                queue: QueueDiscipline::Fifo,
            },
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl From<ProtocolKind> for VariantConfig {
    fn from(kind: ProtocolKind) -> VariantConfig {
        kind.config()
    }
}

/// The knobs distinguishing the variants; produced by
/// [`ProtocolKind::config`] and consumed by the simulation engine. Custom
/// combinations (for ablations) can be built by mutating a base config or
/// chaining the `with_*` builders.
///
/// Marked `#[non_exhaustive]`: always start from [`ProtocolKind::config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct VariantConfig {
    /// Which named variant this derives from.
    pub kind: ProtocolKind,
    /// Whether the node ever turns its radio off.
    pub sleeps: bool,
    /// Eq. 6 adaptive sleeping vs. a fixed period.
    pub adaptive_sleep: bool,
    /// Eq. 13 adaptive τ_max vs. a fixed value.
    pub adaptive_tau: bool,
    /// Eq. 14 adaptive contention window vs. a fixed value.
    pub adaptive_window: bool,
    /// Routing-metric update rule.
    pub metric: MetricKind,
    /// Receiver-selection rule.
    pub selection: SelectionKind,
    /// Queue discipline.
    pub queue: QueueDiscipline,
}

impl VariantConfig {
    /// Toggles Eq. 13 adaptive τ_max (builder style, for ablations).
    #[must_use]
    pub fn with_adaptive_tau(mut self, on: bool) -> Self {
        self.adaptive_tau = on;
        self
    }

    /// Toggles Eq. 14 adaptive contention window (builder style).
    #[must_use]
    pub fn with_adaptive_window(mut self, on: bool) -> Self {
        self.adaptive_window = on;
        self
    }

    /// Toggles Eq. 6 adaptive sleeping (builder style).
    #[must_use]
    pub fn with_adaptive_sleep(mut self, on: bool) -> Self {
        self.adaptive_sleep = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(ProtocolKind::Opt.label(), "OPT");
        assert_eq!(ProtocolKind::NoOpt.label(), "NOOPT");
        assert_eq!(ProtocolKind::NoSleep.label(), "NOSLEEP");
        assert_eq!(ProtocolKind::Zbr.label(), "ZBR");
        assert_eq!(ProtocolKind::Opt.to_string(), "OPT");
    }

    #[test]
    fn fig2_lists_the_paper_variants() {
        assert_eq!(ProtocolKind::FIG2.len(), 4);
        assert!(ProtocolKind::FIG2.contains(&ProtocolKind::Zbr));
    }

    #[test]
    fn opt_enables_everything() {
        let c = ProtocolKind::Opt.config();
        assert!(c.sleeps && c.adaptive_sleep && c.adaptive_tau && c.adaptive_window);
        assert_eq!(c.selection, SelectionKind::FtdThreshold);
        assert_eq!(c.queue, QueueDiscipline::Ftd);
    }

    #[test]
    fn noopt_fixes_all_parameters_but_still_sleeps() {
        let c = ProtocolKind::NoOpt.config();
        assert!(c.sleeps);
        assert!(!c.adaptive_sleep && !c.adaptive_tau && !c.adaptive_window);
    }

    #[test]
    fn nosleep_only_differs_from_opt_in_sleeping() {
        let opt = ProtocolKind::Opt.config();
        let ns = ProtocolKind::NoSleep.config();
        assert!(!ns.sleeps);
        assert_eq!(ns.metric, opt.metric);
        assert_eq!(ns.selection, opt.selection);
        assert_eq!(ns.adaptive_tau, opt.adaptive_tau);
    }

    #[test]
    fn zbr_uses_history_metric_and_single_copy() {
        let c = ProtocolKind::Zbr.config();
        assert_eq!(c.metric, MetricKind::SinkHistory);
        assert_eq!(c.selection, SelectionKind::SingleBest);
        assert_eq!(c.queue, QueueDiscipline::Fifo);
    }

    #[test]
    fn all_variants_have_distinct_configs() {
        for a in ProtocolKind::ALL {
            for b in ProtocolKind::ALL {
                if a != b {
                    assert_ne!(a.config(), b.config(), "{a} vs {b}");
                }
            }
        }
    }
}
