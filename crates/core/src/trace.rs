//! Protocol event tracing.
//!
//! A [`TraceSink`] attached to a [`Simulation`](crate::world::Simulation)
//! observes the MAC-level life of the network: frames on the air,
//! deliveries, collisions, sleep transitions and message drops. Traces
//! power the handshake assertions in the integration tests and make the
//! two-phase exchange visible for debugging.
//!
//! Tracing is off by default and costs one branch per event when off.

use crate::message::MessageId;
use dftmsn_radio::ids::NodeId;
use dftmsn_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Why a message copy left a queue involuntarily.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Evicted by a more important arrival (drop-tail).
    Overflow,
    /// Rejected on arrival at a full queue.
    QueueFull,
    /// Purged because its FTD exceeded the threshold.
    FtdThreshold,
}

/// One observed protocol event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A frame started transmission.
    FrameSent {
        /// When.
        at: SimTime,
        /// Transmitter.
        node: NodeId,
        /// Frame tag (`PRE`, `RTS`, `CTS`, `SCHD`, `DATA`, `ACK`).
        tag: &'static str,
        /// Wire size.
        bits: u64,
    },
    /// A frame was decoded intact at a receiver.
    FrameDelivered {
        /// When (frame end).
        at: SimTime,
        /// Transmitter.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Frame tag.
        tag: &'static str,
    },
    /// A frame was lost to a collision at a receiver.
    Collision {
        /// When (frame end).
        at: SimTime,
        /// The victim receiver.
        at_node: NodeId,
    },
    /// A message reached a sink for the first time.
    Delivered {
        /// When.
        at: SimTime,
        /// The message.
        msg: MessageId,
        /// The receiving sink.
        sink: NodeId,
        /// End-to-end delay in seconds.
        delay_secs: f64,
    },
    /// A node turned its radio off.
    Slept {
        /// When.
        at: SimTime,
        /// Who.
        node: NodeId,
        /// Sleep duration in seconds.
        secs: f64,
    },
    /// A message copy was dropped.
    Dropped {
        /// When.
        at: SimTime,
        /// Whose queue.
        node: NodeId,
        /// The message.
        msg: MessageId,
        /// Why.
        reason: DropReason,
    },
    /// A fault-plan event fired.
    FaultInjected {
        /// When.
        at: SimTime,
        /// The fault class (see [`FaultKind::label`](crate::faults::FaultKind::label)).
        kind: &'static str,
    },
}

impl TraceEvent {
    /// When the event happened.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::FrameSent { at, .. }
            | TraceEvent::FrameDelivered { at, .. }
            | TraceEvent::Collision { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Slept { at, .. }
            | TraceEvent::Dropped { at, .. }
            | TraceEvent::FaultInjected { at, .. } => *at,
        }
    }
}

/// Receives trace events during a run.
pub trait TraceSink: Send + std::fmt::Debug {
    /// Observes one event.
    fn record(&mut self, event: TraceEvent);
}

impl TraceSink for Box<dyn TraceSink> {
    fn record(&mut self, event: TraceEvent) {
        (**self).record(event);
    }
}

/// A sink that stores every event in memory.
#[derive(Debug, Default)]
pub struct VecTrace {
    events: Vec<TraceEvent>,
}

impl VecTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the trace, returning its events.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// The tags of sent frames, in order — handy for handshake assertions.
    #[must_use]
    pub fn sent_tags(&self) -> Vec<&'static str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::FrameSent { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect()
    }
}

impl TraceSink for VecTrace {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A sink that counts events by class without storing them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingTrace {
    /// Frames sent.
    pub sent: u64,
    /// Frame deliveries.
    pub delivered_frames: u64,
    /// Collision losses.
    pub collisions: u64,
    /// First-copy sink deliveries.
    pub deliveries: u64,
    /// Sleep transitions.
    pub sleeps: u64,
    /// Drops.
    pub drops: u64,
    /// Fault-plan events fired.
    pub faults: u64,
}

impl CountingTrace {
    /// Creates a zeroed counter sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for CountingTrace {
    fn record(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::FrameSent { .. } => self.sent += 1,
            TraceEvent::FrameDelivered { .. } => self.delivered_frames += 1,
            TraceEvent::Collision { .. } => self.collisions += 1,
            TraceEvent::Delivered { .. } => self.deliveries += 1,
            TraceEvent::Slept { .. } => self.sleeps += 1,
            TraceEvent::Dropped { .. } => self.drops += 1,
            TraceEvent::FaultInjected { .. } => self.faults += 1,
        }
    }
}

/// A fan-out sink: every event goes to `A` first, then to `B`.
///
/// Composes observation with user tracing — e.g. a
/// [`MetricsRecorder`](crate::observe::MetricsRecorder) next to a
/// [`SharedTrace`] — without either knowing about the other.
///
/// # Examples
///
/// ```
/// use dftmsn_core::trace::{CountingTrace, TeeSink, VecTrace};
///
/// let tee = TeeSink(CountingTrace::new(), VecTrace::new());
/// # let _ = tee;
/// ```
#[derive(Debug, Default)]
pub struct TeeSink<A: TraceSink, B: TraceSink>(
    /// The first receiver.
    pub A,
    /// The second receiver.
    pub B,
);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn record(&mut self, event: TraceEvent) {
        self.0.record(event.clone());
        self.1.record(event);
    }
}

/// A clonable, thread-safe handle around a [`VecTrace`], for reading a
/// trace back after [`Simulation::run`](crate::world::Simulation::run)
/// consumed the sink.
///
/// # Examples
///
/// ```
/// use dftmsn_core::params::ScenarioParams;
/// use dftmsn_core::trace::SharedTrace;
/// use dftmsn_core::variants::ProtocolKind;
/// use dftmsn_core::world::Simulation;
///
/// let trace = SharedTrace::new();
/// let sim = Simulation::builder(
///     ScenarioParams::smoke_test().with_duration_secs(60),
///     ProtocolKind::Opt,
/// )
/// .seed(1)
/// .trace(trace.clone())
/// .build();
/// let _report = sim.run();
/// let tags = trace.sent_tags();
/// assert!(tags.is_empty() || tags[0] == "PRE");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedTrace {
    inner: std::sync::Arc<std::sync::Mutex<VecTrace>>,
}

impl SharedTrace {
    /// Creates an empty shared trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of all events recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .expect("trace lock poisoned")
            .events()
            .to_vec()
    }

    /// The tags of sent frames, in order.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked.
    #[must_use]
    pub fn sent_tags(&self) -> Vec<&'static str> {
        self.inner.lock().expect("trace lock poisoned").sent_tags()
    }
}

impl TraceSink for SharedTrace {
    fn record(&mut self, event: TraceEvent) {
        self.inner
            .lock()
            .expect("trace lock poisoned")
            .record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_trace_is_readable_through_clones() {
        let reader = SharedTrace::new();
        let mut writer = reader.clone();
        writer.record(TraceEvent::FrameSent {
            at: SimTime::ZERO,
            node: NodeId(3),
            tag: "PRE",
            bits: 50,
        });
        assert_eq!(reader.sent_tags(), vec!["PRE"]);
        assert_eq!(reader.snapshot().len(), 1);
    }

    #[test]
    fn vec_trace_stores_in_order() {
        let mut t = VecTrace::new();
        t.record(TraceEvent::FrameSent {
            at: SimTime::ZERO,
            node: NodeId(0),
            tag: "PRE",
            bits: 50,
        });
        t.record(TraceEvent::FrameSent {
            at: SimTime::from_secs(1),
            node: NodeId(0),
            tag: "RTS",
            bits: 50,
        });
        assert_eq!(t.sent_tags(), vec!["PRE", "RTS"]);
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn tee_sink_delivers_to_both_arms_in_order() {
        use std::sync::{Arc, Mutex};

        #[derive(Debug)]
        struct Log(&'static str, Arc<Mutex<Vec<(&'static str, SimTime)>>>);
        impl TraceSink for Log {
            fn record(&mut self, event: TraceEvent) {
                self.1.lock().unwrap().push((self.0, event.at()));
            }
        }

        let log = Arc::new(Mutex::new(Vec::new()));
        let mut tee = TeeSink(Log("a", log.clone()), Log("b", log.clone()));
        tee.record(TraceEvent::Collision {
            at: SimTime::from_secs(1),
            at_node: NodeId(0),
        });
        tee.record(TraceEvent::Collision {
            at: SimTime::from_secs(2),
            at_node: NodeId(0),
        });
        let got = log.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![
                ("a", SimTime::from_secs(1)),
                ("b", SimTime::from_secs(1)),
                ("a", SimTime::from_secs(2)),
                ("b", SimTime::from_secs(2)),
            ]
        );
    }

    #[test]
    fn every_event_reports_its_timestamp() {
        let e = TraceEvent::FaultInjected {
            at: SimTime::from_secs(9),
            kind: "NodeCrash",
        };
        assert_eq!(e.at(), SimTime::from_secs(9));
        let mut c = CountingTrace::new();
        c.record(e);
        assert_eq!(c.faults, 1);
    }

    #[test]
    fn counting_trace_tallies_classes() {
        let mut t = CountingTrace::new();
        t.record(TraceEvent::Collision {
            at: SimTime::ZERO,
            at_node: NodeId(1),
        });
        t.record(TraceEvent::Delivered {
            at: SimTime::ZERO,
            msg: MessageId(0),
            sink: NodeId(2),
            delay_secs: 3.0,
        });
        t.record(TraceEvent::Dropped {
            at: SimTime::ZERO,
            node: NodeId(0),
            msg: MessageId(1),
            reason: DropReason::Overflow,
        });
        assert_eq!(t.collisions, 1);
        assert_eq!(t.deliveries, 1);
        assert_eq!(t.drops, 1);
        assert_eq!(t.sent, 0);
    }
}
