//! Data messages and their identity.

use crate::ftd::Ftd;
use dftmsn_radio::ids::NodeId;
use dftmsn_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Globally unique message identity (copies of the same sensed datum share
/// the id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

/// One copy of a sensed data message.
///
/// The wire size of a data message is a scenario constant
/// (`ScenarioParams::data_bits`), so the struct carries only metadata.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Message identity shared by all copies.
    pub id: MessageId,
    /// The sensor that sensed the datum.
    pub origin: NodeId,
    /// When the datum was sensed.
    pub created: SimTime,
    /// Fault-tolerance degree of *this copy*.
    pub ftd: Ftd,
    /// How many times this copy has been handed over since sensing.
    pub hops: u32,
}

impl Message {
    /// Creates the first copy of a freshly sensed message (FTD 0).
    #[must_use]
    pub fn sensed(id: MessageId, origin: NodeId, created: SimTime) -> Self {
        Message {
            id,
            origin,
            created,
            ftd: Ftd::NEW,
            hops: 0,
        }
    }

    /// A copy of this message with a different FTD (used when handing
    /// copies to receivers, Eq. 2).
    #[must_use]
    pub fn with_ftd(mut self, ftd: Ftd) -> Self {
        self.ftd = ftd;
        self
    }

    /// A copy with the hop counter advanced by one handover.
    #[must_use]
    pub fn hopped(mut self) -> Self {
        self.hops += 1;
        self
    }

    /// Age of the message at `now`.
    #[must_use]
    pub fn age(&self, now: SimTime) -> dftmsn_sim::time::SimDuration {
        now.saturating_since(self.created)
    }
}

/// Hands out unique [`MessageId`]s.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageIdAllocator {
    next: u64,
}

impl MessageIdAllocator {
    /// Creates an allocator starting at id 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh, never-before-issued id.
    pub fn allocate(&mut self) -> MessageId {
        let id = MessageId(self.next);
        self.next += 1;
        id
    }

    /// How many ids have been issued.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.next
    }

    /// Rebuilds an allocator that has already issued `issued` ids, for
    /// checkpointing; the next id handed out is `MessageId(issued)`.
    #[must_use]
    pub fn from_issued(issued: u64) -> Self {
        MessageIdAllocator { next: issued }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftmsn_sim::time::SimDuration;

    #[test]
    fn sensed_messages_start_fresh() {
        let m = Message::sensed(MessageId(1), NodeId(3), SimTime::from_secs(10));
        assert_eq!(m.ftd, Ftd::NEW);
        assert_eq!(m.origin, NodeId(3));
    }

    #[test]
    fn hopped_increments_only_hops() {
        let m = Message::sensed(MessageId(1), NodeId(3), SimTime::from_secs(10));
        assert_eq!(m.hops, 0);
        let h = m.hopped().hopped();
        assert_eq!(h.hops, 2);
        assert_eq!(h.id, m.id);
        assert_eq!(h.ftd, m.ftd);
    }

    #[test]
    fn with_ftd_changes_only_ftd() {
        let m = Message::sensed(MessageId(1), NodeId(3), SimTime::from_secs(10));
        let c = m.with_ftd(Ftd::new(0.5));
        assert_eq!(c.id, m.id);
        assert_eq!(c.origin, m.origin);
        assert_eq!(c.created, m.created);
        assert_eq!(c.ftd, Ftd::new(0.5));
    }

    #[test]
    fn age_is_elapsed_time() {
        let m = Message::sensed(MessageId(0), NodeId(0), SimTime::from_secs(5));
        assert_eq!(m.age(SimTime::from_secs(12)), SimDuration::from_secs(7));
        assert_eq!(m.age(SimTime::from_secs(3)), SimDuration::ZERO);
    }

    #[test]
    fn allocator_ids_are_unique_and_sequential() {
        let mut a = MessageIdAllocator::new();
        let ids: Vec<MessageId> = (0..5).map(|_| a.allocate()).collect();
        assert_eq!(ids, (0..5).map(MessageId).collect::<Vec<_>>());
        assert_eq!(a.issued(), 5);
    }
}
