//! Behavioral adversaries and network-lifetime bookkeeping.
//!
//! The fault subsystem ([`crate::faults`]) models *benign* failures —
//! crashes, dead batteries, lossy links. This module models nodes that are
//! alive and well but *misbehave*: the Byzantine/selfish node classes the
//! fault-tolerant-routing literature evaluates against (DESIGN.md § 10).
//! A [`NodeBehavior`] is assigned per node through the ordinary
//! [`FaultPlan`] seam as a scheduled [`FaultKind::BehaviorChange`] event,
//! so behaviors compose with every other fault, ride the same event queue,
//! and survive checkpoints. An all-honest [`BehaviorTable`] (the default)
//! leaves a run bit-for-bit identical to the pre-adversary engine: every
//! interception in the world is gated on [`BehaviorTable::any`], and no
//! behavior ever draws randomness at protocol time — victim choice happens
//! here, at plan-construction time, from a dedicated seeded fork.
//!
//! [`LifetimeTracker`] rides along because the questions meet: *when does
//! the network die* (first/half/last node death) is the flip side of *who
//! is quietly killing it*.

use crate::faults::{FaultKind, FaultPlan, InvalidFaultPlan};
use crate::params::ScenarioParams;
use dftmsn_radio::ids::NodeId;
use dftmsn_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// How a node plays the protocol. Everything except [`Honest`]
/// (the default) is adversarial.
///
/// [`Honest`]: NodeBehavior::Honest
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeBehavior {
    /// Plays the protocol by the book.
    #[default]
    Honest,
    /// Accepts copies but never forwards anything and never replies CTS:
    /// a free-rider that shrinks the effective relay population.
    Selfish,
    /// Advertises inflated ξ and buffer space in RTS/CTS to attract
    /// copies, then sits on them forever.
    Liar,
    /// Emits fake CTS/ACK frames to capture copies and corrupts every
    /// DATA frame it relays (receivers detect and discard the forgery).
    Forger,
    /// Accepts every copy offered and silently discards it.
    Blackhole,
}

impl NodeBehavior {
    /// Every behavior, in checkpoint-tag order.
    pub const ALL: [NodeBehavior; 5] = [
        NodeBehavior::Honest,
        NodeBehavior::Selfish,
        NodeBehavior::Liar,
        NodeBehavior::Forger,
        NodeBehavior::Blackhole,
    ];

    /// The lowercase spec/display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NodeBehavior::Honest => "honest",
            NodeBehavior::Selfish => "selfish",
            NodeBehavior::Liar => "liar",
            NodeBehavior::Forger => "forger",
            NodeBehavior::Blackhole => "blackhole",
        }
    }

    /// Parses a [`label`](Self::label) back into a behavior.
    #[must_use]
    pub fn from_label(s: &str) -> Option<NodeBehavior> {
        Self::ALL.into_iter().find(|b| b.label() == s)
    }

    /// True for every behavior except [`NodeBehavior::Honest`].
    #[must_use]
    pub fn is_adversarial(self) -> bool {
        self != NodeBehavior::Honest
    }

    /// True when the behavior never initiates a forwarding cycle: the
    /// node wakes, listens as a receiver, and lets its queue rot.
    /// Forgers *do* transmit — corrupting relayed DATA requires relaying.
    #[must_use]
    pub fn withholds(self) -> bool {
        matches!(
            self,
            NodeBehavior::Selfish | NodeBehavior::Liar | NodeBehavior::Blackhole
        )
    }

    /// Stable checkpoint tag.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            NodeBehavior::Honest => 0,
            NodeBehavior::Selfish => 1,
            NodeBehavior::Liar => 2,
            NodeBehavior::Forger => 3,
            NodeBehavior::Blackhole => 4,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    #[must_use]
    pub fn from_tag(t: u8) -> Option<NodeBehavior> {
        Self::ALL.into_iter().find(|b| b.tag() == t)
    }
}

impl std::fmt::Display for NodeBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-node behavior assignments.
///
/// The table tracks how many nodes are currently adversarial so the
/// world's hot paths can skip every behavior branch with one integer
/// compare ([`any`](Self::any)) when the population is all honest — the
/// quiet-run bit-identity contract hangs on that gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviorTable {
    assigned: Vec<NodeBehavior>,
    adversaries: usize,
}

impl BehaviorTable {
    /// An all-honest table for `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        BehaviorTable {
            assigned: vec![NodeBehavior::Honest; n],
            adversaries: 0,
        }
    }

    /// True when at least one node misbehaves.
    #[must_use]
    pub fn any(&self) -> bool {
        self.adversaries != 0
    }

    /// Number of currently adversarial nodes.
    #[must_use]
    pub fn adversary_count(&self) -> usize {
        self.adversaries
    }

    /// The behavior of node `i` (honest for out-of-range indices, so
    /// sinks and probes read naturally).
    #[must_use]
    pub fn get(&self, i: usize) -> NodeBehavior {
        self.assigned.get(i).copied().unwrap_or_default()
    }

    /// Assigns a behavior, keeping the adversary census exact.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range — behaviors target known nodes only.
    pub fn set(&mut self, i: usize, behavior: NodeBehavior) {
        let slot = &mut self.assigned[i];
        self.adversaries -= usize::from(slot.is_adversarial());
        *slot = behavior;
        self.adversaries += usize::from(behavior.is_adversarial());
    }

    /// Iterates the non-honest assignments as `(index, behavior)` pairs,
    /// in index order (the checkpoint encoding).
    pub fn entries(&self) -> impl Iterator<Item = (usize, NodeBehavior)> + '_ {
        self.assigned
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_adversarial())
            .map(|(i, &b)| (i, b))
    }
}

/// Network-lifetime bookkeeping: the alive-sensor census and the classic
/// LEACH-style anchors — first node death (FND), half of nodes dead
/// (HND), last node death (LND).
///
/// The anchors are monotone: a recovery raises the alive count again but
/// never un-rings a bell that already rang.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeTracker {
    sensors: usize,
    alive: usize,
    first_death_secs: Option<f64>,
    half_death_secs: Option<f64>,
    last_death_secs: Option<f64>,
}

impl LifetimeTracker {
    /// A fresh tracker with every sensor alive.
    #[must_use]
    pub fn new(sensors: usize) -> Self {
        LifetimeTracker {
            sensors,
            alive: sensors,
            first_death_secs: None,
            half_death_secs: None,
            last_death_secs: None,
        }
    }

    /// Records a sensor's alive→dead transition at `now_secs`.
    pub fn on_death(&mut self, now_secs: f64) {
        self.alive = self.alive.saturating_sub(1);
        if self.first_death_secs.is_none() {
            self.first_death_secs = Some(now_secs);
        }
        if self.half_death_secs.is_none() && self.alive * 2 <= self.sensors {
            self.half_death_secs = Some(now_secs);
        }
        if self.last_death_secs.is_none() && self.alive == 0 {
            self.last_death_secs = Some(now_secs);
        }
    }

    /// Records a sensor's dead→alive transition (node churn recovery).
    pub fn on_revive(&mut self) {
        self.alive = (self.alive + 1).min(self.sensors);
    }

    /// Sensors currently alive.
    #[must_use]
    pub fn alive(&self) -> usize {
        self.alive
    }

    /// Time of the first sensor death, if any sensor has died.
    #[must_use]
    pub fn first_death_secs(&self) -> Option<f64> {
        self.first_death_secs
    }

    /// Time at which half (or more) of the sensors were dead at once.
    #[must_use]
    pub fn half_death_secs(&self) -> Option<f64> {
        self.half_death_secs
    }

    /// Time at which every sensor was dead at once.
    #[must_use]
    pub fn last_death_secs(&self) -> Option<f64> {
        self.last_death_secs
    }

    /// Restores checkpointed anchors and the alive census (the census is
    /// recomputed from node liveness at resume; the anchors are history
    /// and must travel in the snapshot).
    pub fn restore(
        &mut self,
        alive: usize,
        first_death_secs: Option<f64>,
        half_death_secs: Option<f64>,
        last_death_secs: Option<f64>,
    ) {
        self.alive = alive.min(self.sensors);
        self.first_death_secs = first_death_secs;
        self.half_death_secs = half_death_secs;
        self.last_death_secs = last_death_secs;
    }
}

/// Turns `fraction` of the sensors into `behavior` at `at_secs` seconds
/// into the run, as a schedulable [`FaultPlan`].
///
/// Victim choice depends only on `(scenario, seed)` — a dedicated
/// `"BEHA"` fork, so the same seed corrupts the same nodes under every
/// protocol variant and policy (apples-to-apples sweeps), and plan
/// construction never touches the simulation's own streams.
#[must_use]
pub fn takeover(
    scenario: &ScenarioParams,
    fraction: f64,
    behavior: NodeBehavior,
    at_secs: f64,
    seed: u64,
) -> FaultPlan {
    let fraction = fraction.clamp(0.0, 1.0);
    let victims = ((scenario.sensors as f64 * fraction).round() as usize).min(scenario.sensors);
    let mut rng = SimRng::seed_from(seed).fork(0x4245_4841); // "BEHA"
    let mut ids: Vec<usize> = (0..scenario.sensors).collect();
    rng.shuffle(&mut ids);
    let mut plan = FaultPlan::default();
    for &i in ids.iter().take(victims) {
        plan.push(
            at_secs,
            FaultKind::BehaviorChange {
                node: NodeId(i),
                behavior,
            },
        );
    }
    plan
}

/// Parses the CLI `--behaviors` syntax: `;`-separated directives
///
/// * `none` — nothing (an explicit all-honest population);
/// * `selfish=F`, `liar=F`, `forger=F`, `blackhole=F` — turn fraction
///   `F` of the sensors to that behavior from the start of the run;
/// * any directive may carry an `@T` onset, e.g. `selfish=0.25@500`.
///
/// All directives draw their victims from one seeded shuffle of the
/// sensor population, consumed slice by slice — so `selfish=0.2;liar=0.2`
/// corrupts two *disjoint* 20 % groups, and the combined fractions must
/// not exceed 1.
///
/// # Errors
///
/// Returns [`InvalidFaultPlan`] for unknown behaviors, malformed numbers,
/// fractions outside `[0, 1]` or summing past 1, and bad onset times.
pub fn parse_spec(
    spec: &str,
    scenario: &ScenarioParams,
    seed: u64,
) -> Result<FaultPlan, InvalidFaultPlan> {
    let mut rng = SimRng::seed_from(seed).fork(0x4245_4841); // "BEHA"
    let mut ids: Vec<usize> = (0..scenario.sensors).collect();
    rng.shuffle(&mut ids);
    let mut cursor = 0usize;

    let mut plan = FaultPlan::default();
    for directive in spec.split(';') {
        let directive = directive.trim();
        if directive.is_empty() || directive == "none" {
            continue;
        }
        let (key, value) = directive
            .split_once('=')
            .ok_or_else(|| InvalidFaultPlan(format!("directive '{directive}' has no '='")))?;
        let behavior = NodeBehavior::from_label(key)
            .filter(|b| b.is_adversarial())
            .ok_or_else(|| {
                InvalidFaultPlan(format!("unknown behavior '{key}' in '{directive}'"))
            })?;
        let (frac_s, at_s) = match value.split_once('@') {
            Some((f, t)) => (f, Some(t)),
            None => (value, None),
        };
        let frac: f64 = frac_s.parse().map_err(|_| {
            InvalidFaultPlan(format!("invalid fraction '{frac_s}' in '{directive}'"))
        })?;
        if !frac.is_finite() || !(0.0..=1.0).contains(&frac) {
            return Err(InvalidFaultPlan(format!(
                "behavior fraction {frac} outside [0,1] in '{directive}'"
            )));
        }
        let at_secs: f64 = match at_s {
            Some(t) => t.parse().map_err(|_| {
                InvalidFaultPlan(format!("invalid onset time '{t}' in '{directive}'"))
            })?,
            None => 0.0,
        };
        let count = ((scenario.sensors as f64 * frac).round() as usize).min(scenario.sensors);
        if cursor + count > scenario.sensors {
            return Err(InvalidFaultPlan(format!(
                "behavior fractions exceed the sensor population at '{directive}'"
            )));
        }
        for &i in &ids[cursor..cursor + count] {
            plan.push(
                at_secs,
                FaultKind::BehaviorChange {
                    node: NodeId(i),
                    behavior,
                },
            );
        }
        cursor += count;
    }
    plan.validate(scenario)?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> ScenarioParams {
        ScenarioParams {
            sensors: 20,
            sinks: 2,
            duration_secs: 1000,
            ..ScenarioParams::paper_default()
        }
    }

    #[test]
    fn labels_and_tags_round_trip() {
        for b in NodeBehavior::ALL {
            assert_eq!(NodeBehavior::from_label(b.label()), Some(b));
            assert_eq!(NodeBehavior::from_tag(b.tag()), Some(b));
        }
        assert_eq!(NodeBehavior::from_label("saint"), None);
        assert_eq!(NodeBehavior::from_tag(99), None);
        assert!(!NodeBehavior::Honest.is_adversarial());
        assert!(NodeBehavior::Forger.is_adversarial());
        assert!(!NodeBehavior::Forger.withholds(), "forgers must transmit");
        assert!(NodeBehavior::Selfish.withholds());
    }

    #[test]
    fn table_census_tracks_sets_exactly() {
        let mut t = BehaviorTable::new(10);
        assert!(!t.any());
        t.set(3, NodeBehavior::Selfish);
        t.set(7, NodeBehavior::Liar);
        assert!(t.any());
        assert_eq!(t.adversary_count(), 2);
        t.set(3, NodeBehavior::Blackhole);
        assert_eq!(t.adversary_count(), 2, "reassignment is not double-counted");
        t.set(3, NodeBehavior::Honest);
        assert_eq!(t.adversary_count(), 1);
        assert_eq!(t.get(7), NodeBehavior::Liar);
        assert_eq!(
            t.get(999),
            NodeBehavior::Honest,
            "out of range reads honest"
        );
        let entries: Vec<_> = t.entries().collect();
        assert_eq!(entries, vec![(7, NodeBehavior::Liar)]);
    }

    #[test]
    fn lifetime_anchors_are_monotone() {
        let mut lt = LifetimeTracker::new(4);
        assert_eq!(lt.alive(), 4);
        lt.on_death(10.0);
        assert_eq!(lt.first_death_secs(), Some(10.0));
        assert_eq!(lt.half_death_secs(), None);
        lt.on_death(20.0);
        assert_eq!(
            lt.half_death_secs(),
            Some(20.0),
            "2 of 4 alive is half dead"
        );
        lt.on_revive();
        lt.on_death(30.0);
        assert_eq!(
            lt.half_death_secs(),
            Some(20.0),
            "recovery must not re-arm the HND anchor"
        );
        lt.on_death(40.0);
        lt.on_death(50.0);
        assert_eq!(lt.alive(), 0);
        assert_eq!(lt.last_death_secs(), Some(50.0));
        lt.on_revive();
        assert_eq!(lt.alive(), 1);
        assert_eq!(lt.last_death_secs(), Some(50.0));
    }

    #[test]
    fn takeover_is_deterministic_and_validates() {
        let s = scenario();
        let a = takeover(&s, 0.25, NodeBehavior::Selfish, 0.0, 7);
        let b = takeover(&s, 0.25, NodeBehavior::Selfish, 0.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5, "25% of 20 sensors");
        assert!(a.validate(&s).is_ok());
        let c = takeover(&s, 0.25, NodeBehavior::Selfish, 0.0, 8);
        assert_ne!(a, c, "different seeds pick different victims");
    }

    #[test]
    fn parse_spec_accepts_the_documented_directives() {
        let s = scenario();
        assert!(parse_spec("none", &s, 1).unwrap().is_empty());
        assert!(parse_spec("", &s, 1).unwrap().is_empty());
        let plan = parse_spec("selfish=0.2;liar=0.1@500", &s, 1).unwrap();
        assert_eq!(plan.len(), 6, "4 selfish + 2 liars");
        let mut nodes: Vec<usize> = plan
            .events
            .iter()
            .map(|e| match e.kind {
                FaultKind::BehaviorChange { node, .. } => node.index(),
                other => panic!("unexpected kind {other:?}"),
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 6, "directives draw disjoint victim sets");
        assert!(plan.events.iter().any(|e| {
            matches!(
                e.kind,
                FaultKind::BehaviorChange {
                    behavior: NodeBehavior::Liar,
                    ..
                }
            ) && e.at_secs == 500.0
        }));
    }

    #[test]
    fn parse_spec_rejects_malformed_directives() {
        let s = scenario();
        for bad in [
            "gremlin=0.2",
            "selfish",
            "selfish=x",
            "selfish=1.5",
            "selfish=0.2@x",
            "selfish=0.2@-5",
            "honest=0.5",
            "selfish=0.8;liar=0.8",
        ] {
            assert!(parse_spec(bad, &s, 1).is_err(), "'{bad}' accepted");
        }
    }
}
