//! The simulation world: nodes + mobility + medium + the event loop that
//! drives the two-phase protocol of Sec. 3.2 with the Sec. 4 optimizations.
//!
//! # Event architecture
//!
//! A single deterministic event queue drives everything:
//!
//! * `MobilityTick` — advances every mobility model and rebuilds the
//!   spatial index;
//! * `DataGen(i)` — Poisson sensing at sensor *i*;
//! * `MetricTimeout(i)` — the Δ-timer of Eq. 1;
//! * `TxEnd(i, handle)` — a frame finished; reception outcomes fan out;
//! * `Timer(i, epoch, kind)` — node-local deadlines (wakeups, listen
//!   periods, contention windows, guards). Every node state change bumps
//!   the node's epoch, so a timer whose epoch no longer matches is stale
//!   and ignored; this makes cancellation implicit and cheap.
//! * `Fault(k)` — the *k*-th entry of the installed
//!   [`FaultPlan`] fires: crashes, recoveries,
//!   link degradation, DATA corruption, sink outages. An empty plan
//!   schedules nothing and draws nothing from any random stream, so
//!   fault-free runs stay bit-for-bit identical to pre-fault builds.
//!
//! # Liveness
//!
//! Every non-`Passive`/`Sleeping` state is entered together with a pending
//! timer (or an unguarded `TxEnd`) that eventually ends the cycle, so no
//! node can wedge: see the state table in `node.rs`.

use crate::behavior::{BehaviorTable, LifetimeTracker, NodeBehavior};
use crate::contention::{optimize_cts_window, optimize_tau_max, sigma};
use crate::delivery::DeliveryProb;
use crate::dense::{DeliveredSet, HotNodeTable, LinkDropTable};
use crate::faults::{FaultKind, FaultPlan};
use crate::frames::MacPayload;
use crate::ftd::Ftd;
use crate::message::{Message, MessageId, MessageIdAllocator};
use crate::neighbor::{Candidate, Selection, SelectionScratch};
use crate::node::{MacState, Node, NodeRole, ReceiverCtx, SenderCtx, TxPlan};
use crate::observe::{MetricsRecorder, RunMeta, WorldSnapshot};
use crate::params::{MobilityKind, ProtocolParams, ScenarioParams};
use crate::policy::{
    Confirmed, CopyFate, ForwardingPolicy, MacControls, Policy, PolicySpec, RtsInfo, RxView,
    SelectCtx,
};
use crate::profile::{EventProfile, ExecStats};
use crate::queue::InsertOutcome;
use crate::report::{DeliveryRecord, Lifetime, NodeSummary, RunMetrics, SimReport};
use crate::trace::{DropReason, TeeSink, TraceEvent, TraceSink};
use crate::variants::{ProtocolKind, VariantConfig};
use dftmsn_metrics::histogram::Histogram;
use dftmsn_mobility::geom::{Bounds, Vec2};
use dftmsn_mobility::grid_index::{ShardMap, SpatialGrid};
use dftmsn_mobility::models::{
    MobilityModel, RandomWalk, RandomWaypoint, Stationary, ZoneMobility,
};
use dftmsn_mobility::zones::{ZoneGrid, ZoneId};
use dftmsn_radio::energy::RadioState;
use dftmsn_radio::ids::NodeId;
use dftmsn_radio::medium::{Frame, Medium, TxHandle};
use dftmsn_sim::event::ShardedEventQueue;
use dftmsn_sim::rng::SimRng;
use dftmsn_sim::time::{EpochClock, SimDuration, SimTime};

#[path = "world_ckpt.rs"]
mod ckpt;
pub use ckpt::{CkptError, Resumed, CKPT_MAGIC};

#[path = "world_exec.rs"]
mod exec;

/// Node-local timer kinds; all are epoch-guarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Timer {
    /// Leave `Sleeping`/`Passive` and start a new working cycle.
    WakeUp,
    /// The sender's carrier-sense listening period ended.
    ListenDone,
    /// Time for a qualified receiver to transmit its CTS.
    CtsSlot,
    /// The sender's CTS contention window closed.
    CtsWindowEnd,
    /// Time for a scheduled receiver to transmit its ACK.
    AckSlot,
    /// The sender's ACK collection window closed.
    AckWindowEnd,
    /// Deadline guard for receiver-side waiting states and passive
    /// windows; ends the cycle as inactive.
    Guard,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    MobilityTick,
    DataGen(NodeId),
    MetricTimeout(NodeId),
    TxEnd(NodeId, TxHandle),
    Timer(NodeId, u64, Timer),
    /// Index into the installed fault plan's event list.
    Fault(usize),
    /// A window boundary of the attached
    /// [`MetricsRecorder`]: sample the
    /// world state. Only scheduled when an observer is attached, and the
    /// handler reads state without drawing randomness, so unobserved runs
    /// are bit-for-bit unaffected.
    ObserveTick,
}

/// Labels for [`EventProfile`] rows, one per dispatchable event shape.
/// Stale epoch-guarded timers get their own row (`"Timer:stale"`) because
/// implicit cancellation makes them one of the highest-count kinds and
/// folding them into their nominal kind would skew every timer mean.
const EVENT_KIND_LABELS: [&str; 14] = [
    "MobilityTick",
    "DataGen",
    "MetricTimeout",
    "TxEnd",
    "Timer:WakeUp",
    "Timer:ListenDone",
    "Timer:CtsSlot",
    "Timer:CtsWindowEnd",
    "Timer:AckSlot",
    "Timer:AckWindowEnd",
    "Timer:Guard",
    "Timer:stale",
    "Fault",
    "ObserveTick",
];

/// Reusable working memory for the per-cycle hot paths.
///
/// Every buffer is cleared before use; the pools recycle the vectors that
/// used to be freshly allocated each protocol cycle (CTS candidate lists,
/// ACK lists, selections, SCHEDULE payloads), so once capacities settle the
/// steady-state multicast path performs no heap allocation.
#[derive(Debug, Default)]
struct CycleScratch {
    /// Spatial-query output: node indices in range.
    idx: Vec<usize>,
    /// The same set as `NodeId`s, fed to the medium.
    ids: Vec<NodeId>,
    /// Unfiltered ring-neighbourhood superset pending materialization.
    mat: Vec<usize>,
    /// Receiver-selection working memory.
    sel: SelectionScratch,
    /// ξ of the receivers whose ACK arrived (Eqs. 1/3 inputs).
    confirmed_xis: Vec<f64>,
    /// Retired `Selection`s awaiting reuse.
    selections: Vec<Selection>,
    /// Retired CTS candidate lists awaiting reuse.
    candidate_bufs: Vec<Vec<Candidate>>,
    /// Retired ACK lists awaiting reuse.
    acked_bufs: Vec<Vec<NodeId>>,
    /// Retired SCHEDULE receiver lists awaiting reuse.
    schedule_bufs: Vec<Vec<(NodeId, f64)>>,
}

impl CycleScratch {
    /// Builds a scratch pool with every buffer pre-allocated in one
    /// up-front pass, sized for a typical neighbourhood of `k` nodes.
    /// Concurrent multicasts can outnumber the seeded pools — `take_*`
    /// then falls back to a fresh allocation that is recycled like the
    /// seeded ones — but in the steady state every cycle runs entirely
    /// on buffers allocated here, so the hot path never touches the
    /// allocator (`#![forbid(unsafe_code)]` rules out a true bump arena;
    /// grouping all allocations at construction is the safe equivalent).
    fn seeded(k: usize) -> Self {
        const POOL: usize = 8;
        let mut s = CycleScratch::default();
        s.idx.reserve(k);
        s.ids.reserve(k);
        s.mat.reserve(4 * k);
        s.confirmed_xis.reserve(k);
        for _ in 0..POOL {
            s.selections.push(Selection::default());
            s.candidate_bufs.push(Vec::with_capacity(k));
            s.acked_bufs.push(Vec::with_capacity(k));
            s.schedule_bufs.push(Vec::with_capacity(k));
        }
        s
    }

    fn take_selection(&mut self) -> Selection {
        self.selections.pop().unwrap_or_default()
    }

    fn take_candidates(&mut self) -> Vec<Candidate> {
        self.candidate_bufs.pop().unwrap_or_default()
    }

    fn take_acked(&mut self) -> Vec<NodeId> {
        self.acked_bufs.pop().unwrap_or_default()
    }

    fn take_schedule(&mut self) -> Vec<(NodeId, f64)> {
        self.schedule_bufs.pop().unwrap_or_default()
    }

    fn recycle_selection(&mut self, mut s: Selection) {
        s.clear();
        self.selections.push(s);
    }

    fn recycle_schedule(&mut self, mut v: Vec<(NodeId, f64)>) {
        v.clear();
        self.schedule_bufs.push(v);
    }

    fn recycle_sender_ctx(&mut self, ctx: SenderCtx) {
        let SenderCtx {
            mut candidates,
            mut acked,
            selection,
            ..
        } = ctx;
        candidates.clear();
        self.candidate_bufs.push(candidates);
        acked.clear();
        self.acked_bufs.push(acked);
        if let Some(s) = selection {
            self.recycle_selection(s);
        }
    }
}

/// Precomputed frame timings.
#[derive(Debug, Clone, Copy)]
struct Timing {
    ctrl: SimDuration,
    data: SimDuration,
    gap: SimDuration,
    listen_slot: SimDuration,
    cts_slot: SimDuration,
    ack_slot: SimDuration,
}

impl Timing {
    fn new(scenario: &ScenarioParams, protocol: &ProtocolParams) -> Self {
        let ctrl = scenario.channel.airtime(scenario.control_bits);
        let data = scenario.channel.airtime(scenario.data_bits);
        let gap = SimDuration::from_secs_f64(protocol.proc_gap_secs);
        Timing {
            ctrl,
            data,
            gap,
            listen_slot: ctrl,
            cts_slot: ctrl + gap,
            ack_slot: ctrl + gap,
        }
    }

    /// Conservative duration of the remainder of an exchange overheard at
    /// the RTS: full CTS window + schedule + data + a few ACK slots.
    fn nav_after_rts(&self, window_slots: u32) -> SimDuration {
        self.cts_slot * u64::from(window_slots)
            + self.ctrl
            + self.data
            + self.ack_slot * 3
            + self.gap * 4
    }

    /// NAV for a CTS/SCHEDULE overheard mid-exchange.
    fn nav_overheard(&self) -> SimDuration {
        self.ctrl + self.data + self.ack_slot * 3 + self.gap * 4
    }
}

/// How node motion is advanced through simulated time.
///
/// The default [`Ticked`](MobilityMode::Ticked) mode advances every
/// mobility model on every global `MobilityTick` from one shared RNG
/// stream — O(N) work per tick regardless of how many nodes are asleep.
/// It is the mode every existing golden baseline was recorded under and
/// stays bit-for-bit unchanged by this enum's existence.
///
/// [`Lazy`](MobilityMode::Lazy) gives each node its own forked RNG stream
/// and extrapolates its trajectory in closed form
/// ([`MobilityModel::advance_span`]) only when the position is actually
/// needed: on wake-up, on a spatial query, or at a low-rate staleness
/// sweep that bounds how far any position lags. Sleeping nodes cost
/// nothing while they sleep. Spatial queries run at an expanded radius
/// (`range + v_max · sweep_period`) so a node whose stored position is
/// stale can never be missed; candidates are caught up and re-filtered at
/// the true range before the protocol sees them.
///
/// The two modes sample the same mobility distributions but consume
/// randomness in different orders, so `Lazy` runs re-baseline: they are
/// deterministic per seed (own golden test) but not bit-identical to
/// `Ticked` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MobilityMode {
    /// Advance all models every `mobility_tick_secs` (the default; all
    /// pre-existing baselines).
    #[default]
    Ticked,
    /// Per-node RNG streams + on-demand closed-form catch-up.
    Lazy,
}

/// Bookkeeping for [`MobilityMode::Lazy`].
#[derive(Debug)]
struct LazyMobility {
    /// Per-node mobility streams (forked from the shared mobility RNG),
    /// so catching node *i* up never perturbs node *j*'s trajectory.
    rngs: Vec<SimRng>,
    /// The sim-time each node's position was last advanced to.
    synced_at: Vec<SimTime>,
    /// Staleness bound: a low-rate sweep catches every node up at this
    /// period, so no stored position lags truth by more than it.
    sync_every: SimDuration,
    /// Spatial-query radius inflated by the worst-case staleness drift
    /// (`range + v_max · sync_every`); also the grid cell size.
    query_radius: f64,
    /// The speed bound used to derive `query_radius`, kept for the
    /// per-candidate drift pruning in `fill_neighbors`.
    vmax: f64,
}

/// SoA coast ledger for [`MobilityMode::Ticked`].
///
/// Each node holds a *coast lease* from its model
/// ([`MobilityModel::tick_grant`]): for `left` more ticks the node's
/// position moves by exactly `disp` per tick with no RNG draw and no
/// boundary interaction, so the per-tick sweep applies the displacement to
/// the dense `positions` array and skips the model entirely — three
/// contiguous array lanes instead of a virtual call into a heap-scattered
/// model per node per tick. Leases are additionally clipped to the
/// spatial-grid cell margin so a coasting node can never invalidate its
/// grid bucket. `pending` counts coasted ticks not yet reported back; a
/// settle ([`MobilityModel::tick_settle`]) replays them bit-identically
/// before the model is advanced, saved, or re-granted, which is what keeps
/// ticked goldens and checkpoints byte-exact.
/// Slots in the coast due-wheel; windows are clipped to `COAST_WHEEL − 2`
/// ticks so a rescheduled node can never land back in the slot being
/// drained.
const COAST_WHEEL: usize = 256;

#[derive(Debug)]
struct TickedCoast {
    /// Per-tick displacement while the lease is live.
    disp: Vec<Vec2>,
    /// Lease ticks remaining beyond the node's current wheel window — the
    /// part of the model's grant held back by the grid-cell clip and the
    /// wheel horizon.
    model_left: Vec<u32>,
    /// Coast steps applied to `positions[j]` but not yet settled into
    /// model `j` ([`MobilityModel::tick_settle`]'s replay count).
    applied: Vec<u32>,
    /// The tick index `positions[j]` reflects. A coasting node's dense
    /// position is allowed to lag the clock; [`materialize`]
    /// (TickedCoast::materialize) replays the missing steps on demand.
    anchor: Vec<u64>,
    /// `wheel[t % COAST_WHEEL]` lists the nodes due for per-node handling
    /// at tick `t`: lease expiry (settle + advance + re-grant) or cell
    /// recheck. Nodes mid-window appear in no slot and cost nothing per
    /// tick — this is what makes the tick handler O(due), not O(n).
    wheel: Vec<Vec<u32>>,
    /// Mobility ticks processed so far (the wheel's clock).
    tick_no: u64,
}

impl TickedCoast {
    fn new(n: usize) -> Self {
        let mut wheel = vec![Vec::new(); COAST_WHEEL];
        // Everyone starts with no lease: all due on the first tick.
        wheel[1 % COAST_WHEEL] = (0..n as u32).collect();
        TickedCoast {
            disp: vec![Vec2::ZERO; n],
            model_left: vec![0; n],
            applied: vec![0; n],
            anchor: vec![0; n],
            wheel,
            tick_no: 0,
        }
    }

    /// Replays node `j`'s outstanding coast steps so `positions[j]`
    /// reflects tick `to_tick`. Each replayed step is the identical
    /// `+= disp` the old per-tick sweep performed, in the same order, so
    /// the resulting bit pattern is the same — batching only moves the
    /// work to the moment the position is actually read.
    #[inline]
    fn materialize(&mut self, j: usize, to_tick: u64, positions: &mut [Vec2]) {
        let k = (to_tick - self.anchor[j]) as u32;
        if k == 0 {
            return;
        }
        let d = self.disp[j];
        let mut p = positions[j];
        for _ in 0..k {
            p += d;
        }
        positions[j] = p;
        self.anchor[j] = to_tick;
        self.applied[j] += k;
    }

    /// Schedules node `j`'s next due visit `window + 1` ticks from now and
    /// returns the window actually booked (clipped to the wheel horizon).
    #[inline]
    fn book(&mut self, j: usize, window: u32) -> u32 {
        let window = window.min(COAST_WHEEL as u32 - 2);
        let slot = ((self.tick_no + u64::from(window) + 1) % COAST_WHEEL as u64) as usize;
        self.wheel[slot].push(j as u32);
        window
    }
}

/// Per-node contact cache for [`MobilityMode::Ticked`] neighbour queries —
/// pure memoization of [`SpatialGrid::query_within`].
///
/// A miss queries the grid at `range + margin_m` and parks the candidate
/// indices in a shared arena; a hit re-filters that superset at the true
/// range against *current* positions. The superset stays exact while the
/// worst-case relative drift since it was taken cannot exceed the margin:
/// every position moves at most `v_max · dt` per mobility tick, so after
/// elapsed time `e` the sender and a candidate have closed at most
/// `2 · v_max · (e + dt)` metres (the `+ dt` absorbs tick quantization).
/// [`ContactCache::valid_for`] is derived by inverting that bound, which
/// makes a hit's output bit-identical to a fresh query: membership is
/// re-decided by the same `distance_sq ≤ range²` predicate on the same
/// positions, and the arena preserves the grid's ascending index order.
///
/// Ticked mode only: a lazy-mode query *advances* candidate trajectories
/// (RNG draws, position writes), so caching it would change when those
/// side effects fire and split `advance_span` calls differently —
/// ULP-level divergence the lazy goldens would catch.
#[derive(Debug)]
struct ContactCache {
    /// Shared storage for every node's cached candidate set.
    arena: Vec<u32>,
    /// Per-node: sim-time the cached superset was queried.
    at: Vec<SimTime>,
    /// Per-node: offset of the cached slice in `arena`.
    start: Vec<u32>,
    /// Per-node: length of the cached slice.
    len: Vec<u32>,
    /// Per-node: generation stamp; stale entries are dropped wholesale by
    /// bumping `arena_gen` instead of walking the arena.
    gen: Vec<u32>,
    /// Current arena generation; entries from older generations are dead.
    arena_gen: u32,
    /// Extra query radius that buys the validity window (metres).
    margin_m: f64,
    /// How long a cached superset stays exact (`margin / (2·v_max)` minus
    /// one tick of quantization slack).
    valid_for: SimDuration,
    /// Arena size that triggers a wholesale generation reset.
    cap: usize,
    /// Hits / misses under the current settings (perf telemetry only).
    hits: u64,
    misses: u64,
}

impl ContactCache {
    fn new(n: usize, vmax: f64, tick_secs: f64) -> Self {
        // Sized so one cached superset typically survives a whole
        // RTS→CTS→SCHEDULE→DATA→ACK exchange (~0.1 s of sim-time): a
        // 0.25 s window at the paper's v_max = 5 m/s costs 2.75 m of
        // extra query radius on a 10 m range.
        const TARGET_VALID_SECS: f64 = 0.25;
        let margin_m = 2.0 * vmax * (TARGET_VALID_SECS + tick_secs);
        ContactCache {
            arena: Vec::new(),
            at: vec![SimTime::ZERO; n],
            start: vec![0; n],
            len: vec![0; n],
            gen: vec![0; n],
            arena_gen: 1,
            margin_m,
            valid_for: SimDuration::from_secs_f64(TARGET_VALID_SECS),
            cap: (8 * n).max(1024),
            hits: 0,
            misses: 0,
        }
    }
}

/// Whole ticks of `disp` a node can take before its accumulated movement
/// could reach `margin` metres along either axis (the spatial-grid cell
/// clip for a coast lease). The guard band absorbs accumulated f64
/// addition error, mirroring the models' own lease maths.
fn cell_coast_ticks(margin: f64, disp: Vec2) -> u32 {
    const GUARD_M: f64 = 1e-6;
    let step = disp.x.abs().max(disp.y.abs());
    if step <= 0.0 {
        return u32::MAX;
    }
    let k = ((margin - GUARD_M) / step).floor();
    if k < 1.0 {
        0
    } else if k >= u32::MAX as f64 {
        u32::MAX
    } else {
        k as u32
    }
}

/// Runtime state of the sharded engine (DESIGN.md § 8).
///
/// A pure execution knob: the shard count is never serialized — checkpoints
/// capture the logical event list and `dftmsn-ckpt/1` stays byte-stable —
/// and per the event queue's lane-placement contract the *results* of a run
/// are bit-identical for every shard count, so everything here is
/// locality bookkeeping and telemetry.
#[derive(Debug)]
struct ShardRuntime {
    /// Lane/worker count; 1 = the classic single-shard engine.
    count: usize,
    /// Column-band partition of the spatial grid (`None` when `count` is 1).
    map: Option<ShardMap>,
    /// Node → owning shard, refreshed at every epoch barrier. Empty when
    /// unsharded; events for unknown nodes route to lane 0.
    node_shard: Vec<u8>,
    /// Boundary-band half-width in metres: radio range plus the worst-case
    /// approach (`2 · v_max · lookahead`) two nodes can close within one
    /// epoch.
    band_m: f64,
    /// Conservative-lookahead barrier cadence, derived from `v_max`.
    epoch: EpochClock,
    /// The next barrier instant.
    next_barrier: SimTime,
    /// Barriers taken so far (telemetry).
    barriers: u64,
    /// Nodes inside a boundary band at the last barrier (telemetry).
    boundary_nodes: usize,
}

impl ShardRuntime {
    fn single() -> Self {
        ShardRuntime {
            count: 1,
            map: None,
            node_shard: Vec::new(),
            band_m: 0.0,
            epoch: EpochClock::derive(0.0, 0.0),
            next_barrier: SimTime::MAX,
            barriers: 0,
            boundary_nodes: 0,
        }
    }
}

/// Telemetry snapshot of the sharded engine, from
/// [`Simulation::shard_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Active shard count (1 = unsharded).
    pub shards: usize,
    /// Epoch barriers taken so far.
    pub barriers: u64,
    /// Frames whose audible set spanned more than one shard (mirror
    /// insertions in the medium's per-shard active lists).
    pub cross_shard_frames: u64,
    /// Nodes inside a boundary band at the most recent barrier.
    pub boundary_nodes: usize,
}

/// Lane an event is filed into: node-addressed events follow their node's
/// shard, global events (mobility, faults, observation) live on lane 0.
/// Pure locality — the queue's pop order is lane-independent.
fn event_lane(node_shard: &[u8], ev: &Event) -> usize {
    match *ev {
        Event::DataGen(i) | Event::MetricTimeout(i) | Event::TxEnd(i, _) => {
            node_shard.get(i.index()).map_or(0, |&s| s as usize)
        }
        Event::Timer(i, _, _) => node_shard.get(i.index()).map_or(0, |&s| s as usize),
        Event::MobilityTick | Event::Fault(_) | Event::ObserveTick => 0,
    }
}

/// A configured, runnable simulation.
///
/// Construct one through [`Simulation::builder`]; the builder is the
/// single path that can attach fault plans, trace sinks and a
/// [`MetricsRecorder`] observer.
///
/// # Examples
///
/// ```
/// use dftmsn_core::params::ScenarioParams;
/// use dftmsn_core::variants::ProtocolKind;
/// use dftmsn_core::world::Simulation;
///
/// let params = ScenarioParams::smoke_test().with_duration_secs(200);
/// let report = Simulation::builder(params, ProtocolKind::Opt)
///     .seed(42)
///     .build()
///     .run();
/// assert!(report.generated > 0);
/// ```
#[derive(Debug)]
pub struct Simulation {
    scenario: ScenarioParams,
    protocol: ProtocolParams,
    config: VariantConfig,
    /// The forwarding policy: every protocol decision point dispatches
    /// through this sealed enum (DESIGN.md § 9).
    policy: Policy,
    /// The policy's MAC-adaptation knobs, cached so the per-event hot
    /// paths read plain bools instead of dispatching.
    mac: MacControls,
    seed: u64,
    timing: Timing,
    end: SimTime,

    events: ShardedEventQueue<Event>,
    /// Spatial sharding runtime; see [`ShardStats`] and DESIGN.md § 8.
    shards: ShardRuntime,
    nodes: Vec<Node>,
    /// Struct-of-arrays mirror of the hottest per-node fields (epoch, MAC
    /// state tag, ξ); refreshed via [`Self::sync_hot`] after every
    /// mutation, asserted against the canonical fields in debug builds.
    hot: HotNodeTable,
    mobility: Vec<Box<dyn MobilityModel>>,
    mobility_rng: SimRng,
    /// `Some` when running in [`MobilityMode::Lazy`].
    lazy: Option<LazyMobility>,
    /// `Some` when running in [`MobilityMode::Ticked`].
    coast: Option<TickedCoast>,
    /// `Some` when running in [`MobilityMode::Ticked`]: memoized
    /// neighbour supersets keyed by a worst-case-drift validity window.
    contacts: Option<ContactCache>,
    positions: Vec<Vec2>,
    grid: SpatialGrid,
    medium: Medium<MacPayload>,

    ids: MessageIdAllocator,
    delivered_ids: DeliveredSet,
    metrics: RunMetrics,
    deliveries: Vec<DeliveryRecord>,

    scratch: CycleScratch,
    trace: Option<Box<dyn TraceSink>>,
    /// The attached metrics recorder, if any. Trace events reach it through
    /// `trace` (composed with any user sink by the builder); this handle
    /// only drives window-boundary snapshots and run finalization.
    observer: Option<MetricsRecorder>,
    /// `ObserveTick`s handled so far. Subtracted from the queue's popped
    /// count in the report, so `events_processed` measures simulation work
    /// and an attached observer leaves the report bit-for-bit unchanged.
    observe_ticks: u64,

    fault_plan: FaultPlan,
    /// Dedicated stream for fault coin flips; forked from the root seed but
    /// never drawn from unless a fault makes a probabilistic decision, so an
    /// empty plan perturbs nothing.
    fault_rng: SimRng,
    /// Per-frame drop probability applied to every link without a
    /// per-pair entry.
    global_link_drop: f64,
    /// Per-pair drop probabilities (dense, lazily allocated).
    link_drop: LinkDropTable,
    /// True once any fault event has fired (gates the
    /// `deliveries_despite_faults` counter).
    fault_regime: bool,
    /// Per-node behavior assignments (DESIGN.md § 10). All-honest unless a
    /// [`FaultKind::BehaviorChange`] fires; every adversarial check is
    /// gated on [`BehaviorTable::any`] so quiet runs pay one integer
    /// compare per site and stay bit-identical to the goldens.
    behaviors: BehaviorTable,
    /// Network-lifetime census: alive sensor count plus FND/HND/LND death
    /// anchors, updated by [`crash_node`](Self::crash_node) and
    /// [`recover_node`](Self::recover_node).
    lifetime: LifetimeTracker,

    /// Per-event-kind wall-time counters, populated only by
    /// [`run_profiled`](Self::run_profiled). `None` costs one predictable
    /// branch per event; never serialized (telemetry, not state).
    profile: Option<Box<EventProfile>>,

    /// Within-epoch parallel executor runtime (worker count, interaction-
    /// quarantine scratch, interval telemetry). Like the shard count, an
    /// execution knob: never serialized, and results are bit-identical
    /// for every thread count (DESIGN.md § 8).
    par: exec::ParRuntime,
    /// Installed only while the parallel executor's sequential commit
    /// lane is running an interval: diverts [`sched_at`](Self::sched_at)
    /// and [`sched_after`](Self::sched_after) into the interval's spawn
    /// log instead of the global queue. Always `None` between
    /// [`advance`](Self::advance) calls.
    seq_lane: Option<Box<exec::SeqLane>>,
}

/// Configures and constructs a [`Simulation`].
///
/// Created by [`Simulation::builder`]. Every optional attachment — custom
/// protocol constants, a seed, a [`FaultPlan`], a [`TraceSink`], a
/// [`MetricsRecorder`] — hangs off this
/// one type, so the `Simulation` constructor surface stays put.
///
/// # Examples
///
/// ```
/// use dftmsn_core::faults::FaultPlan;
/// use dftmsn_core::params::ScenarioParams;
/// use dftmsn_core::variants::ProtocolKind;
/// use dftmsn_core::world::Simulation;
///
/// let scenario = ScenarioParams::smoke_test().with_duration_secs(300);
/// let plan = FaultPlan::node_failures(&scenario, 0.2, None, 7);
/// let report = Simulation::builder(scenario, ProtocolKind::Opt)
///     .seed(7)
///     .faults(plan)
///     .build()
///     .run();
/// assert!(report.faults.crashes > 0);
/// ```
#[derive(Debug)]
#[must_use = "call build() to obtain the Simulation"]
pub struct SimulationBuilder {
    scenario: ScenarioParams,
    config: VariantConfig,
    protocol: ProtocolParams,
    policy: PolicySpec,
    seed: u64,
    mobility_mode: MobilityMode,
    shards: usize,
    threads: usize,
    contact_cache: bool,
    faults: Option<FaultPlan>,
    trace: Option<Box<dyn TraceSink>>,
    observer: Option<MetricsRecorder>,
}

impl SimulationBuilder {
    /// Overrides the protocol constants (default:
    /// [`ProtocolParams::paper_default`]).
    pub fn protocol(mut self, protocol: ProtocolParams) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the root seed every random stream forks from (default: 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the forwarding policy (default: [`PolicySpec::Builtin`],
    /// i.e. whatever variant the run's config names). A non-builtin
    /// policy supplies its own receiver-qualification, selection, copy
    /// bookkeeping and MAC-adaptation rules; see [`crate::policy`].
    pub fn policy(mut self, spec: PolicySpec) -> Self {
        self.policy = spec;
        self
    }

    /// Selects how mobility is advanced (default:
    /// [`MobilityMode::Ticked`], the mode of every pre-existing golden
    /// baseline). [`MobilityMode::Lazy`] advances only the nodes whose
    /// positions are actually consulted — same distributions, different
    /// randomness order, so lazy runs carry their own baselines.
    pub fn mobility_mode(mut self, mode: MobilityMode) -> Self {
        self.mobility_mode = mode;
        self
    }

    /// Sets the spatial shard count (default: 1, clamped to 1..=64 and to
    /// the grid's column count). Sharding is a pure execution knob: for
    /// any shard count the run's results are bit-identical to the
    /// single-shard engine's — the determinism contract DESIGN.md § 8
    /// documents and `tests/sharded_engine.rs` enforces.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the within-epoch parallel executor's worker count (default:
    /// 1, fully sequential; clamped to 1..=64). Another pure execution
    /// knob: results are bit-identical for every thread count. Ignored —
    /// the run stays sequential — while a trace sink, an observer, or
    /// the profiler is attached, since those watch individual events.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the ticked-mode contact cache (default: on).
    /// Disabling it forces every neighbour query down the exact uncached
    /// path; results must be bit-identical either way. This is a
    /// differential-testing knob, not a tuning surface.
    pub fn contact_cache(mut self, on: bool) -> Self {
        self.contact_cache = on;
        self
    }

    /// Installs a fault plan, scheduled as first-class event-queue entries.
    /// An empty plan schedules nothing and leaves the run bit-for-bit
    /// identical to a fault-free one.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attaches a trace sink observing MAC-level events during the run.
    ///
    /// Use a [`crate::trace::SharedTrace`] clone to read the trace back
    /// after [`Simulation::run`] consumed the sink. Composes with
    /// [`observe`](Self::observe): the recorder sees each event first, then
    /// this sink.
    pub fn trace<S: TraceSink + 'static>(mut self, sink: S) -> Self {
        self.trace = Some(Box::new(sink));
        self
    }

    /// Attaches a windowed metrics recorder. The simulation feeds it every
    /// trace event, samples a
    /// [`WorldSnapshot`] at each window
    /// boundary, and finalizes it (totals line, flush) when the run ends.
    ///
    /// Keep a clone of the recorder to read the series back afterwards.
    pub fn observe(mut self, recorder: MetricsRecorder) -> Self {
        self.observer = Some(recorder);
        self
    }

    /// Validates everything and constructs the simulation.
    ///
    /// # Panics
    ///
    /// Panics if the scenario, protocol constants or fault plan fail
    /// validation.
    #[must_use]
    pub fn build(self) -> Simulation {
        let mut sim = Simulation::construct(
            self.scenario,
            self.protocol,
            self.config,
            self.seed,
            self.mobility_mode,
        );
        sim.install_policy(self.policy);
        if let Some(plan) = self.faults {
            sim.install_fault_plan(plan);
        }
        if !self.contact_cache {
            sim.contacts = None;
        }
        if let Some(recorder) = self.observer {
            recorder.begin_run(RunMeta {
                protocol: sim.policy.label().to_owned(),
                seed: sim.seed,
                duration_secs: sim.scenario.duration_secs as f64,
                sensors: sim.scenario.sensors,
                sinks: sim.scenario.sinks,
            });
            sim.trace = Some(match self.trace {
                Some(sink) => Box::new(TeeSink(recorder.clone(), sink)),
                None => Box::new(recorder.clone()),
            });
            let window = SimDuration::from_secs_f64(recorder.window_secs());
            let first = SimTime::ZERO + window;
            if first <= sim.end && !window.is_zero() {
                sim.events.schedule_at(first, Event::ObserveTick);
            }
            sim.observer = Some(recorder);
        } else {
            sim.trace = self.trace;
        }
        if self.shards > 1 {
            sim.set_shards(self.shards);
        }
        if self.threads > 1 {
            sim.set_threads(self.threads);
        }
        sim
    }
}

impl Simulation {
    /// Starts configuring a simulation of the given scenario and variant.
    /// Accepts either a [`ProtocolKind`] or a custom [`VariantConfig`]
    /// (for ablations).
    pub fn builder(
        scenario: ScenarioParams,
        config: impl Into<VariantConfig>,
    ) -> SimulationBuilder {
        SimulationBuilder {
            scenario,
            config: config.into(),
            protocol: ProtocolParams::paper_default(),
            policy: PolicySpec::Builtin,
            seed: 1,
            mobility_mode: MobilityMode::default(),
            shards: 1,
            threads: 1,
            contact_cache: true,
            faults: None,
            trace: None,
            observer: None,
        }
    }

    /// Builds and validates the simulation world (no optional attachments).
    fn construct(
        scenario: ScenarioParams,
        protocol: ProtocolParams,
        config: VariantConfig,
        seed: u64,
        mode: MobilityMode,
    ) -> Self {
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
        protocol
            .validate()
            .unwrap_or_else(|e| panic!("invalid protocol params: {e}"));

        let root = SimRng::seed_from(seed);
        let mut mobility_rng = root.fork(0x4d4f_4249); // "MOBI"
        let fault_rng = root.fork(0x4641_554C); // "FAUL"
        let area = Bounds::new(scenario.area_width_m, scenario.area_height_m);
        let zones = ZoneGrid::new(area, scenario.zone_cols, scenario.zone_rows);
        let n = scenario.node_count();

        // Lazy mode forks one mobility stream per node, so catching one
        // node up never consumes another's randomness; the model is also
        // *placed* from its own stream, which is why lazy runs re-baseline.
        // In Ticked mode `own` is an unused placeholder (nothing is drawn
        // from it), keeping the shared-stream draw order bit-identical to
        // every pre-existing baseline.
        let lazy_mode = mode == MobilityMode::Lazy;
        let mut nodes = Vec::with_capacity(n);
        let mut mobility: Vec<Box<dyn MobilityModel>> = Vec::with_capacity(n);
        let mut lazy_rngs: Vec<SimRng> = Vec::with_capacity(if lazy_mode { n } else { 0 });
        for i in 0..scenario.sensors {
            let mut own = if lazy_mode {
                mobility_rng.fork(i as u64)
            } else {
                SimRng::seed_from(0)
            };
            let rng: &mut SimRng = if lazy_mode {
                &mut own
            } else {
                &mut mobility_rng
            };
            let model: Box<dyn MobilityModel> = match scenario.mobility {
                MobilityKind::ZoneBased => Box::new(ZoneMobility::new(
                    zones.clone(),
                    ZoneId(i % zones.zone_count()),
                    scenario.speed_min_mps,
                    scenario.speed_max_mps,
                    scenario.zone_exit_prob,
                    rng,
                )),
                MobilityKind::RandomWaypoint => Box::new(RandomWaypoint::new(
                    area,
                    scenario.speed_min_mps.max(0.1),
                    scenario.speed_max_mps.max(0.2),
                    0.0,
                    rng,
                )),
                MobilityKind::RandomWalk => Box::new(RandomWalk::new(
                    area,
                    scenario.speed_min_mps,
                    scenario.speed_max_mps,
                    20.0,
                    rng,
                )),
            };
            if lazy_mode {
                lazy_rngs.push(own);
            }
            mobility.push(model);
            nodes.push(Node::new(
                NodeId(i),
                NodeRole::Sensor,
                scenario.queue_capacity,
                protocol.history_window_s,
                root.fork(1000 + i as u64),
            ));
        }
        // Sinks sit at "strategic locations" (zone centres spread evenly
        // across the grid); the last `mobile_sinks` of them are carried by
        // people instead and move like sensors (paper Sec. 1).
        for j in 0..scenario.sinks {
            let zone = ZoneId(((2 * j + 1) * zones.zone_count()) / (2 * scenario.sinks));
            let i = scenario.sensors + j;
            let mut own = if lazy_mode {
                mobility_rng.fork(i as u64)
            } else {
                SimRng::seed_from(0)
            };
            if j >= scenario.sinks - scenario.mobile_sinks {
                let rng: &mut SimRng = if lazy_mode {
                    &mut own
                } else {
                    &mut mobility_rng
                };
                mobility.push(Box::new(ZoneMobility::new(
                    zones.clone(),
                    zone,
                    scenario.speed_min_mps,
                    scenario.speed_max_mps,
                    scenario.zone_exit_prob,
                    rng,
                )));
            } else {
                mobility.push(Box::new(Stationary::new(zones.zone_center(zone))));
            }
            if lazy_mode {
                // Stationary sinks never draw, but the slot keeps per-node
                // stream indexing aligned.
                lazy_rngs.push(own);
            }
            nodes.push(Node::new(
                NodeId(i),
                NodeRole::Sink,
                scenario.queue_capacity,
                protocol.history_window_s,
                root.fork(1000 + i as u64),
            ));
        }

        let lazy = match mode {
            MobilityMode::Ticked => None,
            MobilityMode::Lazy => {
                let vmax = scenario.speed_max_mps.max(0.2);
                let sync_every = (scenario.channel.range_m / vmax)
                    .clamp(scenario.mobility_tick_secs.min(30.0), 30.0);
                Some(LazyMobility {
                    rngs: lazy_rngs,
                    synced_at: vec![SimTime::ZERO; n],
                    sync_every: SimDuration::from_secs_f64(sync_every),
                    query_radius: scenario.channel.range_m + vmax * sync_every,
                    vmax,
                })
            }
        };

        let coast = match mode {
            MobilityMode::Ticked => Some(TickedCoast::new(n)),
            MobilityMode::Lazy => None,
        };
        let contacts = match mode {
            MobilityMode::Ticked => Some(ContactCache::new(
                n,
                scenario.speed_max_mps.max(0.2),
                scenario.mobility_tick_secs,
            )),
            MobilityMode::Lazy => None,
        };

        let positions: Vec<Vec2> = mobility.iter().map(|m| m.position()).collect();
        // Cell size is decoupled from every query radius (the grid scans
        // ⌈r/cell⌉ rings), so it is a pure performance knob — query
        // results are exact for any cell size, and the two modes want
        // opposite settings. Ticked: wider cells mean a coasting node
        // crosses cell edges — and pays a lease recheck — proportionally
        // less often, and at the paper's densities (~4.4·10⁻³ nodes/m²) a
        // 4·range cell holds around seven nodes, so a 3×3 scan stays
        // within a few cache lines. Lazy: queries go out at the inflated
        // `query_radius`, so cells sized to it keep the scan at one ring
        // of tight buckets.
        let cell = match &lazy {
            Some(l) => l.query_radius.max(1.0),
            None => (4.0 * scenario.channel.range_m).max(1.0),
        };
        let mut grid = SpatialGrid::new(area, cell);
        grid.rebuild(&positions);

        let mut medium = Medium::new(n);
        for node in &nodes {
            // Everyone starts awake and listening.
            medium.set_listening(node.id, true);
        }

        let timing = Timing::new(&scenario, &protocol);
        let end = SimTime::from_secs(scenario.duration_secs);
        let metrics = RunMetrics::new(scenario.duration_secs as f64);

        // Expected radio-disc occupancy at this density, the natural size
        // for every neighbourhood-shaped scratch buffer.
        let disc = std::f64::consts::PI * scenario.channel.range_m * scenario.channel.range_m;
        let occupancy = (n as f64 * disc / (area.width() * area.height()).max(1.0)).ceil();
        let k = (occupancy as usize).clamp(8, 256);

        let mut hot = HotNodeTable::with_len(n);
        for (idx, node) in nodes.iter().enumerate() {
            hot.sync(idx, node.epoch, node.state, node.metric.value());
            hot.sink[idx] = node.is_sink();
            hot.sync_alive(idx, node.alive);
        }

        let policy = Policy::builtin(config);
        let mac = policy.mac();
        let behaviors = BehaviorTable::new(n);
        let lifetime = LifetimeTracker::new(scenario.sensors);
        let mut sim = Simulation {
            scenario,
            protocol,
            config,
            policy,
            mac,
            seed,
            timing,
            end,
            events: ShardedEventQueue::new(1),
            shards: ShardRuntime::single(),
            nodes,
            hot,
            mobility,
            mobility_rng,
            lazy,
            coast,
            contacts,
            positions,
            grid,
            medium,
            ids: MessageIdAllocator::new(),
            delivered_ids: DeliveredSet::new(),
            metrics,
            deliveries: Vec::new(),
            scratch: CycleScratch::seeded(k),
            trace: None,
            observer: None,
            observe_ticks: 0,
            fault_plan: FaultPlan::default(),
            fault_rng,
            global_link_drop: 0.0,
            link_drop: LinkDropTable::new(n),
            fault_regime: false,
            behaviors,
            lifetime,
            profile: None,
            par: exec::ParRuntime::new(n),
            seq_lane: None,
        };
        sim.schedule_initial_events();
        sim
    }

    /// Instantiates and attaches the forwarding policy named by `spec`.
    /// Also called by checkpoint restore, which then overwrites the
    /// policy's runtime state from the snapshot's policy frame.
    fn install_policy(&mut self, spec: PolicySpec) {
        let mut policy = spec.into_policy(self.config);
        policy.init(self.nodes.len());
        self.mac = policy.mac();
        self.policy = policy;
    }

    /// The attached policy's serializable descriptor.
    #[must_use]
    pub fn policy_spec(&self) -> PolicySpec {
        self.policy.spec()
    }

    /// Installs a fault plan, scheduling its events as first-class entries
    /// in the ordinary event queue. An empty plan schedules nothing and
    /// leaves the run bit-for-bit identical to a fault-free one; installing
    /// the same nonempty plan with the same seed reproduces the same report.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`] for this scenario.
    fn install_fault_plan(&mut self, plan: FaultPlan) {
        plan.validate(&self.scenario)
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        for (k, ev) in plan.events.iter().enumerate() {
            let at = SimTime::ZERO + SimDuration::from_secs_f64(ev.at_secs);
            self.events.schedule_at(at, Event::Fault(k));
        }
        self.fault_plan = plan;
    }

    fn schedule_initial_events(&mut self) {
        // In Lazy mode the MobilityTick is a low-rate staleness sweep, not
        // a per-tick advance.
        let tick = match &self.lazy {
            Some(l) => l.sync_every,
            None => SimDuration::from_secs_f64(self.scenario.mobility_tick_secs),
        };
        self.events.schedule_after(tick, Event::MobilityTick);
        for i in 0..self.scenario.sensors {
            let id = NodeId(i);
            // Desynchronize first wakeups.
            let jitter = {
                let node = &mut self.nodes[i];
                SimDuration::from_secs_f64(node.rng.gen_range_f64(0.0, 2.0))
            };
            self.schedule_timer(id, jitter, Timer::WakeUp);
            let first_gen = {
                let node = &mut self.nodes[i];
                SimDuration::from_secs_f64(node.rng.gen_exp(self.scenario.data_interval_secs))
            };
            self.sched_after(first_gen, Event::DataGen(id));
            let delta = SimDuration::from_secs_f64(self.protocol.xi_timeout_secs);
            self.sched_after(delta, Event::MetricTimeout(id));
        }
    }

    /// The configured variant.
    #[must_use]
    pub fn variant(&self) -> VariantConfig {
        self.config
    }

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(event);
        }
    }

    /// Runs the simulation to its configured end and produces the report.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        while self.advance() {}
        self.finish_report()
    }

    /// Processes the next unit of work — one event on the sequential
    /// path, one *interval* of events on the parallel path — returning
    /// `false` when the run is complete. The parallel path engages only
    /// when [`set_threads`](Self::set_threads) requested more than one
    /// worker and no trace sink or profiler is attached (both observe
    /// individual events mid-interval). External drivers that used to
    /// loop on [`step`](Self::step) should loop on `advance` instead;
    /// every `advance` boundary is a valid checkpoint instant.
    pub fn advance(&mut self) -> bool {
        if self.par.threads > 1 && self.trace.is_none() && self.profile.is_none() {
            self.step_interval()
        } else {
            self.step()
        }
    }

    /// Sets the worker count for within-epoch parallel event execution
    /// (clamped to 1..=64; default 1 = fully sequential). Like the shard
    /// count, a pure execution knob: results are bit-identical for every
    /// thread count — the determinism contract DESIGN.md § 8 documents
    /// and `tests/sharded_engine.rs` plus the `thread_parity` gate
    /// enforce. Never serialized; resumed checkpoints come up
    /// single-threaded.
    pub fn set_threads(&mut self, threads: usize) {
        self.par.threads = threads.clamp(1, 64);
    }

    /// The configured parallel-executor worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.par.threads
    }

    /// Telemetry of the parallel interval executor: interval counts by
    /// flavor (parallel / fallback / bypass), the parallel-vs-sequential
    /// event split, spawn accounting, chunk-phase wall time and join-
    /// barrier stall. Zeroed until the parallel path first engages.
    #[must_use]
    pub fn exec_stats(&self) -> &ExecStats {
        &self.par.stats
    }

    /// Runs to completion with per-event-kind wall-time profiling enabled,
    /// returning the report alongside the profile.
    ///
    /// Profiling adds two clock reads per event, so the profiled run's
    /// aggregate wall time is not comparable with an unprofiled one —
    /// the per-kind cost *shares* are the meaningful output. The simulated
    /// results (report, trace, RNG streams) are bit-identical to
    /// [`run`](Self::run): the profile only observes the wall clock.
    #[must_use]
    pub fn run_profiled(mut self) -> (SimReport, EventProfile) {
        self.profile = Some(Box::new(EventProfile::new(&EVENT_KIND_LABELS)));
        while self.step() {}
        let profile = *self.profile.take().expect("installed above");
        (self.finish_report(), profile)
    }

    /// Contact-cache telemetry: `(hits, misses)` of the ticked-mode
    /// neighbour cache, `None` in lazy mode.
    #[must_use]
    pub fn contact_cache_stats(&self) -> Option<(u64, u64)> {
        self.contacts.as_ref().map(|c| (c.hits, c.misses))
    }

    /// Re-partitions a live simulation onto `shards` spatial shards
    /// (clamped to 1..=64 and to the grid's column count). Safe at any
    /// event boundary — including right after resuming a checkpoint, which
    /// always comes up single-shard because the shard count is an
    /// execution knob, never serialized state. Pending events are re-filed
    /// onto their owning lanes with their global order preserved, so the
    /// run's results do not depend on when (or whether) this is called.
    ///
    /// Telemetry across a mid-run flip: `barriers` and
    /// `cross_shard_frames` are run-lifetime counters and *carry* through
    /// any re-shard (including a collapse to one shard), so rates stay
    /// meaningful over the whole run. `boundary_nodes` is a gauge of the
    /// last barrier's band population and is recomputed immediately for
    /// the new topology. A checkpoint *resume* is the one boundary that
    /// zeroes all three — the counters describe this process's execution,
    /// not simulated history. `tests/sharded_engine.rs` pins this.
    pub fn set_shards(&mut self, shards: usize) {
        let carried_barriers = self.shards.barriers;
        let requested = shards.clamp(1, 64);
        let map = self.grid.shard_map(requested);
        if map.shards() <= 1 {
            self.shards = ShardRuntime::single();
            self.shards.barriers = carried_barriers;
            self.events.reshard(1, |_| 0);
            self.medium.set_sharding(Vec::new(), 1);
            return;
        }
        let count = map.shards();
        let vmax = self.scenario.speed_max_mps.max(0.2);
        let range = self.scenario.channel.range_m;
        let epoch = EpochClock::derive(range, vmax);
        let band = range + 2.0 * vmax * epoch.lookahead().as_secs_f64();
        self.shards = ShardRuntime {
            count,
            map: Some(map),
            node_shard: vec![0; self.positions.len()],
            band_m: band,
            epoch,
            next_barrier: epoch.next_barrier(self.now()),
            barriers: carried_barriers,
            boundary_nodes: 0,
        };
        self.refresh_shard_assignment();
        let node_shard = self.shards.node_shard.clone();
        self.events
            .reshard(count, move |ev| event_lane(&node_shard, ev));
    }

    /// Telemetry of the sharded engine: shard count, barriers taken,
    /// cross-shard frame mirrors and the boundary-band population at the
    /// last barrier. Reads state only.
    #[must_use]
    pub fn shard_stats(&self) -> ShardStats {
        ShardStats {
            shards: self.shards.count,
            barriers: self.shards.barriers,
            cross_shard_frames: self.medium.cross_shard_frames(),
            boundary_nodes: self.shards.boundary_nodes,
        }
    }

    /// Frames currently on the air: transmissions whose `TxEnd` has not
    /// fired yet. A checkpoint taken while this is nonzero exercises the
    /// mid-frame seam — the snapshot must carry the in-flight state.
    #[must_use]
    pub fn airborne_frames(&self) -> usize {
        self.medium.airborne()
    }

    /// Nodes currently mid-coast-lease in ticked mode (straight-line
    /// ticks promised but not yet replayed into their models). `None` in
    /// lazy mode. Checkpointing settles every lease first; this telemetry
    /// lets tests prove a snapshot instant actually was mid-lease.
    #[must_use]
    pub fn coasting_nodes(&self) -> Option<usize> {
        self.coast.as_ref().map(|c| {
            (0..c.model_left.len())
                .filter(|&j| c.model_left[j] > 0 || c.applied[j] > 0)
                .count()
        })
    }

    /// Recomputes every node's owning shard from its current stored
    /// position, counts the boundary-band population, and re-installs the
    /// assignment in the medium (rebuilding its per-shard active lists).
    /// Stored positions may lag truth by the mode's drift bound; the
    /// boundary band is sized to absorb exactly that drift, so affinity
    /// staleness never affects results — only mirror counts.
    fn refresh_shard_assignment(&mut self) {
        let ShardRuntime {
            map,
            node_shard,
            band_m,
            boundary_nodes,
            ..
        } = &mut self.shards;
        let Some(map) = map.as_ref() else {
            return;
        };
        let mut boundary = 0usize;
        for (j, p) in self.positions.iter().enumerate() {
            node_shard[j] = map.shard_of(*p) as u8;
            if map.in_boundary_band(*p, *band_m) {
                boundary += 1;
            }
        }
        *boundary_nodes = boundary;
        self.medium.set_sharding(node_shard.clone(), map.shards());
    }

    /// Takes an epoch barrier if one is due: refreshes shard affinity and
    /// the medium's boundary mirrors. Events already filed keep their
    /// lanes — placement is locality, not semantics — so a barrier never
    /// touches the queue.
    fn maybe_epoch_barrier(&mut self, now: SimTime) {
        if self.shards.count <= 1 || now < self.shards.next_barrier {
            return;
        }
        self.refresh_shard_assignment();
        self.shards.barriers += 1;
        self.shards.next_barrier = self.shards.epoch.next_barrier(now);
    }

    /// Files `ev` on its owning shard's lane at `at`. Routing consults the
    /// affinity table from the last barrier; a stale entry mis-places the
    /// event on a neighbouring lane, which costs locality and nothing
    /// else.
    #[inline]
    fn sched_at(&mut self, at: SimTime, ev: Event) {
        if let Some(lane) = self.seq_lane.as_deref_mut() {
            // Mid-interval on the parallel executor's commit lane: the
            // spawn goes to the interval log, which either consumes it
            // within the interval or re-files it at the commit walk with
            // the exact sequence number the sequential run would have
            // drawn (world_exec.rs).
            lane.spawn(at, ev);
            return;
        }
        let lane = event_lane(&self.shards.node_shard, &ev);
        self.events.schedule_at_on(lane, at, ev);
    }

    /// [`sched_at`](Self::sched_at) with a relative delay.
    #[inline]
    fn sched_after(&mut self, after: SimDuration, ev: Event) {
        if let Some(lane) = self.seq_lane.as_deref_mut() {
            // The queue clock sits at the drain horizon during an
            // interval; "after" is relative to the event being handled,
            // which the commit lane tracks itself.
            let at = lane.current_t + after;
            lane.spawn(at, ev);
            return;
        }
        let lane = event_lane(&self.shards.node_shard, &ev);
        self.events.schedule_after_on(lane, after, ev);
    }

    /// The simulation clock: the time of the most recently processed
    /// event. Checkpoints taken between [`step`](Self::step) calls are
    /// stamped with this instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Processes the next pending event, returning `false` when the run
    /// is complete (no pending event at or before the configured end).
    ///
    /// `run` is equivalent to stepping until exhaustion and then calling
    /// the report finalizer; external drivers (checkpointing loops,
    /// signal-interruptible runs) use `step` directly so they can act on
    /// event boundaries.
    pub fn step(&mut self) -> bool {
        match self.events.peek_time() {
            Some(t) if t <= self.end => {
                let (now, ev) = self.events.pop().expect("peeked event exists");
                if self.profile.is_some() {
                    let kind = self.event_kind_index(&ev);
                    let t0 = std::time::Instant::now();
                    self.handle(now, ev);
                    let took = t0.elapsed();
                    self.profile
                        .as_mut()
                        .expect("checked above")
                        .record(kind, took);
                } else {
                    self.handle(now, ev);
                }
                true
            }
            _ => false,
        }
    }

    /// Row index into [`EVENT_KIND_LABELS`] for a pending event. Timers
    /// whose epoch guard already failed classify as `Timer:stale`.
    fn event_kind_index(&self, ev: &Event) -> usize {
        match ev {
            Event::MobilityTick => 0,
            Event::DataGen(_) => 1,
            Event::MetricTimeout(_) => 2,
            Event::TxEnd(..) => 3,
            Event::Timer(i, epoch, timer) => {
                if self.hot.epoch[i.index()] != *epoch {
                    11
                } else {
                    match timer {
                        Timer::WakeUp => 4,
                        Timer::ListenDone => 5,
                        Timer::CtsSlot => 6,
                        Timer::CtsWindowEnd => 7,
                        Timer::AckSlot => 8,
                        Timer::AckWindowEnd => 9,
                        Timer::Guard => 10,
                    }
                }
            }
            Event::Fault(_) => 12,
            Event::ObserveTick => 13,
        }
    }

    /// Finalizes an *interrupted* run into a report covering the elapsed
    /// horizon (`now`): energy meters close at the interruption instant
    /// and rates normalize by the elapsed — not configured — duration.
    /// The attached observer flushes its partial window and totals.
    #[must_use]
    pub fn finish_partial(self) -> SimReport {
        let horizon = self.events.now();
        self.finish_report_at(horizon)
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::MobilityTick => self.on_mobility_tick(now),
            Event::DataGen(i) => self.on_data_gen(now, i),
            Event::MetricTimeout(i) => self.on_metric_timeout(now, i),
            Event::TxEnd(i, handle) => self.on_tx_end(now, i, handle),
            Event::Timer(i, epoch, timer) => {
                // Staleness check against the dense epoch mirror: most
                // timers are stale (implicit cancellation), so this filter
                // runs hot and must not pull whole `Node`s through cache.
                debug_assert_eq!(self.hot.epoch[i.index()], self.nodes[i.index()].epoch);
                if self.hot.epoch[i.index()] == epoch {
                    self.on_timer(now, i, timer);
                }
            }
            Event::Fault(k) => self.on_fault(now, k),
            Event::ObserveTick => self.on_observe_tick(now),
        }
    }

    /// Refreshes node `idx`'s row of the dense hot-state mirror. Must be
    /// called after every block that transitions the MAC state (which
    /// bumps the epoch) or updates the routing metric; consumers
    /// `debug_assert` the mirror against the canonical fields, so a
    /// missed call fails the debug-built test suite.
    #[inline]
    fn sync_hot(&mut self, idx: usize) {
        let node = &self.nodes[idx];
        self.hot
            .sync(idx, node.epoch, node.state, node.metric.value());
    }

    // ------------------------------------------------------------------
    // Observation
    // ------------------------------------------------------------------

    /// Samples the world for the attached observer and schedules the next
    /// boundary tick. Reads state only — no RNG stream is touched — so
    /// observation never perturbs the simulation.
    fn on_observe_tick(&mut self, now: SimTime) {
        self.observe_ticks += 1;
        let Some(recorder) = self.observer.clone() else {
            return;
        };
        let snap = self.world_snapshot(now);
        recorder.record_snapshot(now, snap);
        let window = SimDuration::from_secs_f64(recorder.window_secs());
        if !window.is_zero() && now + window <= self.end {
            self.events.schedule_at(now + window, Event::ObserveTick);
        }
    }

    /// Instantaneous sensor-population state: queue occupancy, the ξ
    /// distribution, the sleeping fraction and cumulative energy.
    fn world_snapshot(&self, now: SimTime) -> WorldSnapshot {
        let sensors = self.scenario.sensors.max(1);
        let mut queue_sum = 0u64;
        let mut queue_max = 0u64;
        let mut xi_sum = 0.0;
        let mut xi_min = f64::INFINITY;
        let mut xi_max = f64::NEG_INFINITY;
        let mut asleep = 0usize;
        let mut energy = 0.0;
        let mut alive_nodes = 0u64;
        for node in self.nodes.iter().take(self.scenario.sensors) {
            if node.alive {
                alive_nodes += 1;
            }
            let len = node.queue.len() as u64;
            queue_sum += len;
            queue_max = queue_max.max(len);
            let xi = node.metric.value();
            xi_sum += xi;
            xi_min = xi_min.min(xi);
            xi_max = xi_max.max(xi);
            if node.meter.state() == RadioState::Sleep {
                asleep += 1;
            }
            energy += node.meter.total_energy_j(now, &self.scenario.energy);
        }
        if xi_min > xi_max {
            xi_min = 0.0;
            xi_max = 0.0;
        }
        WorldSnapshot {
            queue_mean: queue_sum as f64 / sensors as f64,
            queue_max,
            xi_mean: xi_sum / sensors as f64,
            xi_min,
            xi_max,
            asleep_fraction: asleep as f64 / sensors as f64,
            energy_j: energy,
            alive_nodes,
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    fn on_fault(&mut self, now: SimTime, k: usize) {
        self.fault_regime = true;
        self.emit(TraceEvent::FaultInjected {
            at: now,
            kind: self.fault_plan.events[k].kind.label(),
        });
        match self.fault_plan.events[k].kind {
            FaultKind::NodeCrash(i) => {
                if self.crash_node(now, i, false) {
                    self.metrics.faults.crashes += 1;
                }
            }
            FaultKind::BatteryDeath(i) => {
                if self.crash_node(now, i, true) {
                    self.metrics.faults.crashes += 1;
                    self.metrics.faults.battery_deaths += 1;
                }
            }
            FaultKind::NodeRecover(i) => {
                if self.recover_node(now, i) {
                    self.metrics.faults.recoveries += 1;
                }
            }
            FaultKind::SinkDown(i) => {
                if self.crash_node(now, i, false) {
                    self.metrics.faults.crashes += 1;
                    self.metrics.faults.sink_outages += 1;
                }
            }
            FaultKind::SinkUp(i) => {
                if self.recover_node(now, i) {
                    self.metrics.faults.recoveries += 1;
                }
            }
            FaultKind::LinkDegrade { a, b, drop_prob } => {
                if drop_prob > 0.0 {
                    self.link_drop.set(a, b, drop_prob.clamp(0.0, 1.0));
                } else {
                    self.link_drop.clear(a, b);
                }
            }
            FaultKind::GlobalLinkDegrade { drop_prob } => {
                self.global_link_drop = drop_prob.clamp(0.0, 1.0);
            }
            FaultKind::DataCorruption { node, prob } => {
                self.nodes[node.index()].corrupt_rx_prob = prob.clamp(0.0, 1.0);
            }
            FaultKind::BehaviorChange { node, behavior } => {
                let idx = node.index();
                // Orthogonal to liveness: assigning to a dead node records
                // the behavior, which takes effect if the node recovers.
                debug_assert_eq!(
                    self.hot.alive[idx], self.nodes[idx].alive,
                    "alive mirror drifted at behavior change"
                );
                self.behaviors.set(idx, behavior);
                self.metrics.faults.behavior_changes += 1;
                if behavior.is_adversarial() {
                    // Conservative: an adversary's cycles are never eligible
                    // for the clean (behavior-blind) parallel partition.
                    self.par.occupied[idx] = true;
                }
            }
        }
    }

    /// Halts node `i`: the radio goes dark, queued copies are lost, all
    /// pending timers are invalidated via the epoch bump, and any sender
    /// context is reclaimed. Returns false if the node was already down.
    fn crash_node(&mut self, now: SimTime, i: NodeId, permanent: bool) -> bool {
        let idx = i.index();
        if !self.nodes[idx].alive {
            // Crashing a dead node is a no-op, but a battery death still
            // pins it down so a later recovery is refused. `battery_dead`
            // has no SoA mirror and nothing else here touches mirrored
            // state, so no re-sync is needed; the assertions prove the
            // mirrors were left consistent when the node went down.
            debug_assert!(
                !self.hot.alive[idx],
                "alive mirror drifted on an already-dead node"
            );
            debug_assert_eq!(self.hot.epoch[idx], self.nodes[idx].epoch);
            if permanent {
                self.nodes[idx].battery_dead = true;
            }
            return false;
        }
        let mut lost = 0u64;
        let taken_ctx = {
            let node = &mut self.nodes[idx];
            node.alive = false;
            if permanent {
                node.battery_dead = true;
            }
            while let Some(dropped) = node.queue.pop_head() {
                lost += 1;
                // Policies with per-message ledgers reclaim them here.
                self.policy.on_copy_discarded(i, &dropped);
            }
            // The epoch bump makes every pending timer stale, so the node
            // cannot be revived by a leftover WakeUp or window deadline.
            node.transition(MacState::Sleeping);
            node.meter
                .set_state(now, RadioState::Sleep, &self.scenario.energy);
            node.receiver_ctx = None;
            node.listen_retries = 0;
            node.cycles_inactive = 0;
            node.sender_ctx.take()
        };
        if let Some(ctx) = taken_ctx {
            self.scratch.recycle_sender_ctx(ctx);
        }
        self.sync_hot(idx);
        self.hot.sync_alive(idx, false);
        self.metrics.faults.messages_lost_to_crash += lost;
        self.medium.set_listening(i, false);
        if idx < self.scenario.sensors {
            self.lifetime.on_death(now.as_secs_f64());
        }
        true
    }

    /// Reboots a crashed node with an empty queue. Refused for nodes that
    /// are alive or battery-dead. Sensors get a jittered first wakeup, like
    /// at the start of the run; sinks simply resume listening.
    fn recover_node(&mut self, now: SimTime, i: NodeId) -> bool {
        let idx = i.index();
        {
            let node = &mut self.nodes[idx];
            if node.alive || node.battery_dead {
                return false;
            }
            node.alive = true;
            node.transition(MacState::Passive);
            node.meter
                .set_state(now, RadioState::Idle, &self.scenario.energy);
            node.cycles_inactive = 0;
            node.listen_retries = 0;
        }
        self.sync_hot(idx);
        self.hot.sync_alive(idx, true);
        self.medium.set_listening(i, true);
        if idx < self.scenario.sensors {
            self.lifetime.on_revive();
        }
        if !self.nodes[idx].is_sink() {
            // Fault-plan randomness lives in the dedicated fault fork:
            // drawing this jitter from the node's primary stream would
            // desynchronize every later primary draw from the quiet run's,
            // breaking the contract that faults perturb only the faulted
            // behaviour.
            let jitter = SimDuration::from_secs_f64(self.fault_rng.gen_range_f64(0.0, 2.0));
            self.schedule_timer(i, jitter, Timer::WakeUp);
        }
        true
    }

    /// Effective per-frame drop probability on the (undirected) link
    /// `a`–`b`: a per-pair entry overrides the global figure. Zero on every
    /// link unless a fault plan degraded it.
    fn link_drop_prob(&self, a: NodeId, b: NodeId) -> f64 {
        if self.link_drop.is_empty() {
            return self.global_link_drop;
        }
        self.link_drop.get(a, b).unwrap_or(self.global_link_drop)
    }

    fn schedule_timer(&mut self, i: NodeId, delay: SimDuration, timer: Timer) {
        debug_assert_eq!(self.hot.epoch[i.index()], self.nodes[i.index()].epoch);
        let epoch = self.hot.epoch[i.index()];
        self.sched_after(delay, Event::Timer(i, epoch, timer));
    }

    fn on_mobility_tick(&mut self, now: SimTime) {
        self.maybe_epoch_barrier(now);
        if let Some(every) = self.lazy.as_ref().map(|l| l.sync_every) {
            // Lazy mode: this tick is a low-rate staleness sweep. Catching
            // every node up to `now` re-establishes the invariant the
            // expanded-radius queries rely on — no stored position lags
            // truth by more than `sync_every · v_max` metres.
            if self.shards.count > 1 {
                self.catch_up_all_parallel(now);
            } else {
                for j in 0..self.mobility.len() {
                    self.catch_up_node(j, now);
                }
            }
            self.sched_after(every, Event::MobilityTick);
            return;
        }
        let dt = self.scenario.mobility_tick_secs;
        let Simulation {
            mobility,
            mobility_rng,
            coast,
            positions,
            grid,
            ..
        } = self;
        let coast = coast.as_mut().expect("ticked mode has a coast ledger");
        // O(due) tick: nodes mid-lease appear in no wheel slot and cost
        // nothing — their dense positions simply lag and are materialized
        // when read. Only the handful of nodes whose lease or cell window
        // expires this tick are touched.
        coast.tick_no += 1;
        let t = coast.tick_no;
        let mut due = std::mem::take(&mut coast.wheel[(t % COAST_WHEEL as u64) as usize]);
        // Slots accumulate pushes from different grant instants, so sort:
        // RNG draws below must happen in the exact shared-stream (node-
        // ascending) order a lease-free per-node loop would make them.
        due.sort_unstable();
        for &j in &due {
            let j = j as usize;
            // Catch the dense position up to the previous tick; this
            // tick's step is taken below on whichever path applies.
            coast.materialize(j, t - 1, positions);
            if coast.model_left[j] > 0 {
                // Mid-lease cell recheck: the lease is still live — this
                // tick is one of its promised straight-line steps — but
                // the node may now cross a grid-cell edge, so apply the
                // step with the bucket update and re-clip the window to
                // the new cell margin.
                let p = positions[j] + coast.disp[j];
                positions[j] = p;
                coast.anchor[j] = t;
                coast.applied[j] += 1;
                coast.model_left[j] -= 1;
                let margin = grid.move_node_margin(j, p);
                let window = coast.model_left[j].min(cell_coast_ticks(margin, coast.disp[j]));
                let booked = coast.book(j, window);
                coast.model_left[j] -= booked;
                continue;
            }
            // Full path: replay the coasted ticks into the model, advance
            // it for real (this is where legs end, boundaries reflect and
            // randomness is drawn), then take out a fresh lease.
            let m = &mut mobility[j];
            let pending = std::mem::take(&mut coast.applied[j]);
            if pending > 0 {
                m.tick_settle(dt, pending, positions[j]);
            }
            m.advance(dt, mobility_rng);
            let p = m.position();
            positions[j] = p;
            coast.anchor[j] = t;
            let margin = grid.move_node_margin(j, p);
            let (disp, granted) = m.tick_grant(dt);
            coast.disp[j] = disp;
            let window = granted.min(cell_coast_ticks(margin, disp));
            let booked = coast.book(j, window);
            coast.model_left[j] = granted - booked;
        }
        due.clear();
        coast.wheel[(t % COAST_WHEEL as u64) as usize] = due;
        let tick = SimDuration::from_secs_f64(dt);
        // Routed through sched_after (not the queue directly) so a tick
        // handled on the parallel executor's commit lane re-arms itself
        // relative to the tick instant, not the interval's drain horizon.
        self.sched_after(tick, Event::MobilityTick);
    }

    /// Settles every outstanding coast lease so the mobility models' own
    /// state (not just the dense position mirror) is exact — required
    /// before `save_state`. Leases are cancelled, forcing the next tick
    /// through the full path exactly as a freshly resumed run would go,
    /// so checkpointing mid-lease cannot diverge from an uninterrupted
    /// run. No-op in Lazy mode.
    fn settle_coast(&mut self) {
        let Some(coast) = self.coast.as_mut() else {
            return;
        };
        let dt = self.scenario.mobility_tick_secs;
        let t = coast.tick_no;
        for (j, m) in self.mobility.iter_mut().enumerate() {
            coast.materialize(j, t, &mut self.positions);
            let pending = std::mem::take(&mut coast.applied[j]);
            if pending > 0 {
                m.tick_settle(dt, pending, self.positions[j]);
            }
            coast.model_left[j] = 0;
        }
        // Every lease is void now: rebook the whole population for the
        // next tick so each node re-grants from its settled model state.
        for slot in &mut coast.wheel {
            slot.clear();
        }
        let next = ((t + 1) % COAST_WHEEL as u64) as usize;
        coast.wheel[next] = (0..self.mobility.len() as u32).collect();
    }

    /// Advances node `j`'s mobility from its last synced instant to `now`
    /// in one closed-form span, updating its stored position and grid
    /// cell. No-op in Ticked mode and for already-current nodes.
    /// The staleness sweep fanned out over the shard workers: every lane
    /// of per-node state (model, RNG, sync stamp, position) is split into
    /// disjoint contiguous chunks, one scoped thread per shard. Each
    /// node's advance reads and writes only its own lanes — per-node RNG
    /// streams are exactly why lazy mode carries `lazy.rngs` — so the
    /// result is bit-identical to the sequential sweep regardless of
    /// scheduling. The spatial grid is shared structure, so its bucket
    /// moves replay sequentially afterwards; `move_node` keeps buckets
    /// sorted and ignores same-cell moves, making the final grid a pure
    /// function of the final positions.
    fn catch_up_all_parallel(&mut self, now: SimTime) {
        let Simulation {
            mobility,
            lazy,
            positions,
            grid,
            shards,
            ..
        } = self;
        let lazy = lazy.as_mut().expect("lazy branch");
        let n = mobility.len();
        if n == 0 {
            return;
        }
        let workers = shards.count.min(n);
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut m = mobility.as_mut_slice();
            let mut r = lazy.rngs.as_mut_slice();
            let mut s = lazy.synced_at.as_mut_slice();
            let mut p = positions.as_mut_slice();
            while !m.is_empty() {
                let take = chunk.min(m.len());
                let (m0, m_rest) = m.split_at_mut(take);
                let (r0, r_rest) = r.split_at_mut(take);
                let (s0, s_rest) = s.split_at_mut(take);
                let (p0, p_rest) = p.split_at_mut(take);
                scope.spawn(move || {
                    for j in 0..m0.len() {
                        let dt = now.saturating_since(s0[j]);
                        if dt.is_zero() {
                            continue;
                        }
                        s0[j] = now;
                        m0[j].advance_span(dt.as_secs_f64(), &mut r0[j]);
                        p0[j] = m0[j].position();
                    }
                });
                m = m_rest;
                r = r_rest;
                s = s_rest;
                p = p_rest;
            }
        });
        for (j, p) in positions.iter().enumerate() {
            grid.move_node(j, *p);
        }
    }

    fn catch_up_node(&mut self, j: usize, now: SimTime) {
        let Some(lazy) = self.lazy.as_mut() else {
            return;
        };
        let dt = now.saturating_since(lazy.synced_at[j]);
        if dt.is_zero() {
            return;
        }
        lazy.synced_at[j] = now;
        self.mobility[j].advance_span(dt.as_secs_f64(), &mut lazy.rngs[j]);
        let p = self.mobility[j].position();
        self.positions[j] = p;
        self.grid.move_node(j, p);
    }

    fn on_data_gen(&mut self, now: SimTime, i: NodeId) {
        // A crashed sensor senses nothing, but its Poisson clock keeps
        // ticking so generation resumes on recovery.
        if self.nodes[i.index()].alive {
            let id = self.ids.allocate();
            let msg = Message::sensed(id, i, now);
            self.metrics.generated += 1;
            self.insert_into_queue(now, i, msg);
        }
        let next = {
            let node = &mut self.nodes[i.index()];
            SimDuration::from_secs_f64(node.rng.gen_exp(self.scenario.data_interval_secs))
        };
        self.sched_after(next, Event::DataGen(i));
    }

    fn on_metric_timeout(&mut self, now: SimTime, i: NodeId) {
        let delta = SimDuration::from_secs_f64(self.protocol.xi_timeout_secs);
        let node = &mut self.nodes[i.index()];
        if !node.alive {
            // ξ is frozen while the node is down; the anchor stays put, so
            // the first timeout after recovery applies every missed window.
            self.sched_after(delta, Event::MetricTimeout(i));
            return;
        }
        // Eq. 1 decays ξ once per *elapsed* Δ window since the last
        // transmission (or the last applied decay), not once per event
        // firing: a node that was unreachable across several windows —
        // asleep past its timer or crashed — catches up on all of them
        // here. In an undisturbed run exactly one window has elapsed at
        // every firing, so this matches the one-decay-per-Δ schedule.
        let anchor = node.last_tx.max(node.xi_anchor);
        let due = anchor + delta;
        if now >= due {
            let windows = (now.saturating_since(anchor).ticks() / delta.ticks().max(1)).max(1);
            node.metric.decay_windows(self.protocol.alpha, windows);
            node.xi_anchor = anchor + delta * windows;
            self.sync_hot(i.index());
            self.sched_after(delta, Event::MetricTimeout(i));
        } else {
            self.sched_at(due, Event::MetricTimeout(i));
        }
    }

    fn on_timer(&mut self, now: SimTime, i: NodeId, timer: Timer) {
        match timer {
            Timer::WakeUp => self.start_cycle(now, i),
            Timer::ListenDone => self.on_listen_done(now, i),
            Timer::CtsSlot => self.on_cts_slot(now, i),
            Timer::CtsWindowEnd => self.on_cts_window_end(now, i),
            Timer::AckSlot => self.on_ack_slot(now, i),
            Timer::AckWindowEnd => self.finalize_multicast(now, i),
            Timer::Guard => self.end_cycle(now, i, false),
        }
    }

    // ------------------------------------------------------------------
    // Cycle control
    // ------------------------------------------------------------------

    fn start_cycle(&mut self, now: SimTime, i: NodeId) {
        // Hottest early exit in the event loop (every WakeUp lands here):
        // served from the dense mirrors so the common case touches no
        // `Node` cache line before the real work starts.
        debug_assert_eq!(self.hot.sink[i.index()], self.nodes[i.index()].is_sink());
        debug_assert_eq!(self.hot.alive[i.index()], self.nodes[i.index()].alive);
        if self.hot.sink[i.index()] || !self.hot.alive[i.index()] {
            return;
        }
        // A node waking from a long nap catches its own position up before
        // acting (lazy mode only; no-op otherwise).
        self.catch_up_node(i.index(), now);
        {
            let node = &mut self.nodes[i.index()];
            if node.state == MacState::Sleeping {
                node.meter
                    .set_state(now, RadioState::Idle, &self.scenario.energy);
                self.medium.set_listening(i, true);
            }
            if let Some(ctx) = node.sender_ctx.take() {
                self.scratch.recycle_sender_ctx(ctx);
            }
            node.receiver_ctx = None;
            node.listen_retries = 0;
        }
        // Withholding adversaries (selfish, liar, blackhole) never enter
        // the sender phase: captured copies rot in their queues. Forgers
        // *do* transmit — corrupting relayed DATA requires sending it.
        let withholds = self.behaviors.any() && self.behaviors.get(i.index()).withholds();
        if withholds || self.nodes[i.index()].queue.is_empty() {
            // Nothing to send: stay available as a receiver for a window,
            // then re-evaluate the sleeping policy.
            let window = SimDuration::from_secs_f64(self.protocol.receiver_window_secs);
            self.nodes[i.index()].transition(MacState::Passive);
            self.sync_hot(i.index());
            self.schedule_timer(i, window, Timer::Guard);
        } else {
            self.enter_sender_listen(now, i);
        }
    }

    fn enter_sender_listen(&mut self, now: SimTime, i: NodeId) {
        let tau_max = self.tau_max_for(now, i);
        let node = &mut self.nodes[i.index()];
        // Eq. 9's ξ-scaled listening period is part of the Sec. 4.2
        // optimization; the unoptimized protocol draws uniformly over the
        // whole fixed window.
        let sig = if self.mac.adaptive_tau {
            sigma(node.metric.value(), tau_max)
        } else {
            tau_max
        };
        let tau_slots = node.rng.gen_range_inclusive(1, sig);
        node.transition(MacState::SenderListen);
        self.sync_hot(i.index());
        self.metrics.attempts += 1;
        let listen = self.timing.listen_slot * tau_slots;
        self.schedule_timer(i, listen, Timer::ListenDone);
    }

    fn on_listen_done(&mut self, now: SimTime, i: NodeId) {
        debug_assert_eq!(self.nodes[i.index()].state, MacState::SenderListen);
        // Carrier sense with a one-slot turnaround blind window: energy
        // that appeared less than a listening slot ago is not yet
        // detectable, so contenders whose listening periods end in the
        // same slot collide — the regime Eqs. 10–12 analyse.
        let detected_busy = match self.medium.busy_since(i) {
            Some(t0) => now.saturating_since(t0) >= self.timing.listen_slot,
            None => false,
        };
        if detected_busy {
            // Busy channel: restart the asynchronous phase (bounded).
            let node = &mut self.nodes[i.index()];
            node.listen_retries += 1;
            if node.listen_retries > 3 {
                self.end_cycle(now, i, false);
            } else {
                self.enter_sender_listen(now, i);
            }
            return;
        }
        let Some(head) = self.nodes[i.index()].queue.peek_head().copied() else {
            self.end_cycle(now, i, false);
            return;
        };
        let window = self.window_for(now, i);
        let candidates = self.scratch.take_candidates();
        let acked = self.scratch.take_acked();
        self.nodes[i.index()].sender_ctx = Some(SenderCtx {
            msg: head,
            window_slots: window,
            candidates,
            selection: None,
            acked,
        });
        self.begin_frame(
            now,
            i,
            MacPayload::Preamble,
            self.scenario.control_bits,
            TxPlan::Preamble,
        );
    }

    fn on_cts_slot(&mut self, now: SimTime, i: NodeId) {
        debug_assert_eq!(self.nodes[i.index()].state, MacState::CtsPending);
        let (metric, space, msg) = {
            let node = &self.nodes[i.index()];
            let ctx = node.receiver_ctx.as_ref().expect("CTS slot without ctx");
            let space = if node.is_sink() {
                u32::MAX
            } else {
                // Advertise the buffer space available for the FTD class
                // the sender announced in its RTS (Sec. 3.2.1).
                node.queue
                    .available_space_for(Ftd::new(ctx.rts_ftd.clamp(0.0, 1.0)))
                    .min(u32::MAX as usize) as u32
            };
            (node.metric.value(), space, ctx.msg)
        };
        // Liars and forgers advertise a perfect ξ and unbounded buffer to
        // win the sender's selection; the sender's copy-fate logic then
        // believes the copy moved (or was delivered) and drops it — the
        // capture mechanism of both behaviors.
        let (metric, space) = if self.behaviors.any() && !self.hot.sink[i.index()] {
            match self.behaviors.get(i.index()) {
                NodeBehavior::Liar => {
                    self.metrics.faults.lied_advertisements += 1;
                    (1.0, u32::MAX)
                }
                NodeBehavior::Forger => {
                    self.metrics.faults.forged_frames += 1;
                    (1.0, u32::MAX)
                }
                _ => (metric, space),
            }
        } else {
            (metric, space)
        };
        self.begin_frame(
            now,
            i,
            MacPayload::Cts {
                xi: metric,
                buffer_space: space,
                msg,
            },
            self.scenario.control_bits,
            TxPlan::Cts,
        );
    }

    fn on_cts_window_end(&mut self, now: SimTime, i: NodeId) {
        debug_assert_eq!(self.nodes[i.index()].state, MacState::CollectCts);
        let mut selection = self.scratch.take_selection();
        {
            let node = &self.nodes[i.index()];
            let ctx = node.sender_ctx.as_ref().expect("window end without ctx");
            let sctx = SelectCtx {
                sender: i,
                sender_metric: node.metric.value(),
                msg: ctx.msg,
                threshold_r: self.protocol.delivery_threshold_r,
            };
            self.policy.select(
                &sctx,
                &ctx.candidates,
                &mut self.scratch.sel,
                &mut selection,
            );
        }
        if selection.is_empty() {
            self.scratch.recycle_selection(selection);
            self.end_cycle(now, i, false);
            return;
        }
        let mut receivers = self.scratch.take_schedule();
        receivers.extend(selection.receivers.iter().map(|&(id, f)| (id, f.value())));
        let payload = {
            let node = &mut self.nodes[i.index()];
            let ctx = node.sender_ctx.as_mut().expect("window end without ctx");
            let payload = MacPayload::Schedule {
                receivers,
                msg: ctx.msg.id,
            };
            ctx.selection = Some(selection);
            payload
        };
        self.begin_frame(
            now,
            i,
            payload,
            self.scenario.control_bits,
            TxPlan::Schedule,
        );
    }

    fn on_ack_slot(&mut self, now: SimTime, i: NodeId) {
        debug_assert_eq!(self.nodes[i.index()].state, MacState::AckPending);
        let msg = self.nodes[i.index()]
            .receiver_ctx
            .as_ref()
            .expect("ACK slot without ctx")
            .msg;
        // A forger's ACK is a forgery: it acknowledges data it is about to
        // corrupt (or data it never stored faithfully). The frame itself is
        // indistinguishable on the air, so it still captures the copy.
        if self.behaviors.any() && self.behaviors.get(i.index()) == NodeBehavior::Forger {
            self.metrics.faults.forged_frames += 1;
        }
        self.begin_frame(
            now,
            i,
            MacPayload::Ack { msg },
            self.scenario.control_bits,
            TxPlan::Ack,
        );
    }

    /// Applies the policy's receiver-selection rule, returning a fresh
    /// `Selection` (test and inspection use; the hot path reuses buffers).
    #[cfg(test)]
    fn select_for(&self, sender_metric: f64, msg_ftd: Ftd, candidates: &[Candidate]) -> Selection {
        let mut scratch = SelectionScratch::default();
        let mut out = Selection::default();
        let ctx = SelectCtx {
            sender: NodeId(0),
            sender_metric,
            msg: Message::sensed(MessageId(u64::MAX), NodeId(usize::MAX), SimTime::ZERO)
                .with_ftd(msg_ftd),
            threshold_r: self.protocol.delivery_threshold_r,
        };
        self.policy.select(&ctx, candidates, &mut scratch, &mut out);
        out
    }

    fn finalize_multicast(&mut self, now: SimTime, i: NodeId) {
        debug_assert_eq!(self.nodes[i.index()].state, MacState::AwaitAcks);
        let ctx = self.nodes[i.index()]
            .sender_ctx
            .take()
            .expect("finalize without ctx");
        let selection = ctx.selection.as_ref().expect("finalize without selection");

        self.scratch.confirmed_xis.clear();
        let mut any_sink = false;
        for (k, &(id, _)) in selection.receivers.iter().enumerate() {
            if ctx.acked.contains(&id) {
                self.scratch.confirmed_xis.push(selection.receiver_xis[k]);
                debug_assert_eq!(self.hot.sink[id.index()], self.nodes[id.index()].is_sink());
                if self.hot.sink[id.index()] {
                    any_sink = true;
                }
            }
        }
        if self.scratch.confirmed_xis.is_empty() {
            self.metrics.failed_attempts += 1;
            self.scratch.recycle_sender_ctx(ctx);
            self.end_cycle(now, i, false);
            return;
        }
        self.metrics.multicasts += 1;
        self.metrics.copies_sent += self.scratch.confirmed_xis.len() as u64;

        // Metric update (Eq. 1 / history / estimator, per policy) and the
        // retained copy's fate in one dispatch.
        let alpha = self.protocol.alpha;
        let fate = {
            let confirmed = Confirmed {
                xis: &self.scratch.confirmed_xis,
                any_sink,
            };
            let node = &mut self.nodes[i.index()];
            node.last_tx = now;
            self.policy.on_multicast(
                i,
                &ctx.msg,
                &confirmed,
                alpha,
                self.protocol.ftd_drop_threshold,
                &mut node.metric,
            )
        };
        self.sync_hot(i.index());

        // Queue bookkeeping for the transmitted message.
        let msg_id = ctx.msg.id;
        match fate {
            CopyFate::Delivered | CopyFate::Moved => {
                self.nodes[i.index()].queue.remove(msg_id);
            }
            CopyFate::Retain => {}
            CopyFate::Demote(new_ftd) => {
                self.nodes[i.index()].queue.update_ftd(msg_id, new_ftd);
            }
            CopyFate::Drop => {
                if self.nodes[i.index()].queue.remove(msg_id).is_some() {
                    self.metrics.drops_ftd += 1;
                    self.emit(TraceEvent::Dropped {
                        at: now,
                        node: i,
                        msg: msg_id,
                        reason: DropReason::FtdThreshold,
                    });
                }
            }
        }
        self.scratch.recycle_sender_ctx(ctx);
        self.end_cycle(now, i, true);
    }

    fn end_cycle(&mut self, now: SimTime, i: NodeId, active: bool) {
        debug_assert_eq!(self.hot.sink[i.index()], self.nodes[i.index()].is_sink());
        if self.hot.sink[i.index()] {
            let node = &mut self.nodes[i.index()];
            if let Some(ctx) = node.sender_ctx.take() {
                self.scratch.recycle_sender_ctx(ctx);
            }
            node.receiver_ctx = None;
            node.listen_retries = 0;
            node.transition(MacState::Passive);
            self.sync_hot(i.index());
            return;
        }
        let urgency_bound = Ftd::new(self.protocol.urgency_ftd_bound);
        let (go_sleep, backoff) = {
            let node = &mut self.nodes[i.index()];
            node.sleep.record_cycle(active);
            if active {
                node.cycles_inactive = 0;
            } else {
                node.cycles_inactive += 1;
            }
            if let Some(ctx) = node.sender_ctx.take() {
                self.scratch.recycle_sender_ctx(ctx);
            }
            node.receiver_ctx = None;
            node.listen_retries = 0;
            let go_sleep =
                self.mac.sleeps && node.cycles_inactive >= self.protocol.inactivity_cycles_l;
            // A node in work mode "repeats the two-phase process" (Sec. 3.2):
            // after a successful cycle the next one starts immediately; only
            // failed attempts back off before retrying.
            let backoff = if active {
                self.timing.gap
            } else {
                SimDuration::from_secs_f64(node.rng.gen_range_f64(
                    self.protocol.backoff_min_secs,
                    self.protocol.backoff_max_secs,
                ))
            };
            (go_sleep, backoff)
        };
        if go_sleep {
            let duration = if self.mac.adaptive_sleep {
                let node = &self.nodes[i.index()];
                node.sleep
                    .sleep_duration(node.queue.urgency(urgency_bound), &self.protocol)
            } else {
                SimDuration::from_secs_f64(self.protocol.fixed_sleep_secs)
            };
            let node = &mut self.nodes[i.index()];
            node.transition(MacState::Sleeping);
            node.meter
                .set_state(now, RadioState::Sleep, &self.scenario.energy);
            self.sync_hot(i.index());
            self.medium.set_listening(i, false);
            self.emit(TraceEvent::Slept {
                at: now,
                node: i,
                secs: duration.as_secs_f64(),
            });
            self.schedule_timer(i, duration, Timer::WakeUp);
        } else {
            self.nodes[i.index()].transition(MacState::Passive);
            self.sync_hot(i.index());
            self.schedule_timer(i, backoff, Timer::WakeUp);
        }
    }

    // ------------------------------------------------------------------
    // Adaptive parameters (Sec. 4)
    // ------------------------------------------------------------------

    /// τ_max for node `i`: Eq. 13 over the fresh neighbor table (plus the
    /// node itself), or the fixed NOOPT value. The Eq. 13 search is
    /// memoized for a few seconds per node — the neighborhood changes on
    /// mobility timescales, not per attempt.
    fn tau_max_for(&mut self, now: SimTime, i: NodeId) -> u64 {
        if !self.mac.adaptive_tau {
            return self.protocol.tau_max_fixed_slots;
        }
        const TAU_CACHE_SECS: u64 = 5;
        if let Some((at, tau)) = self.nodes[i.index()].cached_tau {
            if now.saturating_since(at) < SimDuration::from_secs(TAU_CACHE_SECS) {
                return tau;
            }
        }
        let node = &self.nodes[i.index()];
        let ttl = SimDuration::from_secs_f64(self.protocol.neighbor_ttl_secs);
        let mut xis = node.table.fresh_xis(now, ttl);
        xis.push(node.metric.value());
        let tau = optimize_tau_max(
            &xis,
            self.protocol.tau_collision_target,
            self.protocol.tau_max_cap_slots,
        );
        self.nodes[i.index()].cached_tau = Some((now, tau));
        tau
    }

    /// Contention window for node `i`: Eq. 14 over the expected replier
    /// count, or the fixed NOOPT value.
    fn window_for(&self, now: SimTime, i: NodeId) -> u32 {
        if !self.mac.adaptive_window {
            return self.protocol.cts_window_fixed as u32;
        }
        let node = &self.nodes[i.index()];
        let ttl = SimDuration::from_secs_f64(self.protocol.neighbor_ttl_secs);
        // Expected repliers: fresh higher-metric neighbors, plus one for a
        // possibly-unknown sink in range.
        let n_hat = (node.table.qualified_count(node.metric.value(), now, ttl) as u64 + 1).max(1);
        optimize_cts_window(
            n_hat,
            self.protocol.cts_collision_target,
            self.protocol.cts_window_cap,
        ) as u32
    }

    // ------------------------------------------------------------------
    // Radio plumbing
    // ------------------------------------------------------------------

    fn fill_neighbors(&mut self, now: SimTime, i: NodeId) {
        let range = self.scenario.channel.range_m;
        if let Some(radius) = self.lazy.as_ref().map(|l| l.query_radius) {
            // Lazy mode: stored positions may lag truth by up to
            // `sync_every · v_max` metres (center included until the line
            // below), so query at the inflated radius — anything truly in
            // range is guaranteed to fall inside it — then catch the
            // candidates up and re-filter at the true range. `retain`
            // preserves the ascending order downstream relies on.
            self.catch_up_node(i.index(), now);
            self.grid
                .query_within(&self.positions, i.index(), radius, &mut self.scratch.idx);
            let mut idx = std::mem::take(&mut self.scratch.idx);
            let center = self.positions[i.index()];
            {
                // Drift-bound pruning: a candidate whose *stale* position
                // already lies farther than `range + v_max · staleness`
                // cannot be within range now, so it needs neither catch-up
                // nor a second look. This keeps the expanded-radius query
                // from turning every contact check into a ring of
                // trajectory advances.
                let lazy = self.lazy.as_ref().expect("lazy branch");
                let vmax = lazy.vmax;
                let positions = &self.positions;
                idx.retain(|&j| {
                    let s = now.saturating_since(lazy.synced_at[j]).as_secs_f64();
                    let reach = range + vmax * s;
                    positions[j].distance_sq(center) <= reach * reach
                });
            }
            for &j in &idx {
                self.catch_up_node(j, now);
            }
            let r2 = range * range;
            idx.retain(|&j| self.positions[j].distance_sq(center) <= r2);
            self.scratch.idx = idx;
        } else {
            // Ticked mode: positions are dense and exact, so the query is
            // memoizable. See [`ContactCache`] for the exactness argument;
            // on either path `scratch.idx` ends up holding precisely the
            // ascending indices a bare `query_within(range)` would return.
            let Simulation {
                grid,
                positions,
                scratch,
                contacts,
                coast,
                ..
            } = self;
            let coast = coast.as_mut().expect("ticked mode has a coast ledger");
            let slot = i.index();
            let t = coast.tick_no;
            coast.materialize(slot, t, positions);
            let center = positions[slot];
            let r2 = range * range;
            let Some(cache) = contacts.as_mut() else {
                // Cache disabled (the differential-testing knob): same
                // materialize-then-exact-query sequence as a cache miss,
                // just at the true range with nothing memoized.
                grid.collect_neighborhood(slot, range, &mut scratch.mat);
                for &j in &scratch.mat {
                    coast.materialize(j, t, positions);
                }
                grid.query_within(positions, slot, range, &mut scratch.idx);
                scratch.ids.clear();
                let (idx, ids) = (&scratch.idx, &mut scratch.ids);
                ids.extend(idx.iter().map(|&j| NodeId(j)));
                return;
            };
            let fresh = cache.gen[slot] == cache.arena_gen
                && now.saturating_since(cache.at[slot]) <= cache.valid_for;
            if fresh {
                cache.hits += 1;
                let s = cache.start[slot] as usize;
                let l = cache.len[slot] as usize;
                scratch.idx.clear();
                for k in s..s + l {
                    let j = cache.arena[k] as usize;
                    coast.materialize(j, t, positions);
                    if positions[j].distance_sq(center) <= r2 {
                        scratch.idx.push(j);
                    }
                }
            } else {
                cache.misses += 1;
                // Catch the whole candidate neighbourhood up to the current
                // tick before the exact query reads it: the ring superset is
                // every node the expanded-radius query could inspect, and a
                // node cannot leave its grid cell mid-lease, so the buckets
                // themselves are already current.
                grid.collect_neighborhood(slot, range + cache.margin_m, &mut scratch.mat);
                for &j in &scratch.mat {
                    coast.materialize(j, t, positions);
                }
                grid.query_within(positions, slot, range + cache.margin_m, &mut scratch.idx);
                if cache.arena.len() + scratch.idx.len() > cache.cap {
                    cache.arena.clear();
                    cache.arena_gen = cache.arena_gen.wrapping_add(1);
                }
                cache.at[slot] = now;
                cache.gen[slot] = cache.arena_gen;
                cache.start[slot] = u32::try_from(cache.arena.len()).expect("arena fits u32");
                cache.len[slot] = scratch.idx.len() as u32;
                cache.arena.extend(scratch.idx.iter().map(|&j| j as u32));
                scratch
                    .idx
                    .retain(|&j| positions[j].distance_sq(center) <= r2);
            }
        }
        self.scratch.ids.clear();
        self.scratch
            .ids
            .extend(self.scratch.idx.iter().map(|&j| NodeId(j)));
    }

    fn begin_frame(
        &mut self,
        now: SimTime,
        i: NodeId,
        payload: MacPayload,
        bits: u64,
        plan: TxPlan,
    ) {
        self.fill_neighbors(now, i);
        self.emit(TraceEvent::FrameSent {
            at: now,
            node: i,
            tag: payload.tag(),
            bits,
        });
        self.metrics.frames_by_kind[RunMetrics::kind_index(payload.tag())] += 1;
        if payload.is_control() {
            self.metrics.control_bits += bits;
        } else {
            self.metrics.data_bits += bits;
        }
        {
            let node = &mut self.nodes[i.index()];
            node.transition(MacState::Transmitting(plan));
            node.meter
                .set_state(now, RadioState::Tx, &self.scenario.energy);
        }
        self.sync_hot(i.index());
        self.medium.set_listening(i, false);
        let handle = self.medium.begin_tx(
            now,
            Frame {
                src: i,
                bits,
                payload,
            },
            &self.scratch.ids,
        );
        let airtime = self.scenario.channel.airtime(bits);
        self.sched_after(airtime, Event::TxEnd(i, handle));
    }

    fn on_tx_end(&mut self, now: SimTime, i: NodeId, handle: TxHandle) {
        let mut outcome = self.medium.end_tx(now, handle);
        if !self.nodes[i.index()].alive {
            // The transmitter crashed mid-frame: the frame is truncated on
            // the air and nobody receives it. The crash already tore down
            // the node's MAC state, so only the medium needed closing.
            self.metrics.faults.frames_dropped += outcome.delivered_to.len() as u64;
            if let MacPayload::Schedule { receivers, .. } = outcome.frame.payload {
                self.scratch.recycle_schedule(receivers);
            }
            return;
        }
        let plan = match self.nodes[i.index()].state {
            MacState::Transmitting(p) => p,
            other => unreachable!("TxEnd in state {other:?}"),
        };
        // Half-duplex turnaround: back to listening.
        {
            let node = &mut self.nodes[i.index()];
            node.meter
                .set_state(now, RadioState::Idle, &self.scenario.energy);
        }
        self.medium.set_listening(i, true);

        // Sender-side progression first (receivers are driven by the
        // deliveries below and by their own timers).
        match plan {
            TxPlan::Preamble => {
                let (xi, ftd, window, msg) = {
                    let node = &self.nodes[i.index()];
                    let ctx = node.sender_ctx.as_ref().expect("preamble without ctx");
                    let (xi, ftd) = self.policy.advertise(i, node.metric.value(), &ctx.msg);
                    (xi, ftd, ctx.window_slots, ctx.msg.id)
                };
                // A liar that flipped mid-cycle inflates its RTS too: a
                // perfect ξ and a maximally fault-tolerant message draw
                // receivers it will never actually hand data to usefully.
                let (xi, ftd) = if self.behaviors.any()
                    && self.behaviors.get(i.index()) == NodeBehavior::Liar
                {
                    self.metrics.faults.lied_advertisements += 1;
                    (1.0, ftd.max(1.0))
                } else {
                    (xi, ftd)
                };
                self.begin_frame(
                    now,
                    i,
                    MacPayload::Rts {
                        xi,
                        ftd,
                        window_slots: window,
                        msg,
                    },
                    self.scenario.control_bits,
                    TxPlan::Rts,
                );
            }
            TxPlan::Rts => {
                let window = self.nodes[i.index()]
                    .sender_ctx
                    .as_ref()
                    .expect("RTS without ctx")
                    .window_slots;
                self.nodes[i.index()].transition(MacState::CollectCts);
                self.sync_hot(i.index());
                let wait = self.timing.cts_slot * u64::from(window) + self.timing.gap;
                self.schedule_timer(i, wait, Timer::CtsWindowEnd);
            }
            TxPlan::Cts => {
                let ctx = self.nodes[i.index()].receiver_ctx.expect("CTS without ctx");
                self.nodes[i.index()].transition(MacState::AwaitSchedule);
                self.sync_hot(i.index());
                let deadline = ctx.rts_end
                    + self.timing.cts_slot * u64::from(ctx.window_slots)
                    + self.timing.ctrl
                    + self.timing.gap * 3;
                let delay = deadline.saturating_since(now).max(self.timing.gap);
                self.schedule_timer(i, delay, Timer::Guard);
            }
            TxPlan::Schedule => {
                let msg = {
                    let node = &self.nodes[i.index()];
                    node.sender_ctx.as_ref().expect("schedule without ctx").msg
                };
                self.begin_frame(
                    now,
                    i,
                    MacPayload::Data { msg },
                    self.scenario.data_bits,
                    TxPlan::Data,
                );
            }
            TxPlan::Data => {
                let receivers = {
                    let node = &self.nodes[i.index()];
                    node.sender_ctx
                        .as_ref()
                        .and_then(|c| c.selection.as_ref())
                        .map_or(0, |s| s.receivers.len() as u64)
                };
                self.nodes[i.index()].transition(MacState::AwaitAcks);
                self.sync_hot(i.index());
                let wait = self.timing.ack_slot * receivers + self.timing.gap * 2;
                self.schedule_timer(i, wait, Timer::AckWindowEnd);
            }
            TxPlan::Ack => {
                // Receive exchange complete on the receiver side.
                self.end_cycle(now, i, true);
            }
        }

        // Deliveries and collision losses.
        if self.trace.is_some() {
            let tag = outcome.frame.payload.tag();
            let from = outcome.frame.src;
            for &r in &outcome.delivered_to {
                self.emit(TraceEvent::FrameDelivered {
                    at: now,
                    from,
                    to: r,
                    tag,
                });
            }
            for &r in &outcome.collided_at {
                self.emit(TraceEvent::Collision {
                    at: now,
                    at_node: r,
                });
            }
        }
        let delivered_to = std::mem::take(&mut outcome.delivered_to);
        let is_data = matches!(outcome.frame.payload, MacPayload::Data { .. });
        let src = outcome.frame.src;
        // A forger corrupts every DATA frame it relays. The corruption is
        // in the payload, so each receiver detects and discards it (same
        // observable outcome as the DataCorruption fault, but attributed to
        // the forger); the sender keeps the copy queued and retries.
        let src_forges = is_data
            && self.behaviors.any()
            && self.behaviors.get(src.index()) == NodeBehavior::Forger;
        if src_forges {
            self.metrics.faults.forged_frames += 1;
        }
        for r in delivered_to {
            // Fault filters. All of them are inert on a fault-free run:
            // every node is alive, both drop tables are empty and every
            // corruption probability is zero, so no branch is taken and no
            // random number is drawn. The liveness read comes from the
            // dense mirror — this loop fans out to every audible node, so
            // pulling a full `Node` per receiver would dominate it.
            debug_assert_eq!(self.hot.alive[r.index()], self.nodes[r.index()].alive);
            if !self.hot.alive[r.index()] {
                self.metrics.faults.frames_dropped += 1;
                if is_data {
                    self.metrics.faults.retransmissions_triggered += 1;
                }
                continue;
            }
            let drop_p = self.link_drop_prob(src, r);
            if drop_p > 0.0 && self.fault_rng.gen_bool(drop_p) {
                self.metrics.faults.frames_dropped += 1;
                if is_data {
                    self.metrics.faults.retransmissions_triggered += 1;
                }
                continue;
            }
            if is_data {
                let corrupt_p = self.nodes[r.index()].corrupt_rx_prob;
                if corrupt_p > 0.0 && self.fault_rng.gen_bool(corrupt_p) {
                    self.metrics.faults.data_corrupted += 1;
                    self.metrics.faults.retransmissions_triggered += 1;
                    continue;
                }
            }
            if src_forges {
                self.metrics.faults.forged_detected += 1;
                self.metrics.faults.retransmissions_triggered += 1;
                continue;
            }
            self.handle_rx(now, r, &outcome.frame);
        }
        // The SCHEDULE payload carries a pooled receiver list; now that the
        // frame is fully processed, reclaim it for the next multicast.
        if let MacPayload::Schedule { receivers, .. } = outcome.frame.payload {
            self.scratch.recycle_schedule(receivers);
        }
    }

    // ------------------------------------------------------------------
    // Reception
    // ------------------------------------------------------------------

    /// Does node `r` qualify as a receiver for the advertised RTS?
    fn qualified(
        &self,
        r: NodeId,
        sender: NodeId,
        sender_xi: f64,
        ftd: f64,
        msg: MessageId,
    ) -> bool {
        debug_assert_eq!(self.hot.sink[r.index()], self.nodes[r.index()].is_sink());
        if self.hot.sink[r.index()] {
            // Sinks always qualify: ξ = 1 and effectively infinite buffer.
            return true;
        }
        let node = &self.nodes[r.index()];
        // The ξ comparison screens most receivers out before the queue is
        // consulted, so it reads the dense mirror.
        debug_assert_eq!(
            self.hot.xi[r.index()].to_bits(),
            node.metric.value().to_bits()
        );
        let xi = self.hot.xi[r.index()];
        self.policy.qualifies(
            &RxView {
                xi,
                queue: &node.queue,
            },
            &RtsInfo {
                sender,
                xi: sender_xi,
                ftd,
                msg,
            },
        )
    }

    fn handle_rx(&mut self, now: SimTime, r: NodeId, frame: &Frame<MacPayload>) {
        let src = frame.src;
        // Policy estimator hook: any heard frame is a contact observation.
        // Builtin returns `None` unconditionally (the compiler folds the
        // branch away), so the pre-seam runs stay bit-identical.
        if !self.hot.sink[r.index()] {
            let src_is_sink = self.hot.sink[src.index()];
            if let Some(m) = self.policy.on_frame_from(r, src, src_is_sink, now) {
                self.nodes[r.index()].metric = DeliveryProb::new(m);
                self.sync_hot(r.index());
            }
        }
        match &frame.payload {
            MacPayload::Preamble => {
                // Preambles fan out to every audible node, so this filter
                // is the hottest state read in the loop — serve it from
                // the dense mirror.
                debug_assert_eq!(self.hot.state[r.index()], self.nodes[r.index()].state);
                if self.hot.state[r.index()].receptive() {
                    self.nodes[r.index()].transition(MacState::AwaitRts);
                    self.sync_hot(r.index());
                    let deadline = self.timing.ctrl + self.timing.gap * 2;
                    self.schedule_timer(r, deadline, Timer::Guard);
                }
            }
            MacPayload::Rts {
                xi,
                ftd,
                window_slots,
                msg,
            } => {
                self.nodes[r.index()].table.observe(src, *xi, now);
                let state = self.nodes[r.index()].state;
                if !(state == MacState::AwaitRts || state.receptive()) {
                    return;
                }
                // Behavior overrides sit *around* the policy's qualify
                // rule, so every policy faces the same adversaries:
                // selfish nodes never CTS-reply, black holes always do,
                // liars/forgers volunteer whenever they can physically
                // store the copy (their CTS then inflates the
                // advertisement).
                let qualifies = if self.behaviors.any() && !self.hot.sink[r.index()] {
                    match self.behaviors.get(r.index()) {
                        NodeBehavior::Honest => self.qualified(r, src, *xi, *ftd, *msg),
                        NodeBehavior::Selfish => false,
                        NodeBehavior::Blackhole => true,
                        NodeBehavior::Liar | NodeBehavior::Forger => {
                            let queue = &self.nodes[r.index()].queue;
                            !queue.contains(*msg)
                                && queue.available_space_for(Ftd::new((*ftd).clamp(0.0, 1.0))) > 0
                        }
                    }
                } else {
                    self.qualified(r, src, *xi, *ftd, *msg)
                };
                if qualifies {
                    let slot = {
                        let node = &mut self.nodes[r.index()];
                        node.rng
                            .gen_range_inclusive(1, u64::from(*window_slots).max(1))
                            as u32
                    };
                    self.nodes[r.index()].receiver_ctx = Some(ReceiverCtx {
                        sender: src,
                        msg: *msg,
                        rts_ftd: *ftd,
                        window_slots: *window_slots,
                        rts_end: now,
                        assigned_ftd: None,
                        ack_slot: 0,
                    });
                    self.nodes[r.index()].transition(MacState::CtsPending);
                    self.sync_hot(r.index());
                    let delay = self.timing.cts_slot * u64::from(slot - 1) + self.timing.gap;
                    self.schedule_timer(r, delay, Timer::CtsSlot);
                } else {
                    // NAV: defer until the overheard exchange finishes.
                    self.nodes[r.index()].transition(MacState::Passive);
                    self.sync_hot(r.index());
                    let nav = self.timing.nav_after_rts(*window_slots);
                    self.schedule_timer(r, nav, Timer::Guard);
                }
            }
            MacPayload::Cts {
                xi,
                buffer_space,
                msg,
            } => {
                self.nodes[r.index()].table.observe(src, *xi, now);
                let state = self.nodes[r.index()].state;
                if state == MacState::CollectCts {
                    let node = &mut self.nodes[r.index()];
                    let ctx = node.sender_ctx.as_mut().expect("CollectCts without ctx");
                    if ctx.msg.id == *msg {
                        ctx.candidates.push(Candidate {
                            id: src,
                            xi: *xi,
                            buffer_space: *buffer_space as usize,
                        });
                    }
                } else if state.receptive() {
                    // Third party: stay out of the way (NAV).
                    self.nodes[r.index()].transition(MacState::Passive);
                    self.sync_hot(r.index());
                    let nav = self.timing.nav_overheard();
                    self.schedule_timer(r, nav, Timer::Guard);
                }
            }
            MacPayload::Schedule { receivers, msg } => {
                let state = self.nodes[r.index()].state;
                if state == MacState::AwaitSchedule {
                    let ctx = self.nodes[r.index()]
                        .receiver_ctx
                        .expect("AwaitSchedule without ctx");
                    if ctx.msg != *msg || ctx.sender != src {
                        return;
                    }
                    if let Some(k) = receivers.iter().position(|&(id, _)| id == r) {
                        {
                            let node = &mut self.nodes[r.index()];
                            let ctx = node.receiver_ctx.as_mut().expect("ctx vanished");
                            ctx.assigned_ftd = Some(Ftd::new(receivers[k].1.clamp(0.0, 1.0)));
                            ctx.ack_slot = k as u32;
                        }
                        self.nodes[r.index()].transition(MacState::AwaitData);
                        self.sync_hot(r.index());
                        let deadline = self.timing.data + self.timing.gap * 2;
                        self.schedule_timer(r, deadline, Timer::Guard);
                    } else {
                        // Replied but not selected: wait out the exchange.
                        self.nodes[r.index()].transition(MacState::Passive);
                        self.sync_hot(r.index());
                        let nav = self.timing.data
                            + self.timing.ack_slot * receivers.len() as u64
                            + self.timing.gap * 3;
                        self.schedule_timer(r, nav, Timer::Guard);
                    }
                } else if state.receptive() {
                    self.nodes[r.index()].transition(MacState::Passive);
                    self.sync_hot(r.index());
                    let nav = self.timing.nav_overheard();
                    self.schedule_timer(r, nav, Timer::Guard);
                }
            }
            MacPayload::Data { msg } => {
                if self.nodes[r.index()].state != MacState::AwaitData {
                    return;
                }
                let ctx = self.nodes[r.index()]
                    .receiver_ctx
                    .expect("AwaitData without ctx");
                if ctx.msg != msg.id || ctx.sender != src {
                    return;
                }
                debug_assert_eq!(self.hot.sink[r.index()], self.nodes[r.index()].is_sink());
                if self.hot.sink[r.index()] {
                    self.record_sink_reception(now, r, &msg.hopped());
                } else {
                    // Any adversarial receiver captures the copy: the ACK it
                    // is about to send makes the sender count the copy as
                    // moved (or, for a lied ξ = 1, delivered) and drop it.
                    // Black holes destroy the copy outright; the others let
                    // it rot in their queue (they never enter the sender
                    // phase).
                    let behavior = if self.behaviors.any() {
                        self.behaviors.get(r.index())
                    } else {
                        NodeBehavior::Honest
                    };
                    if behavior.is_adversarial() {
                        self.metrics.faults.copies_captured += 1;
                    }
                    if behavior == NodeBehavior::Blackhole {
                        // Silently dropped: no queue insert, but the MAC
                        // exchange (ACK below) completes normally.
                    } else {
                        let assigned = ctx.assigned_ftd.unwrap_or(msg.ftd);
                        self.insert_into_queue(now, r, msg.hopped().with_ftd(assigned));
                    }
                }
                self.nodes[r.index()].transition(MacState::AckPending);
                self.sync_hot(r.index());
                let delay = self.timing.ack_slot * u64::from(ctx.ack_slot) + self.timing.gap;
                self.schedule_timer(r, delay, Timer::AckSlot);
            }
            MacPayload::Ack { msg } => {
                if self.nodes[r.index()].state != MacState::AwaitAcks {
                    return;
                }
                let node = &mut self.nodes[r.index()];
                if let Some(ctx) = node.sender_ctx.as_mut() {
                    if ctx.msg.id == *msg && !ctx.acked.contains(&src) {
                        ctx.acked.push(src);
                    }
                }
            }
        }
    }

    fn record_sink_reception(&mut self, now: SimTime, sink: NodeId, msg: &Message) {
        self.metrics.sink_receptions += 1;
        if self.delivered_ids.insert(msg.id) {
            let delay = now.saturating_since(msg.created).as_secs_f64();
            self.metrics.record_delivery(delay);
            if self.fault_regime {
                self.metrics.faults.deliveries_despite_faults += 1;
            }
            self.deliveries.push(DeliveryRecord {
                msg: msg.id,
                origin: msg.origin,
                created_secs: msg.created.as_secs_f64(),
                delay_secs: delay,
                sink,
                hops: msg.hops,
            });
            self.emit(TraceEvent::Delivered {
                at: now,
                msg: msg.id,
                sink,
                delay_secs: delay,
            });
        }
    }

    fn insert_into_queue(&mut self, now: SimTime, i: NodeId, msg: Message) {
        // The FTD-threshold purge (Sec. 3.1.2's second drop occasion)
        // applies to the sender's retained copy after Eq. 3 — see
        // `finalize_multicast`. A copy a receiver just agreed to take is
        // stored even at a high FTD: it ranks last in the queue and is the
        // first eviction victim, but it still delivers if its carrier
        // reaches a sink. Purging such copies at insert would let a single
        // multicast annihilate every copy of a message.
        // Overapproximate queue occupancy for the parallel executor's
        // interaction quarantine: set on every insert attempt, cleared
        // lazily at classification when the queue is seen empty. A stale
        // `true` only costs parallelism, never correctness.
        self.par.occupied[i.index()] = true;
        let outcome = self.nodes[i.index()].queue.insert(msg);
        match outcome {
            InsertOutcome::Inserted
            | InsertOutcome::ReplacedDuplicate
            | InsertOutcome::RejectedDuplicate => {}
            InsertOutcome::InsertedEvicting(evicted) => {
                self.metrics.drops_overflow += 1;
                self.policy.on_copy_discarded(i, &evicted);
                self.emit(TraceEvent::Dropped {
                    at: now,
                    node: i,
                    msg: evicted.id,
                    reason: DropReason::Overflow,
                });
            }
            InsertOutcome::RejectedFull => {
                self.metrics.drops_rejected += 1;
                self.emit(TraceEvent::Dropped {
                    at: now,
                    node: i,
                    msg: msg.id,
                    reason: DropReason::QueueFull,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    fn finish_report(self) -> SimReport {
        let duration = SimTime::from_secs(self.scenario.duration_secs);
        self.finish_report_at(duration)
    }

    fn finish_report_at(mut self, duration: SimTime) -> SimReport {
        // Finalize the observer first: its closing snapshot reads the
        // meters *before* the loop below closes their open intervals.
        if let Some(recorder) = self.observer.take() {
            let snap = self.world_snapshot(duration);
            recorder.finish(duration, Some(snap));
        }
        let energy_model = &self.scenario.energy;
        let mut total_energy = 0.0;
        let mut xi_sum = 0.0;
        let mut energy_by_state = [0.0f64; 4];
        let mut node_summaries = Vec::with_capacity(self.scenario.sensors);
        for node in &mut self.nodes {
            if node.is_sink() {
                continue;
            }
            // Close the meter's open interval so the per-state figures
            // include it.
            let final_state = node.meter.state();
            node.meter.set_state(duration, final_state, energy_model);
            let energy = node.meter.total_energy_j(duration, energy_model);
            total_energy += energy;
            xi_sum += node.metric.value();
            let by_state = [
                node.meter.energy_in_state_j(RadioState::Sleep),
                node.meter.energy_in_state_j(RadioState::Idle),
                node.meter.energy_in_state_j(RadioState::Rx),
                node.meter.energy_in_state_j(RadioState::Tx),
            ];
            for (acc, v) in energy_by_state.iter_mut().zip(by_state) {
                *acc += v;
            }
            node_summaries.push(NodeSummary {
                id: node.id,
                final_metric: node.metric.value(),
                energy_j: energy,
                queue_len: node.queue.len(),
                switches: node.meter.switch_count(),
                energy_by_state_j: by_state,
            });
        }
        let sensors = self.scenario.sensors;
        let secs = duration.as_secs_f64();
        let counters = self.medium.counters();
        let m = self.metrics;
        // Lifetime tier: death anchors from the live census plus the final
        // energy spread. The histogram's upper edge sits just above the
        // maximum observed energy (exact binary multiplier, so the layout
        // is reproducible bit-for-bit across runs with equal energies).
        let lifetime = {
            let max_e = node_summaries
                .iter()
                .map(|n| n.energy_j)
                .fold(0.0f64, f64::max);
            let mut energy_hist = Histogram::new(0.0, max_e.max(1e-6) * 1.015625, 16);
            for n in &node_summaries {
                energy_hist.record(n.energy_j);
            }
            Lifetime {
                first_death_secs: self.lifetime.first_death_secs(),
                half_death_secs: self.lifetime.half_death_secs(),
                last_death_secs: self.lifetime.last_death_secs(),
                alive_at_end: self.lifetime.alive() as u64,
                energy_hist,
            }
        };
        SimReport {
            protocol: self.policy.label().to_owned(),
            seed: self.seed,
            duration_secs: secs,
            sensors,
            sinks: self.scenario.sinks,
            generated: m.generated,
            delivered: m.delivered,
            sink_receptions: m.sink_receptions,
            mean_delay_secs: m.delay.mean(),
            p95_delay_secs: m.delay_hist.quantile(0.95).unwrap_or(0.0),
            avg_sensor_power_mw: if sensors > 0 && secs > 0.0 {
                total_energy / (sensors as f64 * secs) * 1_000.0
            } else {
                0.0
            },
            total_sensor_energy_j: total_energy,
            energy_by_state_j: energy_by_state,
            control_bits: m.control_bits,
            data_bits: m.data_bits,
            frames_sent: counters.frames_sent,
            collisions: counters.collisions,
            drops_overflow: m.drops_overflow,
            drops_rejected: m.drops_rejected,
            drops_ftd: m.drops_ftd,
            attempts: m.attempts,
            failed_attempts: m.failed_attempts,
            multicasts: m.multicasts,
            copies_sent: m.copies_sent,
            events_processed: self.events.popped() - self.observe_ticks,
            faults: m.faults,
            lifetime,
            mean_final_xi: xi_sum / sensors as f64,
            mean_hops: if self.deliveries.is_empty() {
                0.0
            } else {
                self.deliveries
                    .iter()
                    .map(|d| f64::from(d.hops))
                    .sum::<f64>()
                    / self.deliveries.len() as f64
            },
            delay_stats: m.delay,
            delay_hist: m.delay_hist,
            deliveries: self.deliveries,
            node_summaries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScenarioParams {
        ScenarioParams {
            sensors: 12,
            sinks: 1,
            duration_secs: 400,
            ..ScenarioParams::paper_default()
        }
    }

    #[test]
    fn simulation_runs_and_generates_traffic() {
        let report = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(1)
            .build()
            .run();
        assert!(report.generated > 0, "no traffic generated");
        assert!(report.attempts > 0, "no sender attempts");
        assert!(report.delivered <= report.generated);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .build()
            .run();
        let b = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .build()
            .run();
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.collisions, b.collisions);
        assert!((a.total_sensor_energy_j - b.total_sensor_energy_j).abs() < 1e-9);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(1)
            .build()
            .run();
        let b = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(2)
            .build()
            .run();
        // Traffic schedules differ almost surely.
        assert!(a.frames_sent != b.frames_sent || a.generated != b.generated);
    }

    #[test]
    fn nosleep_burns_more_power_than_opt() {
        let opt = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(3)
            .build()
            .run();
        let nosleep = Simulation::builder(tiny(), ProtocolKind::NoSleep)
            .seed(3)
            .build()
            .run();
        assert!(
            nosleep.avg_sensor_power_mw > 2.0 * opt.avg_sensor_power_mw,
            "NOSLEEP {} mW should dwarf OPT {} mW",
            nosleep.avg_sensor_power_mw,
            opt.avg_sensor_power_mw
        );
    }

    #[test]
    fn all_variants_run_clean() {
        for kind in ProtocolKind::ALL {
            let report = Simulation::builder(
                ScenarioParams {
                    sensors: 8,
                    sinks: 1,
                    duration_secs: 200,
                    ..ScenarioParams::paper_default()
                },
                kind,
            )
            .seed(5)
            .build()
            .run();
            assert!(report.generated > 0, "{kind}: nothing generated");
        }
    }

    #[test]
    fn sinks_never_generate_or_sleep() {
        let scenario = tiny();
        let sim = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
            .seed(9)
            .build();
        for node in &sim.nodes[scenario.sensors..] {
            assert!(node.is_sink());
            assert_eq!(node.state, MacState::Passive);
        }
        let report = sim.run();
        // All generated messages come from sensors (sink ids never appear
        // as origins because sinks get no DataGen events).
        assert!(report.generated > 0);
    }

    #[test]
    fn timing_derives_from_channel_and_gap() {
        let scenario = ScenarioParams::paper_default();
        let protocol = ProtocolParams::paper_default();
        let t = Timing::new(&scenario, &protocol);
        assert_eq!(t.ctrl, SimDuration::from_millis(5));
        assert_eq!(t.data, SimDuration::from_millis(100));
        assert_eq!(t.cts_slot, t.ctrl + t.gap);
        assert_eq!(t.listen_slot, t.ctrl);
        // NAV must outlast the worst-case exchange it defers to.
        let nav = t.nav_after_rts(8);
        assert!(nav > t.cts_slot * 8 + t.data);
        assert!(t.nav_overheard() > t.data);
    }

    #[test]
    fn qualification_follows_the_variant_rules() {
        let scenario = tiny();
        let mk = |kind: ProtocolKind| Simulation::builder(scenario.clone(), kind).seed(1).build();

        // FtdThreshold: strict metric ordering + space for the class.
        let mut sim = mk(ProtocolKind::Opt);
        let r = NodeId(0);
        sim.nodes[r.index()].metric = DeliveryProb::new(0.5);
        // Direct metric pokes bypass the engine's mutation sites, so the
        // hot mirror must be refreshed by hand.
        sim.sync_hot(r.index());
        let s = NodeId(5);
        assert!(sim.qualified(r, s, 0.4, 0.0, MessageId(9)));
        assert!(
            !sim.qualified(r, s, 0.5, 0.0, MessageId(9)),
            "ties do not qualify"
        );
        assert!(!sim.qualified(r, s, 0.6, 0.0, MessageId(9)));

        // Holding a copy disqualifies.
        let msg = Message::sensed(MessageId(9), NodeId(3), SimTime::ZERO);
        sim.nodes[r.index()].queue.insert(msg);
        assert!(!sim.qualified(r, s, 0.1, 0.0, MessageId(9)));
        assert!(
            sim.qualified(r, s, 0.1, 0.0, MessageId(10)),
            "other ids fine"
        );

        // Sinks always qualify.
        let sink = NodeId(scenario.sensors);
        assert!(sim.nodes[sink.index()].is_sink());
        assert!(sim.qualified(sink, s, 0.99, 0.99, MessageId(9)));

        // SinkOnly: sensors never qualify.
        let sim = mk(ProtocolKind::Direct);
        assert!(!sim.qualified(r, s, 0.0, 0.0, MessageId(9)));
        assert!(sim.qualified(sink, s, 0.9, 0.0, MessageId(9)));

        // AllResponders: metric ignored, only space matters.
        let sim = mk(ProtocolKind::Epidemic);
        assert!(sim.qualified(r, s, 0.99, 0.0, MessageId(9)));
    }

    #[test]
    fn select_for_respects_variant_semantics() {
        let scenario = tiny();
        let cands = vec![
            Candidate {
                id: NodeId(1),
                xi: 0.9,
                buffer_space: 4,
            },
            Candidate {
                id: NodeId(2),
                xi: 0.7,
                buffer_space: 4,
            },
            Candidate {
                id: NodeId(3),
                xi: 0.5,
                buffer_space: 0,
            },
        ];

        let sim = Simulation::builder(scenario.clone(), ProtocolKind::Zbr)
            .seed(1)
            .build();
        let sel = sim.select_for(0.1, Ftd::NEW, &cands);
        assert_eq!(sel.receivers.len(), 1, "ZBR moves a single copy");
        assert_eq!(sel.receivers[0].0, NodeId(1), "to the best replier");

        let sim = Simulation::builder(scenario.clone(), ProtocolKind::Epidemic)
            .seed(1)
            .build();
        let sel = sim.select_for(0.1, Ftd::NEW, &cands);
        assert_eq!(sel.receivers.len(), 2, "flooding takes all with space");

        let sim = Simulation::builder(scenario, ProtocolKind::Opt)
            .seed(1)
            .build();
        let sel = sim.select_for(0.1, Ftd::NEW, &cands);
        assert!(!sel.is_empty());
        assert!(sel.combined_delivery > 0.9);
    }

    #[test]
    fn tau_cache_avoids_resolving_within_the_window() {
        let mut sim = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(1)
            .build();
        let i = NodeId(0);
        let t0 = SimTime::from_secs(100);
        let tau1 = sim.tau_max_for(t0, i);
        let (cached_at, cached) = sim.nodes[i.index()].cached_tau.expect("cache filled");
        assert_eq!(cached_at, t0);
        assert_eq!(cached, tau1);
        // A call within the cache window returns the memo even if the
        // table changed.
        sim.nodes[i.index()].table.observe(NodeId(5), 0.9, t0);
        let tau2 = sim.tau_max_for(t0 + SimDuration::from_secs(1), i);
        assert_eq!(tau2, tau1);
        // After the window it re-solves and refreshes the cache stamp.
        let _ = sim.tau_max_for(t0 + SimDuration::from_secs(60), i);
        assert_eq!(
            sim.nodes[i.index()].cached_tau.unwrap().0,
            t0 + SimDuration::from_secs(60)
        );
    }

    #[test]
    fn fixed_parameters_ignore_the_table() {
        let mut sim = Simulation::builder(tiny(), ProtocolKind::NoOpt)
            .seed(1)
            .build();
        let i = NodeId(0);
        sim.nodes[i.index()]
            .table
            .observe(NodeId(5), 0.9, SimTime::ZERO);
        let p = ProtocolParams::paper_default();
        assert_eq!(
            sim.tau_max_for(SimTime::from_secs(5), i),
            p.tau_max_fixed_slots
        );
        assert_eq!(
            u64::from(sim.window_for(SimTime::from_secs(5), i)),
            p.cts_window_fixed
        );
    }

    #[test]
    fn alternative_mobility_models_run_and_differ() {
        use crate::params::MobilityKind;
        let mut base = tiny();
        base.duration_secs = 300;
        let mut reports = Vec::new();
        for kind in [
            MobilityKind::ZoneBased,
            MobilityKind::RandomWaypoint,
            MobilityKind::RandomWalk,
        ] {
            let mut scenario = base.clone();
            scenario.mobility = kind;
            let r = Simulation::builder(scenario, ProtocolKind::Opt)
                .seed(5)
                .build()
                .run();
            assert!(r.generated > 0, "{kind:?} generated nothing");
            reports.push(r);
        }
        // Different contact patterns change the MAC's behaviour (node RNG
        // streams interleave traffic and protocol draws, so even the
        // generation counts may drift slightly).
        assert!(
            reports[0].frames_sent != reports[1].frames_sent
                || reports[1].frames_sent != reports[2].frames_sent,
            "mobility model had no effect on the MAC"
        );
    }

    #[test]
    fn sink_placement_is_spread_and_stationary() {
        let scenario = ScenarioParams::paper_default().with_sinks(3);
        let sim = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
            .seed(1)
            .build();
        let sinks: Vec<Vec2> = (0..3)
            .map(|j| sim.positions[scenario.sensors + j])
            .collect();
        // Spread: pairwise distances well above a transmission range.
        for a in 0..3 {
            for b in (a + 1)..3 {
                assert!(
                    sinks[a].distance(sinks[b]) > 30.0,
                    "sinks {a} and {b} clumped"
                );
            }
        }
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let base = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .build()
            .run();
        let faulted = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .faults(FaultPlan::default())
            .build()
            .run();
        assert_eq!(base.generated, faulted.generated);
        assert_eq!(base.delivered, faulted.delivered);
        assert_eq!(base.frames_sent, faulted.frames_sent);
        assert_eq!(base.collisions, faulted.collisions);
        assert!(!faulted.faults.any(), "{:?}", faulted.faults);
    }

    #[test]
    fn battery_deaths_count_and_lose_queued_copies() {
        let mut plan = FaultPlan::default();
        for i in 0..6 {
            plan.push(100.0, FaultKind::BatteryDeath(NodeId(i)));
        }
        let r = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .faults(plan)
            .build()
            .run();
        assert_eq!(r.faults.crashes, 6);
        assert_eq!(r.faults.battery_deaths, 6);
        assert_eq!(r.faults.recoveries, 0);
        assert!(
            r.faults.messages_lost_to_crash > 0,
            "six sensors dying at t=100s must carry something: {:?}",
            r.faults
        );
    }

    #[test]
    fn recovery_restores_a_crashed_node_but_not_a_dead_battery() {
        let mut plan = FaultPlan::default();
        plan.push(50.0, FaultKind::NodeCrash(NodeId(0)));
        plan.push(150.0, FaultKind::NodeRecover(NodeId(0)));
        plan.push(60.0, FaultKind::BatteryDeath(NodeId(1)));
        plan.push(160.0, FaultKind::NodeRecover(NodeId(1)));
        let r = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(3)
            .faults(plan)
            .build()
            .run();
        assert_eq!(r.faults.crashes, 2);
        assert_eq!(r.faults.recoveries, 1, "battery death must stay down");
    }

    #[test]
    fn total_link_loss_stops_all_delivery() {
        let r = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .faults(FaultPlan::uniform_link_degradation(1.0))
            .build()
            .run();
        assert!(r.generated > 0);
        assert_eq!(r.delivered, 0, "no frame crosses a fully dropped medium");
        assert_eq!(r.multicasts, 0);
        assert!(r.faults.frames_dropped > 0);
    }

    #[test]
    fn full_corruption_blocks_data_but_not_control() {
        let r = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .faults(FaultPlan::data_corruption(&tiny(), 1.0))
            .build()
            .run();
        assert_eq!(r.delivered, 0);
        assert_eq!(r.multicasts, 0, "corrupted DATA is never acknowledged");
        assert!(r.faults.data_corrupted > 0, "{:?}", r.faults);
        assert!(r.faults.retransmissions_triggered > 0);
        assert!(r.frames_sent > 0, "control exchange still runs");
    }

    #[test]
    fn sink_outage_suppresses_and_resumes_delivery() {
        // The only sink down for the middle half of the run still counts.
        let plan = FaultPlan::sink_outage(&tiny(), 0, 100.0, 300.0);
        let r = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .faults(plan)
            .build()
            .run();
        assert_eq!(r.faults.sink_outages, 1);
        assert_eq!(r.faults.recoveries, 1);
        assert!(
            r.faults.deliveries_despite_faults <= r.delivered,
            "post-fault deliveries are a subset of all deliveries"
        );
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        let plan = FaultPlan::node_failures(&tiny(), 0.4, Some(120.0), 5);
        let run = |p: FaultPlan| {
            Simulation::builder(tiny(), ProtocolKind::Opt)
                .seed(9)
                .faults(p)
                .build()
                .run()
        };
        let a = run(plan.clone());
        let b = run(plan);
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn per_pair_link_degradation_beats_the_global_figure() {
        let mut plan = FaultPlan::default();
        plan.push(
            0.0,
            FaultKind::LinkDegrade {
                a: NodeId(0),
                b: NodeId(1),
                drop_prob: 1.0,
            },
        );
        let r = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .faults(plan)
            .build()
            .run();
        // Only one link is dead; the network routes around it.
        assert!(r.delivered > 0, "one bad link must not kill the network");
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn out_of_range_fault_plan_is_rejected() {
        let mut plan = FaultPlan::default();
        plan.push(1.0, FaultKind::NodeCrash(NodeId(999)));
        let _ = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(1)
            .faults(plan)
            .build();
    }

    #[test]
    fn delivery_happens_in_a_dense_network() {
        // A dense, slow scenario around one sink: deliveries must occur.
        let scenario = ScenarioParams {
            sensors: 20,
            sinks: 4,
            duration_secs: 1200,
            ..ScenarioParams::paper_default()
        };
        let report = Simulation::builder(scenario, ProtocolKind::Opt)
            .seed(11)
            .build()
            .run();
        assert!(report.delivered > 0, "no deliveries: {}", report.summary());
        assert!(report.mean_delay_secs >= 0.0);
    }

    /// An explicitly-attached builtin policy is the default path, so the
    /// two spellings must produce bit-identical runs.
    #[test]
    fn explicit_builtin_policy_matches_the_default() {
        let implicit = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .build()
            .run();
        let explicit = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .policy(PolicySpec::Builtin)
            .build()
            .run();
        assert_eq!(implicit.to_json().render(), explicit.to_json().render());
    }

    /// Attaching an observer must not perturb the run: the `ObserveTick`
    /// handler reads state without touching any RNG stream.
    #[test]
    fn observed_runs_keep_identical_counters() {
        let plain = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .build()
            .run();
        let recorder = crate::observe::MetricsRecorder::new(50.0);
        let observed = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .observe(recorder.clone())
            .build()
            .run();
        assert_eq!(plain.to_json().render(), observed.to_json().render());
        assert!(recorder.totals().0 > 0, "windows were emitted");
    }

    /// The recorder's cumulative totals reconcile exactly with the
    /// end-of-run report, fault plan and all.
    #[test]
    fn observer_totals_reconcile_with_the_report() {
        let plan = FaultPlan::node_failures(&tiny(), 0.3, None, 7);
        let fired_in_run = plan
            .events
            .iter()
            .filter(|e| e.at_secs <= tiny().duration_secs as f64)
            .count() as u64;
        let recorder = crate::observe::MetricsRecorder::new(30.0);
        let report = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .faults(plan)
            .observe(recorder.clone())
            .build()
            .run();
        let (_, totals) = recorder.totals();
        assert_eq!(totals.deliveries, report.delivered);
        assert_eq!(totals.collisions, report.collisions);
        assert_eq!(totals.frames_sent, report.frames_sent);
        assert_eq!(totals.drops_overflow, report.drops_overflow);
        assert_eq!(totals.drops_rejected, report.drops_rejected);
        assert_eq!(totals.drops_ftd, report.drops_ftd);
        assert_eq!(totals.control_bits, report.control_bits);
        assert_eq!(totals.data_bits, report.data_bits);
        assert_eq!(totals.faults, fired_in_run);
    }

    /// A user sink composed with an observer still sees every event,
    /// fault markers included.
    #[test]
    fn observer_composes_with_a_user_trace() {
        let mut plan = FaultPlan::default();
        plan.push(100.0, FaultKind::BatteryDeath(NodeId(0)));
        let shared = crate::trace::SharedTrace::new();
        let recorder = crate::observe::MetricsRecorder::new(100.0);
        let report = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(7)
            .faults(plan)
            .trace(shared.clone())
            .observe(recorder.clone())
            .build()
            .run();
        let events = shared.snapshot();
        let fault_markers = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::FaultInjected { .. }))
            .count() as u64;
        assert_eq!(fault_markers, 1);
        let deliveries = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Delivered { .. }))
            .count() as u64;
        assert_eq!(deliveries, report.delivered);
        assert_eq!(recorder.totals().1.deliveries, report.delivered);
    }

    #[test]
    fn recovery_jitter_comes_from_the_fault_fork() {
        // PR-2 contract: a crash/recover cycle must leave every per-node
        // primary stream exactly where the quiet run would have it — all
        // fault randomness is drawn from the dedicated fork.
        let mut sim = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(11)
            .build();
        let idx = 3;
        let primary_before = sim.nodes[idx].rng.state();
        let fault_before = sim.fault_rng.state();
        let now = sim.now();
        assert!(sim.crash_node(now, NodeId(idx), false));
        assert!(sim.recover_node(now, NodeId(idx)));
        assert_eq!(
            sim.nodes[idx].rng.state(),
            primary_before,
            "crash/recover touched the node's primary RNG stream"
        );
        assert_ne!(
            sim.fault_rng.state(),
            fault_before,
            "the recovery jitter should come from the fault fork"
        );
        // And the untouched population's streams are untouched too.
        let other = sim.nodes[5].rng.state();
        assert!(sim.crash_node(now, NodeId(3), false));
        assert!(sim.recover_node(now, NodeId(3)));
        assert_eq!(sim.nodes[5].rng.state(), other);
    }

    #[test]
    fn stacked_fault_plans_keep_the_hot_mirrors_consistent() {
        // Property sweep over stacked plans: BatteryDeath landing on an
        // already-crashed node takes the early return in `crash_node`,
        // whose debug assertions prove the SoA mirrors never drift. The
        // recovery then stays refused (battery_dead pins the node down).
        let mut rng = SimRng::seed_from(0x057A_C4ED);
        for trial in 0..8 {
            let scenario = tiny();
            let mut plan = FaultPlan::default();
            let victim = rng.gen_range_u64(scenario.sensors as u64) as usize;
            plan.events.push(crate::faults::FaultEvent {
                at_secs: 40.0 + trial as f64,
                kind: FaultKind::NodeCrash(NodeId(victim)),
            });
            plan.events.push(crate::faults::FaultEvent {
                at_secs: 90.0 + trial as f64,
                kind: FaultKind::BatteryDeath(NodeId(victim)),
            });
            plan.events.push(crate::faults::FaultEvent {
                at_secs: 140.0 + trial as f64,
                kind: FaultKind::NodeRecover(NodeId(victim)),
            });
            let sim = Simulation::builder(scenario, ProtocolKind::Opt)
                .seed(100 + trial)
                .faults(plan)
                .build();
            let report = sim.run();
            assert_eq!(report.faults.crashes, 1, "trial {trial}");
            assert_eq!(
                report.faults.recoveries, 0,
                "trial {trial}: battery death must pin the node down"
            );
        }
    }

    #[test]
    fn sharded_runs_report_their_topology() {
        let scenario = ScenarioParams {
            sensors: 24,
            sinks: 2,
            duration_secs: 300,
            ..ScenarioParams::paper_default()
        };
        let sim = Simulation::builder(scenario, ProtocolKind::Opt)
            .seed(3)
            .shards(4)
            .build();
        let stats = sim.shard_stats();
        assert!(stats.shards >= 2, "grid too narrow to shard");
        let report = sim.run();
        assert!(report.generated > 0);
    }

    #[test]
    fn set_shards_back_to_one_restores_the_single_lane_engine() {
        let mut sim = Simulation::builder(tiny(), ProtocolKind::Opt)
            .seed(4)
            .shards(8)
            .build();
        sim.set_shards(1);
        assert_eq!(sim.shard_stats().shards, 1);
        let report = sim.run();
        assert!(report.generated > 0);
    }
}
