//! Nodal delivery probability ξ (paper Sec. 3.1.1, Eq. 1).
//!
//! ξᵢ estimates how likely sensor *i* is to get a data message to a sink.
//! It is the routing metric of the protocol: data flows from low-ξ to
//! high-ξ nodes. The update rule is an exponentially weighted moving
//! average,
//!
//! ```text
//! ξᵢ = (1 − α)·ξᵢ + α·ξₖ   on transmitting to node k (ξₖ = 1 for a sink)
//! ξᵢ = (1 − α)·ξᵢ          on a Δ-timeout with no transmission
//! ```

use serde::{Deserialize, Serialize};

/// A nodal delivery probability, invariantly in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use dftmsn_core::delivery::DeliveryProb;
///
/// let mut xi = DeliveryProb::ZERO;
/// xi.on_transmission(DeliveryProb::SINK, 0.25); // met a sink
/// assert!((xi.value() - 0.25).abs() < 1e-12);
/// xi.on_timeout(0.25);
/// assert!((xi.value() - 0.1875).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct DeliveryProb(f64);

impl DeliveryProb {
    /// The initial delivery probability of a fresh sensor.
    pub const ZERO: DeliveryProb = DeliveryProb(0.0);
    /// The delivery probability of a sink (messages there are delivered by
    /// definition).
    pub const SINK: DeliveryProb = DeliveryProb(1.0);

    /// Accumulated-rounding slack: values this close outside `[0, 1]` are
    /// float drift from repeated Eq. 1/Eq. 3 products, not logic errors,
    /// and are clamped instead of rejected.
    pub const DRIFT_SLACK: f64 = 1e-9;

    /// Wraps a raw probability. Values within [`Self::DRIFT_SLACK`] of the
    /// unit interval are clamped onto it.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` by more than the slack, or not
    /// finite.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite() && (-Self::DRIFT_SLACK..=1.0 + Self::DRIFT_SLACK).contains(&p),
            "delivery probability {p} outside [0,1]"
        );
        DeliveryProb(p.clamp(0.0, 1.0))
    }

    /// The raw probability.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Eq. 1, transmission case: pulls ξ toward the receiver's ξ with
    /// memory `1 − alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn on_transmission(&mut self, receiver: DeliveryProb, alpha: f64) {
        assert!((0.0..=1.0).contains(&alpha), "alpha {alpha} outside [0,1]");
        // The convex combination cannot leave [0, 1] mathematically, but an
        // inexactly representable α can push the rounded result a few ulp
        // above 1; clamp instead of letting the drift accumulate.
        self.0 = ((1.0 - alpha) * self.0 + alpha * receiver.0).clamp(0.0, 1.0);
    }

    /// Eq. 1, timeout case: decays ξ multiplicatively.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn on_timeout(&mut self, alpha: f64) {
        assert!((0.0..=1.0).contains(&alpha), "alpha {alpha} outside [0,1]");
        self.0 *= 1.0 - alpha;
    }

    /// Applies [`Self::on_timeout`] for `windows` consecutive Δ windows —
    /// the catch-up a node owes after being unreachable (long sleep, crash)
    /// across several of them.
    ///
    /// Implemented as the literal repeated product, not `powi`, so
    /// `decay_windows(alpha, 1)` is bit-identical to one `on_timeout` call.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn decay_windows(&mut self, alpha: f64, windows: u64) {
        assert!((0.0..=1.0).contains(&alpha), "alpha {alpha} outside [0,1]");
        let keep = 1.0 - alpha;
        for _ in 0..windows {
            if self.0 == 0.0 {
                break;
            }
            self.0 *= keep;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_sink_is_one() {
        assert_eq!(DeliveryProb::ZERO.value(), 0.0);
        assert_eq!(DeliveryProb::SINK.value(), 1.0);
    }

    #[test]
    fn transmission_to_sink_raises_xi_by_alpha_steps() {
        let mut xi = DeliveryProb::ZERO;
        xi.on_transmission(DeliveryProb::SINK, 0.25);
        assert!((xi.value() - 0.25).abs() < 1e-12);
        xi.on_transmission(DeliveryProb::SINK, 0.25);
        assert!((xi.value() - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn repeated_sink_contact_converges_to_one() {
        let mut xi = DeliveryProb::ZERO;
        for _ in 0..200 {
            xi.on_transmission(DeliveryProb::SINK, 0.25);
        }
        assert!(xi.value() > 0.999_999);
        assert!(xi.value() <= 1.0);
    }

    #[test]
    fn repeated_timeouts_converge_to_zero() {
        let mut xi = DeliveryProb::new(0.9);
        for _ in 0..200 {
            xi.on_timeout(0.25);
        }
        assert!(xi.value() < 1e-6);
        assert!(xi.value() >= 0.0);
    }

    #[test]
    fn transmission_to_weaker_node_lowers_xi() {
        // Relaying through a node with smaller ξ drags the estimate down —
        // the update tracks where the data actually went.
        let mut xi = DeliveryProb::new(0.8);
        xi.on_transmission(DeliveryProb::new(0.4), 0.25);
        assert!((xi.value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_freezes_and_alpha_one_copies() {
        let mut xi = DeliveryProb::new(0.3);
        xi.on_transmission(DeliveryProb::SINK, 0.0);
        assert_eq!(xi.value(), 0.3);
        xi.on_transmission(DeliveryProb::new(0.6), 1.0);
        assert_eq!(xi.value(), 0.6);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn out_of_range_probability_panics() {
        let _ = DeliveryProb::new(1.1);
    }

    #[test]
    fn ulp_drift_is_clamped_not_rejected() {
        let just_above = 1.0 + 1e-12;
        assert_eq!(DeliveryProb::new(just_above).value(), 1.0);
        let just_below = -1e-12;
        assert_eq!(DeliveryProb::new(just_below).value(), 0.0);
    }

    #[test]
    fn decay_windows_matches_repeated_timeouts_bitwise() {
        // Awkward α (not exactly representable) to stress the rounding.
        for alpha in [0.25, 0.1, 0.3333333333333333] {
            let mut a = DeliveryProb::new(0.873);
            let mut b = DeliveryProb::new(0.873);
            a.decay_windows(alpha, 7);
            for _ in 0..7 {
                b.on_timeout(alpha);
            }
            assert_eq!(a.value().to_bits(), b.value().to_bits(), "alpha {alpha}");
        }
    }

    #[test]
    fn decay_windows_one_equals_on_timeout() {
        let mut a = DeliveryProb::new(0.6);
        let mut b = DeliveryProb::new(0.6);
        a.decay_windows(0.25, 1);
        b.on_timeout(0.25);
        assert_eq!(a.value().to_bits(), b.value().to_bits());
    }

    #[test]
    fn transmission_result_stays_in_unit_interval_for_awkward_alpha() {
        let mut xi = DeliveryProb::SINK;
        for _ in 0..1000 {
            xi.on_transmission(DeliveryProb::SINK, 0.30000000000000004);
            assert!((0.0..=1.0).contains(&xi.value()), "{}", xi.value());
        }
        assert!(xi.value() > 0.999_999);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn out_of_range_alpha_panics() {
        let mut xi = DeliveryProb::ZERO;
        xi.on_timeout(-0.1);
    }
}
