//! Sensitivity study over the protocol constants the paper leaves
//! unspecified (α, Δ, R, the FTD drop threshold, T_min) — the calibrated
//! assumptions documented in DESIGN.md. Each knob is swept
//! one-at-a-time around the default on the 3-sink OPT scenario.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin sensitivity
//! [--quick] [--seeds N] [--duration SECS]`

use dftmsn_bench::experiments::{write_table, ExperimentOpts};
use dftmsn_bench::sweep::{average, run_all, RunSpec};
use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::policy::PolicySpec;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_metrics::table::Table;

fn main() {
    let opts = ExperimentOpts::from_args();
    let base = ProtocolParams::paper_default();

    let mut cases: Vec<(String, ProtocolParams)> = vec![("default".into(), base.clone())];
    for alpha in [0.1, 0.5] {
        cases.push((format!("alpha={alpha}"), base.clone().with_alpha(alpha)));
    }
    for delta in [15.0, 60.0, 120.0] {
        cases.push((
            format!("Delta={delta}s"),
            base.clone().with_xi_timeout_secs(delta),
        ));
    }
    for r in [0.8, 0.99] {
        cases.push((format!("R={r}"), base.clone().with_delivery_threshold_r(r)));
    }
    for th in [0.9, 0.95, 1.0] {
        cases.push((
            format!("ftd_drop={th}"),
            base.clone().with_ftd_drop_threshold(th),
        ));
    }
    for t_min in [1.0, 2.0] {
        cases.push((
            format!("T_min={t_min}s"),
            base.clone().with_t_min_secs(t_min),
        ));
    }

    eprintln!(
        "sensitivity: {} configurations x {} seeds @ {} s",
        cases.len(),
        opts.seeds,
        opts.duration_secs
    );

    let mut specs = Vec::new();
    for (_, protocol) in &cases {
        for seed in 0..opts.seeds {
            specs.push(RunSpec {
                scenario: ScenarioParams::paper_default().with_duration_secs(opts.duration_secs),
                protocol: protocol.clone(),
                config: ProtocolKind::Opt.config(),
                seed: seed + 1,
                faults: FaultPlan::default(),
                observe_window_secs: None,
                policy: PolicySpec::Builtin,
            });
        }
    }
    let reports = run_all(&specs, opts.threads);

    let mut table = Table::new(
        "Sensitivity of OPT (3 sinks) to the calibrated protocol constants",
        &[
            "setting",
            "ratio (%)",
            "power (mW)",
            "delay (s)",
            "collisions",
        ],
    );
    for (ci, (name, _)) in cases.iter().enumerate() {
        let start = ci * opts.seeds as usize;
        let avg = average(&reports[start..start + opts.seeds as usize]);
        table.row(vec![
            name.clone().into(),
            (avg.ratio.mean() * 100.0).into(),
            avg.power_mw.mean().into(),
            avg.delay_secs.mean().into(),
            avg.collisions.mean().into(),
        ]);
    }
    println!("{}", write_table("results", "sensitivity", &table));
}
