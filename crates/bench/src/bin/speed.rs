//! Regenerates the Sec. 5 nodal-speed study (Prose-B): delivery ratios
//! rise and delays fall with speed; OPT's transmission overhead decreases.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin speed [--quick] ...`

use dftmsn_bench::experiments::{speed, write_table, ExperimentOpts};

fn main() {
    let opts = ExperimentOpts::from_args();
    eprintln!(
        "speed: v_max {{1..10}} m/s x 4 variants x {} seeds @ {} s",
        opts.seeds, opts.duration_secs
    );
    let tables = speed(&opts);
    let slugs = [
        "speed_delivery_ratio",
        "speed_power",
        "speed_delay",
        "speed_collisions",
        "speed_overhead",
    ];
    for (table, slug) in tables.iter().zip(slugs) {
        println!("{}", write_table("results", slug, table));
    }
}
