//! Regenerates Fig. 2(a–c): impact of the number of sink nodes on the
//! delivery ratio, the average nodal power consumption rate, and the
//! average delivery delay, for OPT / NOSLEEP / NOOPT / ZBR.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin fig2 [--quick]
//! [--seeds N] [--duration SECS] [--threads N]`

use dftmsn_bench::experiments::{fig2, write_table, ExperimentOpts};

fn main() {
    let opts = ExperimentOpts::from_args();
    eprintln!(
        "fig2: sinks 1..=10 x {{OPT,NOSLEEP,NOOPT,ZBR}} x {} seeds @ {} s",
        opts.seeds, opts.duration_secs
    );
    let tables = fig2(&opts);
    let slugs = [
        "fig2a_delivery_ratio",
        "fig2b_power",
        "fig2c_delay",
        "fig2x_collisions",
        "fig2x_overhead",
    ];
    for (table, slug) in tables.iter().zip(slugs) {
        println!("{}", write_table("results", slug, table));
    }
}
