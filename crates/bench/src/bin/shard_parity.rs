//! CI gate for the sharded engine's determinism contract: an N-shard run
//! of a scale-tier cell must be **bit-identical** to the single-shard run
//! — every counter and every f64 bit, under both mobility engines.
//!
//! `tests/sharded_engine.rs` proves the contract on a small pinned world;
//! this gate re-proves it on a real scale-tier cell (1 000 sensors, the
//! size where shard bands are actually populated) so a regression that
//! only shows up under load cannot slip past CI. Exits 0 on parity, 1 on
//! any divergence, printing the first differing field.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin shard_parity
//! [--sensors N] [--secs S] [--shards K]` (defaults 1000 / 60 / 8).

use dftmsn_bench::scale::scale_scenario;
use dftmsn_core::report::SimReport;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_core::world::{MobilityMode, Simulation};

/// Every tracked field of a report, flattened to exact bit patterns.
fn fingerprint(r: &SimReport) -> Vec<(&'static str, u64)> {
    vec![
        ("generated", r.generated),
        ("delivered", r.delivered),
        ("sink_receptions", r.sink_receptions),
        ("frames_sent", r.frames_sent),
        ("collisions", r.collisions),
        ("attempts", r.attempts),
        ("multicasts", r.multicasts),
        ("copies_sent", r.copies_sent),
        ("events_processed", r.events_processed),
        ("mean_delay_secs", r.mean_delay_secs.to_bits()),
        ("total_sensor_energy_j", r.total_sensor_energy_j.to_bits()),
        ("avg_sensor_power_mw", r.avg_sensor_power_mw.to_bits()),
        ("deliveries", r.deliveries.len() as u64),
    ]
}

fn run(sensors: usize, secs: u64, mode: MobilityMode, shards: usize) -> SimReport {
    Simulation::builder(scale_scenario(sensors, secs), ProtocolKind::Opt)
        .seed(1)
        .mobility_mode(mode)
        .shards(shards)
        .build()
        .run()
}

fn arg(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map_or(default, |s| {
            s.parse()
                .unwrap_or_else(|_| panic!("{flag} takes a number"))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sensors = arg(&args, "--sensors", 1_000);
    let secs = arg(&args, "--secs", 60) as u64;
    let shards = arg(&args, "--shards", 8);

    let mut failed = false;
    for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
        let single = run(sensors, secs, mode, 1);
        let sharded = run(sensors, secs, mode, shards);
        let (a, b) = (fingerprint(&single), fingerprint(&sharded));
        let diverged: Vec<&&str> = a
            .iter()
            .zip(&b)
            .filter(|((_, x), (_, y))| x != y)
            .map(|((name, _), _)| name)
            .collect();
        if diverged.is_empty() {
            eprintln!(
                "shard_parity {mode:?}: OK — {shards}-shard run bit-identical \
                 ({sensors} sensors, {secs} s, {} events)",
                single.events_processed
            );
        } else {
            failed = true;
            eprintln!(
                "shard_parity {mode:?}: FAIL — {shards}-shard run diverged from \
                 single-shard in: {diverged:?}"
            );
            for ((name, x), (_, y)) in a.iter().zip(&b).filter(|((_, x), (_, y))| x != y) {
                eprintln!("  {name}: single={x} sharded={y}");
            }
        }
    }
    if failed {
        eprintln!("shard_parity: determinism contract BROKEN (DESIGN.md \u{a7} 8)");
        std::process::exit(1);
    }
}
