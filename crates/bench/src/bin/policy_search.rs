//! Policy parameter search: grid-sweeps the protocol constants the paper
//! leaves tunable — α, Δ, R, the τ_max cap and the contention-window cap —
//! under each forwarding policy (builtin OPT, TwoHopRelay, MeetingRate),
//! and reports the best-frontier cells per policy plus a Fig-2-style
//! default-vs-best summary row (the tables committed to EXPERIMENTS.md
//! § Policy lab).
//!
//! The sweep rides [`run_all_resumable`]: every completed run is appended
//! to `results/policy_search.progress` the moment it lands, so an
//! interrupted invocation resumes instead of recomputing (delete the file
//! or change the workload shape to start fresh).
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin policy_search
//! [--quick] [--seeds N] [--duration SECS] [--threads N]`

use dftmsn_bench::experiments::{write_table, ExperimentOpts};
use dftmsn_bench::sweep::{average, run_all_resumable, RunSpec};
use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::policy::PolicySpec;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_metrics::table::Table;
use std::path::Path;

/// One grid cell: a policy × protocol-constant combination.
struct Cell {
    policy: usize,
    alpha: f64,
    delta: f64,
    r: f64,
    tau_cap: u64,
    w_cap: u64,
}

impl Cell {
    fn protocol(&self) -> ProtocolParams {
        let mut p = ProtocolParams::paper_default()
            .with_alpha(self.alpha)
            .with_xi_timeout_secs(self.delta)
            .with_delivery_threshold_r(self.r);
        p.tau_max_cap_slots = self.tau_cap;
        p.cts_window_cap = self.w_cap;
        p
    }

    fn is_default(&self) -> bool {
        let d = ProtocolParams::paper_default();
        self.alpha == d.alpha
            && self.delta == d.xi_timeout_secs
            && self.r == d.delivery_threshold_r
            && self.tau_cap == d.tau_max_cap_slots
            && self.w_cap == d.cts_window_cap
    }
}

fn main() {
    let opts = ExperimentOpts::from_args();
    let policies: [(&str, PolicySpec); 3] = [
        ("OPT", PolicySpec::Builtin),
        ("TWOHOP", PolicySpec::default_two_hop()),
        ("MEETRATE", PolicySpec::default_meeting_rate()),
    ];
    // One-knob-at-a-time grids around the paper defaults; the default cell
    // (0.25, 30 s, 0.95, 32, 32) is a member of every axis, so the
    // frontier table always contains the baseline for comparison.
    let alphas = [0.1, 0.25, 0.5];
    let deltas = [15.0, 30.0, 60.0];
    let rs = [0.8, 0.95, 0.99];
    let tau_caps = [16u64, 32];
    let w_caps = [16u64, 32];

    let mut cells = Vec::new();
    for (pi, _) in policies.iter().enumerate() {
        for &alpha in &alphas {
            for &delta in &deltas {
                for &r in &rs {
                    for &tau_cap in &tau_caps {
                        for &w_cap in &w_caps {
                            cells.push(Cell {
                                policy: pi,
                                alpha,
                                delta,
                                r,
                                tau_cap,
                                w_cap,
                            });
                        }
                    }
                }
            }
        }
    }

    let scenario = ScenarioParams::paper_default().with_duration_secs(opts.duration_secs);
    let mut specs = Vec::new();
    for cell in &cells {
        for seed in 1..=opts.seeds {
            specs.push(RunSpec {
                scenario: scenario.clone(),
                protocol: cell.protocol(),
                config: ProtocolKind::Opt.config(),
                seed,
                faults: FaultPlan::default(),
                observe_window_secs: None,
                policy: policies[cell.policy].1,
            });
        }
    }
    eprintln!(
        "policy_search: {} cells x {} seeds = {} runs @ {} s",
        cells.len(),
        opts.seeds,
        specs.len(),
        opts.duration_secs
    );

    std::fs::create_dir_all("results").expect("create results dir");
    let progress = Path::new("results/policy_search.progress");
    let reports = run_all_resumable(&specs, opts.threads, progress, |i, _| {
        if (i + 1) % 50 == 0 {
            eprintln!("policy_search: {}/{} runs done", i + 1, specs.len());
        }
    })
    .expect("sweep failed");

    // Per-cell averages across seeds (specs are grouped by cell).
    let per_cell: Vec<_> = cells
        .iter()
        .enumerate()
        .map(|(ci, cell)| {
            let base = ci * opts.seeds as usize;
            (cell, average(&reports[base..base + opts.seeds as usize]))
        })
        .collect();

    // Frontier: the best cells per policy by delivery ratio (delay breaks
    // ties), default cell always included.
    let mut frontier = Table::new(
        "Policy search frontier: top cells per policy (by delivery ratio)",
        &[
            "policy",
            "alpha",
            "Delta (s)",
            "R",
            "tau cap",
            "W cap",
            "ratio (%)",
            "delay (s)",
            "power (mW)",
        ],
    );
    let mut fig2 = Table::new(
        "Policy rows (Fig.-2 style): paper-default constants vs. searched best",
        &[
            "policy",
            "default ratio (%)",
            "default delay (s)",
            "default power (mW)",
            "best ratio (%)",
            "best delay (s)",
            "best power (mW)",
        ],
    );

    for (pi, (label, _)) in policies.iter().enumerate() {
        let mut mine: Vec<_> = per_cell.iter().filter(|(c, _)| c.policy == pi).collect();
        mine.sort_by(|a, b| {
            b.1.ratio
                .mean()
                .partial_cmp(&a.1.ratio.mean())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    a.1.delay_secs
                        .mean()
                        .partial_cmp(&b.1.delay_secs.mean())
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });
        for (cell, avg) in mine.iter().take(3) {
            frontier.row(vec![
                (*label).into(),
                cell.alpha.into(),
                cell.delta.into(),
                cell.r.into(),
                cell.tau_cap.into(),
                cell.w_cap.into(),
                (avg.ratio.mean() * 100.0).into(),
                avg.delay_secs.mean().into(),
                avg.power_mw.mean().into(),
            ]);
        }
        let default = mine
            .iter()
            .find(|(c, _)| c.is_default())
            .expect("default cell is in the grid");
        let best = mine.first().expect("non-empty grid");
        fig2.row(vec![
            (*label).into(),
            (default.1.ratio.mean() * 100.0).into(),
            default.1.delay_secs.mean().into(),
            default.1.power_mw.mean().into(),
            (best.1.ratio.mean() * 100.0).into(),
            best.1.delay_secs.mean().into(),
            best.1.power_mw.mean().into(),
        ]);
    }

    println!("{}", write_table("results", "policy_fig2", &fig2));
    println!(
        "{}",
        write_table("results", "policy_search_frontier", &frontier)
    );
}
