//! Regenerates the Sec. 4 analytic optimization tables (Opt-1/2/3): the
//! Eq. 12 RTS collision probabilities, the Eq. 14 CTS collision
//! probabilities, and the Eq. 6 sleeping-period surface. Pure math — no
//! simulation.

use dftmsn_bench::experiments::{optimization_tables, write_table};

fn main() {
    let tables = optimization_tables();
    let slugs = [
        "opt1_rts_collisions",
        "opt2_cts_collisions",
        "opt3_sleep_surface",
    ];
    for (table, slug) in tables.iter().zip(slugs) {
        println!("{}", write_table("results", slug, table));
    }
}
