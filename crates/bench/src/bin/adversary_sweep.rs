//! Delivery ratio vs. fraction of adversarial sensors, plus the
//! network-lifetime tier (PR 10) — what happens to the paper's protocol
//! when nodes stop *cooperating* rather than stop *working*.
//!
//! Two sweeps share one resumable progress file:
//!
//! * **Adversary sweep** — a growing fraction of sensors turns selfish at
//!   t = 0 (they accept nothing, forward nothing, and never CTS-reply;
//!   see `dftmsn_core::behavior`), and OPT / NOOPT / TWOHOP / MEETRATE
//!   are measured on what still gets through. The victim set at each
//!   sweep point depends only on `(scenario, seed)`, so every policy
//!   faces the same traitors.
//! * **Lifetime sweep** — a growing fraction of sensors suffers battery
//!   death mid-run, and the report's lifetime block (FND / HND / LND:
//!   first, half, last node death) is tabulated next to each policy's
//!   delivery ratio, tying lifetime to what the network still delivers.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin adversary_sweep
//! [--quick] [--seeds N] [--duration SECS] [--threads N] [--fresh]`
//!
//! Every finished run is appended to `results/adversary_sweep.progress`
//! as it lands and reruns skip runs already on record (`--fresh` starts
//! over). The result tables (`results/adversary_sweep_delivery.*`,
//! `results/adversary_sweep_lifetime.*`) are rewritten after every
//! completed run, so an interrupted sweep still leaves readable output.

use dftmsn_bench::experiments::{write_table, ExperimentOpts};
use dftmsn_bench::sweep::{average, run_all_resumable, RunSpec};
use dftmsn_core::behavior::{self, NodeBehavior};
use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::policy::PolicySpec;
use dftmsn_core::report::SimReport;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_metrics::table::{Cell, Table};
use std::path::Path;
use std::sync::Mutex;

const ADV_FRACTIONS: [f64; 5] = [0.0, 0.1, 0.25, 0.4, 0.5];
const LIFE_FRACTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];
const PROGRESS_PATH: &str = "results/adversary_sweep.progress";

/// The policy panel: the paper's optimized and unoptimized variants plus
/// the two non-builtin forwarding policies, all on the OPT MAC base.
const COLUMNS: [&str; 4] = ["OPT", "NOOPT", "TWOHOP", "MEETRATE"];

fn variant_spec(column: &str, scenario: ScenarioParams, seed: u64, faults: FaultPlan) -> RunSpec {
    let (kind, policy) = match column {
        "OPT" => (ProtocolKind::Opt, PolicySpec::Builtin),
        "NOOPT" => (ProtocolKind::NoOpt, PolicySpec::Builtin),
        "TWOHOP" => (
            ProtocolKind::Opt,
            PolicySpec::parse("twohop").expect("twohop spec"),
        ),
        "MEETRATE" => (
            ProtocolKind::Opt,
            PolicySpec::parse("meetrate").expect("meetrate spec"),
        ),
        other => unreachable!("unknown column {other}"),
    };
    RunSpec {
        scenario,
        protocol: ProtocolParams::paper_default(),
        config: kind.config(),
        seed,
        faults,
        observe_window_secs: None,
        policy,
    }
}

fn main() {
    let opts = ExperimentOpts::from_args();
    let fresh = std::env::args().any(|a| a == "--fresh");

    eprintln!(
        "adversary_sweep: selfish fraction {{0..0.5}} + lifetime {{0.25..1}} x \
         {{OPT,NOOPT,TWOHOP,MEETRATE}} x {} seeds @ {} s",
        opts.seeds, opts.duration_secs
    );

    let mut specs = Vec::new();
    for &frac in &ADV_FRACTIONS {
        for column in COLUMNS {
            for seed in 1..=opts.seeds {
                let scenario =
                    ScenarioParams::paper_default().with_duration_secs(opts.duration_secs);
                // Victims depend only on (scenario, seed): every policy at
                // this sweep point faces the same selfish set.
                let faults = behavior::takeover(&scenario, frac, NodeBehavior::Selfish, 0.0, seed);
                specs.push(variant_spec(column, scenario, seed, faults));
            }
        }
    }
    for &frac in &LIFE_FRACTIONS {
        for column in COLUMNS {
            for seed in 1..=opts.seeds {
                let scenario =
                    ScenarioParams::paper_default().with_duration_secs(opts.duration_secs);
                let faults = FaultPlan::node_failures(&scenario, frac, None, seed);
                specs.push(variant_spec(column, scenario, seed, faults));
            }
        }
    }

    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("error: cannot create results directory: {e}");
        std::process::exit(3);
    }
    let progress_path = Path::new(PROGRESS_PATH);
    if fresh {
        let _ = std::fs::remove_file(progress_path);
    }

    let seeds = opts.seeds as usize;
    let landed: Mutex<Vec<Option<SimReport>>> = Mutex::new(vec![None; specs.len()]);
    let outcome = run_all_resumable(&specs, opts.threads, progress_path, |i, report| {
        let mut slots = landed.lock().expect("slot lock");
        slots[i] = Some(report.clone());
        let (delivery, lifetime) = tables(&slots, seeds);
        let _ = write_table("results", "adversary_sweep_delivery", &delivery);
        let _ = write_table("results", "adversary_sweep_lifetime", &lifetime);
    });
    let reports = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: adversary_sweep progress file {PROGRESS_PATH}: {e}");
            std::process::exit(3);
        }
    };

    let done: Vec<Option<SimReport>> = reports.into_iter().map(Some).collect();
    let (delivery, lifetime) = tables(&done, seeds);
    println!(
        "{}",
        write_table("results", "adversary_sweep_delivery", &delivery)
    );
    println!(
        "{}",
        write_table("results", "adversary_sweep_lifetime", &lifetime)
    );
}

/// Mean of the anchors that fired, or a dash when none did (e.g. LND in a
/// sweep point where part of the network always survives).
fn anchor_cell(values: impl Iterator<Item = Option<f64>>) -> Cell {
    let fired: Vec<f64> = values.flatten().collect();
    if fired.is_empty() {
        return "-".into();
    }
    (fired.iter().sum::<f64>() / fired.len() as f64).into()
}

/// Builds both tables from whatever runs have landed so far; a row is
/// rendered only once every variant × seed cell under it exists.
fn tables(reports: &[Option<SimReport>], seeds: usize) -> (Table, Table) {
    let mut delivery = Table::new(
        "Adversary tolerance: delivery ratio (%) vs. fraction of selfish sensors",
        &["selfish fraction", "OPT", "NOOPT", "TWOHOP", "MEETRATE"],
    );
    let mut lifetime = Table::new(
        "Network lifetime: node-death anchors (s) and delivery ratio (%) vs. fraction lost",
        &[
            "failed fraction",
            "FND (s)",
            "HND (s)",
            "LND (s)",
            "OPT",
            "NOOPT",
            "TWOHOP",
            "MEETRATE",
        ],
    );
    let per_point = COLUMNS.len() * seeds;

    for (fi, &frac) in ADV_FRACTIONS.iter().enumerate() {
        let base = fi * per_point;
        let point = &reports[base..base + per_point];
        if point.iter().any(Option::is_none) {
            continue;
        }
        let ratio = |vi: usize| -> Cell {
            let runs: Vec<SimReport> = point[vi * seeds..(vi + 1) * seeds]
                .iter()
                .map(|r| r.clone().expect("checked above"))
                .collect();
            (average(&runs).ratio.mean() * 100.0).into()
        };
        delivery.row(vec![frac.into(), ratio(0), ratio(1), ratio(2), ratio(3)]);
    }

    let life_base = ADV_FRACTIONS.len() * per_point;
    for (fi, &frac) in LIFE_FRACTIONS.iter().enumerate() {
        let base = life_base + fi * per_point;
        let point = &reports[base..base + per_point];
        if point.iter().any(Option::is_none) {
            continue;
        }
        let cell_runs = |vi: usize| -> Vec<&SimReport> {
            point[vi * seeds..(vi + 1) * seeds]
                .iter()
                .map(|r| r.as_ref().expect("checked above"))
                .collect()
        };
        // The fault plan (hence the death schedule) is shared across the
        // panel at each point, so the anchors come from the OPT runs.
        let opt_runs = cell_runs(0);
        let ratio = |vi: usize| -> Cell {
            let runs: Vec<SimReport> = cell_runs(vi).into_iter().cloned().collect();
            (average(&runs).ratio.mean() * 100.0).into()
        };
        lifetime.row(vec![
            frac.into(),
            anchor_cell(opt_runs.iter().map(|r| r.lifetime.first_death_secs)),
            anchor_cell(opt_runs.iter().map(|r| r.lifetime.half_death_secs)),
            anchor_cell(opt_runs.iter().map(|r| r.lifetime.last_death_secs)),
            ratio(0),
            ratio(1),
            ratio(2),
            ratio(3),
        ]);
    }
    (delivery, lifetime)
}
