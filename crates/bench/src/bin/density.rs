//! Regenerates the Sec. 5 node-density study (Prose-A): the paper reports
//! that as density increases, near-sink nodes become bottlenecks and the
//! delivery ratio falls.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin density [--quick] ...`

use dftmsn_bench::experiments::{density, write_table, ExperimentOpts};

fn main() {
    let opts = ExperimentOpts::from_args();
    eprintln!(
        "density: sensors {{50..250}} x 4 variants x {} seeds @ {} s",
        opts.seeds, opts.duration_secs
    );
    let tables = density(&opts);
    let slugs = [
        "density_delivery_ratio",
        "density_power",
        "density_delay",
        "density_collisions",
        "density_overhead",
    ];
    for (table, slug) in tables.iter().zip(slugs) {
        println!("{}", write_table("results", slug, table));
    }
}
