//! Abl-1: toggles each Sec. 4 optimization independently on the default
//! 3-sink scenario, quantifying what adaptive tau_max, the adaptive
//! contention window, and Eq. 6 sleeping each contribute.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin ablation [--quick] ...`

use dftmsn_bench::experiments::{ablation, write_table, ExperimentOpts};

fn main() {
    let opts = ExperimentOpts::from_args();
    eprintln!(
        "ablation: 6 configurations x {} seeds @ {} s",
        opts.seeds, opts.duration_secs
    );
    for table in ablation(&opts) {
        println!("{}", write_table("results", "ablation", &table));
    }
}
