//! Buffer-capacity sweep — the paper attributes the density-driven ratio
//! drop to "limited bandwidth and buffer size"; this experiment isolates
//! the buffer axis: queue capacity 10 → 400 messages at 2× the default
//! traffic, OPT vs. EPIDEMIC (the buffer-hungriest variant).
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin buffer [--quick] ...`

use dftmsn_bench::experiments::{write_table, ExperimentOpts};
use dftmsn_bench::sweep::{average, run_all, RunSpec};
use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::policy::PolicySpec;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_metrics::table::Table;

fn main() {
    let opts = ExperimentOpts::from_args();
    let capacities = [10usize, 25, 50, 100, 200, 400];
    let variants = [ProtocolKind::Opt, ProtocolKind::Epidemic];

    eprintln!(
        "buffer: capacity {{10..400}} x {{OPT,EPIDEMIC}} x {} seeds @ {} s (2x traffic)",
        opts.seeds, opts.duration_secs
    );

    let mut specs = Vec::new();
    for &cap in &capacities {
        for &kind in &variants {
            for seed in 0..opts.seeds {
                let mut scenario =
                    ScenarioParams::paper_default().with_duration_secs(opts.duration_secs);
                scenario.queue_capacity = cap;
                scenario.data_interval_secs = 60.0; // double the default load
                specs.push(RunSpec {
                    scenario,
                    protocol: ProtocolParams::paper_default(),
                    config: kind.config(),
                    seed: seed + 1,
                    faults: FaultPlan::default(),
                    observe_window_secs: None,
                    policy: PolicySpec::Builtin,
                });
            }
        }
    }
    let reports = run_all(&specs, opts.threads);

    let mut table = Table::new(
        "Buffer study: delivery ratio and drops vs queue capacity (2x traffic)",
        &[
            "capacity",
            "OPT ratio (%)",
            "OPT drops",
            "EPIDEMIC ratio (%)",
            "EPIDEMIC drops",
        ],
    );
    let per_cap = variants.len() * opts.seeds as usize;
    for (ci, &cap) in capacities.iter().enumerate() {
        let base = ci * per_cap;
        let opt = average(&reports[base..base + opts.seeds as usize]);
        let epi = average(&reports[base + opts.seeds as usize..base + 2 * opts.seeds as usize]);
        let drops = |slice: &[dftmsn_core::report::SimReport]| -> f64 {
            slice
                .iter()
                .map(|r| (r.drops_overflow + r.drops_rejected) as f64)
                .sum::<f64>()
                / slice.len() as f64
        };
        table.row(vec![
            cap.into(),
            (opt.ratio.mean() * 100.0).into(),
            drops(&reports[base..base + opts.seeds as usize]).into(),
            (epi.ratio.mean() * 100.0).into(),
            drops(&reports[base + opts.seeds as usize..base + 2 * opts.seeds as usize]).into(),
        ]);
    }
    println!("{}", write_table("results", "buffer", &table));
}
