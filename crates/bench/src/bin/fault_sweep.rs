//! Delivery ratio vs. node failure rate — the experiment behind the
//! paper's fault-tolerance claim. A growing fraction of sensors suffers
//! permanent battery death mid-run (the same seeded [`FaultPlan`] for
//! every variant at each point, so the comparison is apples-to-apples),
//! and OPT / NOOPT / ZBR are measured on what still gets through.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin fault_sweep [--quick]
//! [--seeds N] [--duration SECS] [--threads N] [--observe] [--fresh]`
//!
//! The sweep is resumable: every finished run is appended to
//! `results/fault_sweep.progress` as it lands, and a rerun skips runs
//! already on record (pass `--fresh` to discard the record and start
//! over). The results tables are rewritten after *every* completed run —
//! rows appear as soon as all their runs exist — so an interrupted sweep
//! still leaves a readable `results/fault_sweep_delivery.*` /
//! `fault_sweep_delay.*` covering the finished sweep points.
//!
//! With `--observe`, one extra observed run per variant at a fixed 30 %
//! failure fraction emits a per-window delivery timeline
//! (`results/fault_sweep_timeline.*`) showing how each variant degrades
//! and recovers around fault onset.

use dftmsn_bench::experiments::{write_table, ExperimentOpts};
use dftmsn_bench::sweep::{average, run_all_resumable, RunSpec};
use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::policy::PolicySpec;
use dftmsn_core::report::SimReport;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_metrics::table::Table;
use std::path::Path;
use std::sync::Mutex;

const FRACTIONS: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
const VARIANTS: [ProtocolKind; 3] = [ProtocolKind::Opt, ProtocolKind::NoOpt, ProtocolKind::Zbr];
const PROGRESS_PATH: &str = "results/fault_sweep.progress";

fn main() {
    let opts = ExperimentOpts::from_args();
    let fresh = std::env::args().any(|a| a == "--fresh");

    eprintln!(
        "fault_sweep: failure fraction {{0..0.5}} x {{OPT,NOOPT,ZBR}} x {} seeds @ {} s",
        opts.seeds, opts.duration_secs
    );

    let mut specs = Vec::new();
    for &frac in &FRACTIONS {
        for &kind in &VARIANTS {
            for seed in 1..=opts.seeds {
                let scenario =
                    ScenarioParams::paper_default().with_duration_secs(opts.duration_secs);
                // The plan depends only on (scenario, fraction, seed): every
                // variant at this sweep point loses the same sensors at the
                // same instants.
                let faults = FaultPlan::node_failures(&scenario, frac, None, seed);
                specs.push(RunSpec {
                    scenario,
                    protocol: ProtocolParams::paper_default(),
                    config: kind.config(),
                    seed,
                    faults,
                    observe_window_secs: None,
                    policy: PolicySpec::Builtin,
                });
            }
        }
    }

    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("error: cannot create results directory: {e}");
        std::process::exit(3);
    }
    let progress_path = Path::new(PROGRESS_PATH);
    if fresh {
        let _ = std::fs::remove_file(progress_path);
    }

    // Flush the tables after every completed run: rows whose runs all
    // exist are rendered, the rest appear as the sweep fills in.
    let seeds = opts.seeds as usize;
    let landed: Mutex<Vec<Option<SimReport>>> = Mutex::new(vec![None; specs.len()]);
    let outcome = run_all_resumable(&specs, opts.threads, progress_path, |i, report| {
        let mut slots = landed.lock().expect("slot lock");
        slots[i] = Some(report.clone());
        let (ratio, delay) = tables(&slots, seeds);
        let _ = write_table("results", "fault_sweep_delivery", &ratio);
        let _ = write_table("results", "fault_sweep_delay", &delay);
    });
    let reports = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: fault_sweep progress file {PROGRESS_PATH}: {e}");
            std::process::exit(3);
        }
    };

    let done: Vec<Option<SimReport>> = reports.into_iter().map(Some).collect();
    let (ratio, delay) = tables(&done, seeds);
    println!("{}", write_table("results", "fault_sweep_delivery", &ratio));
    println!("{}", write_table("results", "fault_sweep_delay", &delay));

    if std::env::args().any(|a| a == "--observe") {
        timeline(&opts, &VARIANTS);
    }
}

/// Builds the delivery-ratio and delay tables from whatever runs have
/// landed so far. A row (sweep point) is included once every
/// variant × seed cell under it is present, so partially flushed tables
/// never show a half-averaged number.
fn tables(reports: &[Option<SimReport>], seeds: usize) -> (Table, Table) {
    let mut ratio = Table::new(
        "Fault tolerance: delivery ratio (%) vs. fraction of sensors lost to battery death",
        &["failed fraction", "OPT", "NOOPT", "ZBR"],
    );
    let mut delay = Table::new(
        "Fault tolerance: mean delivery delay (s) vs. fraction of sensors lost",
        &["failed fraction", "OPT", "NOOPT", "ZBR"],
    );
    let per_point = VARIANTS.len() * seeds;
    for (fi, &frac) in FRACTIONS.iter().enumerate() {
        let base = fi * per_point;
        let point = &reports[base..base + per_point];
        if point.iter().any(Option::is_none) {
            continue;
        }
        let cell = |vi: usize| {
            let runs: Vec<SimReport> = point[vi * seeds..(vi + 1) * seeds]
                .iter()
                .map(|r| r.clone().expect("checked above"))
                .collect();
            average(&runs)
        };
        let cells: Vec<_> = (0..VARIANTS.len()).map(cell).collect();
        ratio.row(vec![
            frac.into(),
            (cells[0].ratio.mean() * 100.0).into(),
            (cells[1].ratio.mean() * 100.0).into(),
            (cells[2].ratio.mean() * 100.0).into(),
        ]);
        delay.row(vec![
            frac.into(),
            cells[0].delay_secs.mean().into(),
            cells[1].delay_secs.mean().into(),
            cells[2].delay_secs.mean().into(),
        ]);
    }
    (ratio, delay)
}

/// One observed run per variant at a fixed failure fraction: the windowed
/// delivery counts show the dip (and any recovery) around fault onset
/// that the sweep's end-of-run averages integrate away.
fn timeline(opts: &ExperimentOpts, variants: &[ProtocolKind]) {
    let frac = 0.3;
    let seed = 1;
    // ~25 points across the run, whatever the duration.
    let window = (opts.duration_secs as f64 / 25.0).max(1.0);
    let scenario = ScenarioParams::paper_default().with_duration_secs(opts.duration_secs);
    let faults = FaultPlan::node_failures(&scenario, frac, None, seed);
    eprintln!(
        "fault_sweep: timeline at failure fraction {frac} ({} fault events, {window:.0} s windows)",
        faults.len()
    );

    let mut columns: Vec<Vec<(f64, f64)>> = Vec::new();
    for &kind in variants {
        let spec = RunSpec {
            scenario: scenario.clone(),
            protocol: ProtocolParams::paper_default(),
            config: kind.config(),
            seed,
            faults: faults.clone(),
            observe_window_secs: Some(window),
            policy: PolicySpec::Builtin,
        };
        let (_, series) = spec.run_observed();
        let series = series.expect("observed run returns series");
        let deliveries = series.get("deliveries").expect("deliveries series");
        columns.push(deliveries.iter().collect());
    }

    let mut table = Table::new(
        &format!(
            "Deliveries per {window:.0} s window, {:.0} % of sensors lost (seed {seed})",
            frac * 100.0
        ),
        &["t (s)", "OPT", "NOOPT", "ZBR"],
    );
    let rows = columns.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..rows {
        let t = columns
            .iter()
            .find_map(|c| c.get(i))
            .map_or(0.0, |&(t, _)| t);
        let cell = |vi: usize| columns[vi].get(i).map_or(0.0, |&(_, v)| v);
        table.row(vec![
            t.into(),
            cell(0).into(),
            cell(1).into(),
            cell(2).into(),
        ]);
    }
    println!("{}", write_table("results", "fault_sweep_timeline", &table));
}
