//! Delivery ratio vs. node failure rate — the experiment behind the
//! paper's fault-tolerance claim. A growing fraction of sensors suffers
//! permanent battery death mid-run (the same seeded [`FaultPlan`] for
//! every variant at each point, so the comparison is apples-to-apples),
//! and OPT / NOOPT / ZBR are measured on what still gets through.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin fault_sweep [--quick]
//! [--seeds N] [--duration SECS] [--threads N] [--observe]`
//!
//! With `--observe`, one extra observed run per variant at a fixed 30 %
//! failure fraction emits a per-window delivery timeline
//! (`results/fault_sweep_timeline.*`) showing how each variant degrades
//! and recovers around fault onset.

use dftmsn_bench::experiments::{write_table, ExperimentOpts};
use dftmsn_bench::sweep::{average, run_all, RunSpec};
use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::variants::ProtocolKind;
use dftmsn_metrics::table::Table;

fn main() {
    let opts = ExperimentOpts::from_args();
    let fractions = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let variants = [ProtocolKind::Opt, ProtocolKind::NoOpt, ProtocolKind::Zbr];

    eprintln!(
        "fault_sweep: failure fraction {{0..0.5}} x {{OPT,NOOPT,ZBR}} x {} seeds @ {} s",
        opts.seeds, opts.duration_secs
    );

    let mut specs = Vec::new();
    for &frac in &fractions {
        for &kind in &variants {
            for seed in 1..=opts.seeds {
                let scenario =
                    ScenarioParams::paper_default().with_duration_secs(opts.duration_secs);
                // The plan depends only on (scenario, fraction, seed): every
                // variant at this sweep point loses the same sensors at the
                // same instants.
                let faults = FaultPlan::node_failures(&scenario, frac, None, seed);
                specs.push(RunSpec {
                    scenario,
                    protocol: ProtocolParams::paper_default(),
                    config: kind.config(),
                    seed,
                    faults,
                    observe_window_secs: None,
                });
            }
        }
    }
    let reports = run_all(&specs, opts.threads);

    let mut ratio = Table::new(
        "Fault tolerance: delivery ratio (%) vs. fraction of sensors lost to battery death",
        &["failed fraction", "OPT", "NOOPT", "ZBR"],
    );
    let mut delay = Table::new(
        "Fault tolerance: mean delivery delay (s) vs. fraction of sensors lost",
        &["failed fraction", "OPT", "NOOPT", "ZBR"],
    );
    let seeds = opts.seeds as usize;
    let per_point = variants.len() * seeds;
    for (fi, &frac) in fractions.iter().enumerate() {
        let base = fi * per_point;
        let cell = |vi: usize| average(&reports[base + vi * seeds..base + (vi + 1) * seeds]);
        let cells: Vec<_> = (0..variants.len()).map(cell).collect();
        ratio.row(vec![
            frac.into(),
            (cells[0].ratio.mean() * 100.0).into(),
            (cells[1].ratio.mean() * 100.0).into(),
            (cells[2].ratio.mean() * 100.0).into(),
        ]);
        delay.row(vec![
            frac.into(),
            cells[0].delay_secs.mean().into(),
            cells[1].delay_secs.mean().into(),
            cells[2].delay_secs.mean().into(),
        ]);
    }
    println!("{}", write_table("results", "fault_sweep_delivery", &ratio));
    println!("{}", write_table("results", "fault_sweep_delay", &delay));

    if std::env::args().any(|a| a == "--observe") {
        timeline(&opts, &variants);
    }
}

/// One observed run per variant at a fixed failure fraction: the windowed
/// delivery counts show the dip (and any recovery) around fault onset
/// that the sweep's end-of-run averages integrate away.
fn timeline(opts: &ExperimentOpts, variants: &[ProtocolKind]) {
    let frac = 0.3;
    let seed = 1;
    // ~25 points across the run, whatever the duration.
    let window = (opts.duration_secs as f64 / 25.0).max(1.0);
    let scenario = ScenarioParams::paper_default().with_duration_secs(opts.duration_secs);
    let faults = FaultPlan::node_failures(&scenario, frac, None, seed);
    eprintln!(
        "fault_sweep: timeline at failure fraction {frac} ({} fault events, {window:.0} s windows)",
        faults.len()
    );

    let mut columns: Vec<Vec<(f64, f64)>> = Vec::new();
    for &kind in variants {
        let spec = RunSpec {
            scenario: scenario.clone(),
            protocol: ProtocolParams::paper_default(),
            config: kind.config(),
            seed,
            faults: faults.clone(),
            observe_window_secs: Some(window),
        };
        let (_, series) = spec.run_observed();
        let series = series.expect("observed run returns series");
        let deliveries = series.get("deliveries").expect("deliveries series");
        columns.push(deliveries.iter().collect());
    }

    let mut table = Table::new(
        &format!(
            "Deliveries per {window:.0} s window, {:.0} % of sensors lost (seed {seed})",
            frac * 100.0
        ),
        &["t (s)", "OPT", "NOOPT", "ZBR"],
    );
    let rows = columns.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..rows {
        let t = columns
            .iter()
            .find_map(|c| c.get(i))
            .map_or(0.0, |&(t, _)| t);
        let cell = |vi: usize| columns[vi].get(i).map_or(0.0, |&(_, v)| v);
        table.row(vec![
            t.into(),
            cell(0).into(),
            cell(1).into(),
            cell(2).into(),
        ]);
    }
    println!("{}", write_table("results", "fault_sweep_timeline", &table));
}
