//! Failing regression gate for the scale tier.
//!
//! Re-measures the small end of the scale tier (200 and 1 000 sensors,
//! both mobility modes, at the *full* tier duration so the figures are
//! directly comparable with the committed rows) and compares each
//! re-measured row against the `scale` section of the committed
//! `BENCH_engine.json`:
//!
//! * **ns/event per row** — the gate. A row more than 25 % slower than
//!   its committed figure fails the check (exit 1); anything slower at
//!   all, but within the budget, prints a warning. The 25 % budget
//!   absorbs machine noise while still catching the class of regression
//!   this tier exists to detect (an O(n) term creeping back into a hot
//!   path moves the 1 000-sensor row by far more than 25 %).
//! * **lazy/ticked speedup at 1 000 sensors** — advisory only. The ratio
//!   is largely machine-independent; a collapse below half the committed
//!   figure warns that lazy mobility specifically regressed.
//!
//! `--warn-only` keeps the old advisory behaviour: everything prints,
//! nothing fails. Use it when the hardware legitimately differs from the
//! machine that produced the committed baseline (the committed numbers
//! are machine-specific; a slower CI box would otherwise fail the gate
//! spuriously).
//!
//! The 5 000- and 20 000-sensor rows are deliberately *not* re-measured
//! here — they exist in the committed file and take minutes to reproduce;
//! the gate's job is a fast CI signal, and per-event regressions visible
//! at scale are visible at 1 000 sensors too.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin scale_check
//! [--warn-only] [BASELINE_JSON]` (default `BENCH_engine.json`).

use dftmsn_bench::scale::{run_tier, SCALE_DURATION_SECS, SCALE_SENSORS};
use dftmsn_metrics::json::Json;

/// Relative ns/event regression beyond which the gate fails.
const FAIL_BUDGET: f64 = 0.25;

fn committed_row<'a>(scale: &'a Json, sensors: f64, mode: &str) -> Option<&'a Json> {
    scale.get("rows")?.as_array()?.iter().find(|r| {
        r.get("sensors").and_then(Json::as_f64) == Some(sensors)
            && r.get("mode").and_then(Json::as_str) == Some(mode)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let warn_only = args.iter().any(|a| a == "--warn-only");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or("BENCH_engine.json", String::as_str);

    // A missing or malformed baseline is not a regression — there is
    // nothing to compare against, so the gate degrades to a notice.
    let committed = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("scale_check: cannot parse '{path}': {e} — nothing to compare");
                return;
            }
        },
        Err(e) => {
            eprintln!("scale_check: cannot read '{path}': {e} — nothing to compare");
            return;
        }
    };
    let Some(scale) = committed.get("scale") else {
        eprintln!(
            "scale_check: '{path}' has no scale section (schema {:?}) — \
             regenerate with `perf_baseline --scale`",
            committed.get("schema").and_then(Json::as_str)
        );
        return;
    };

    // Full tier duration: the committed rows were measured at
    // SCALE_DURATION_SECS, and ns/event at a shorter duration includes a
    // different share of startup cost, which would bias the comparison.
    let rows = run_tier(&SCALE_SENSORS[..2], SCALE_DURATION_SECS);

    let mut failed = false;
    let mut warned = false;
    for row in &rows {
        let Some(committed_row) = committed_row(scale, row.sensors as f64, row.mode_label()) else {
            eprintln!(
                "scale_check: '{path}' has no committed {} {} row — skipping",
                row.sensors,
                row.mode_label()
            );
            continue;
        };
        let Some(ref_ns) = committed_row.get("ns_per_event").and_then(Json::as_f64) else {
            continue;
        };
        let now_ns = row.ns_per_event();
        let rel = now_ns / ref_ns - 1.0;
        println!(
            "scale_check {:>5} {:>6}: {:>7.1} ns/event (committed {:>7.1}, {:+.1}%)",
            row.sensors,
            row.mode_label(),
            now_ns,
            ref_ns,
            rel * 100.0
        );
        if rel > FAIL_BUDGET {
            eprintln!(
                "{}: {} {} ns/event regressed {:.1}% (> {:.0}% budget)",
                if warn_only { "warning" } else { "FAIL" },
                row.sensors,
                row.mode_label(),
                rel * 100.0,
                FAIL_BUDGET * 100.0
            );
            failed = true;
        } else if rel > 0.0 {
            eprintln!(
                "warning: {} {} ns/event up {:.1}% (within the {:.0}% budget)",
                row.sensors,
                row.mode_label(),
                rel * 100.0,
                FAIL_BUDGET * 100.0
            );
            warned = true;
        }
    }

    // Advisory speedup check (machine-independent ratio).
    let ev_s = |sensors: usize, mode: &str| {
        rows.iter()
            .find(|r| r.sensors == sensors && r.mode_label() == mode)
            .map_or(0.0, |r| r.events_per_sec())
    };
    if let (Some(rt), Some(rl)) = (
        committed_row(scale, 1_000.0, "ticked")
            .and_then(|r| r.get("events_per_sec"))
            .and_then(Json::as_f64),
        committed_row(scale, 1_000.0, "lazy")
            .and_then(|r| r.get("events_per_sec"))
            .and_then(Json::as_f64),
    ) {
        let ref_speedup = rl / rt;
        let now_speedup = ev_s(1_000, "lazy") / ev_s(1_000, "ticked").max(1e-9);
        if now_speedup < 0.5 * ref_speedup {
            eprintln!(
                "warning: lazy/ticked speedup collapsed to {now_speedup:.2}x \
                 (committed {ref_speedup:.2}x) — lazy mobility may have regressed"
            );
            warned = true;
        }
    }

    if failed {
        if warn_only {
            eprintln!("scale_check: regressions over budget (ignored: --warn-only)");
        } else {
            eprintln!(
                "scale_check: FAILED — ns/event regressed beyond the {:.0}% budget; \
                 if this machine legitimately differs from the baseline's, re-run with \
                 --warn-only or refresh BENCH_engine.json via `perf_baseline --scale`",
                FAIL_BUDGET * 100.0
            );
            std::process::exit(1);
        }
    } else if !warned {
        println!("scale_check: within tolerance of the committed baseline");
    }
}
