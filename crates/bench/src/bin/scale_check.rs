//! Warn-only regression guard for the scale tier.
//!
//! Re-measures a quick slice of the scale tier (200 and 1 000 sensors,
//! short duration) and compares it against the `scale` section of the
//! committed `BENCH_engine.json`. Two checks, both advisory:
//!
//! * the lazy-over-ticked **speedup** at 1 000 sensors must not collapse
//!   below half of the committed figure (this ratio is largely machine-
//!   independent, so it is the primary guard);
//! * the absolute lazy events/sec at 1 000 sensors must not fall below
//!   half of the committed value (machine- and load-dependent — noisy,
//!   but it catches order-of-magnitude regressions).
//!
//! The binary always exits 0: the numbers vary across machines and CI
//! load, so a hard gate would flake. CI runs it after the `perf_baseline
//! --quick --scale` smoke and surfaces the warnings in the log.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin scale_check
//! [BASELINE_JSON]` (default `BENCH_engine.json`).

use dftmsn_bench::scale::{run_tier, QUICK_DURATION_SECS, SCALE_SENSORS};
use dftmsn_metrics::json::Json;

fn committed_ev_s(scale: &Json, sensors: f64, mode: &str) -> Option<f64> {
    scale
        .get("rows")?
        .as_array()?
        .iter()
        .find(|r| {
            r.get("sensors").and_then(Json::as_f64) == Some(sensors)
                && r.get("mode").and_then(Json::as_str) == Some(mode)
        })?
        .get("events_per_sec")?
        .as_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = args.get(1).map_or("BENCH_engine.json", String::as_str);

    let committed = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("scale_check: cannot parse '{path}': {e} — nothing to compare");
                return;
            }
        },
        Err(e) => {
            eprintln!("scale_check: cannot read '{path}': {e} — nothing to compare");
            return;
        }
    };
    let Some(scale) = committed.get("scale") else {
        eprintln!(
            "scale_check: '{path}' has no scale section (schema {:?}) — \
             regenerate with `perf_baseline --scale`",
            committed.get("schema").and_then(Json::as_str)
        );
        return;
    };
    let (Some(ref_ticked), Some(ref_lazy)) = (
        committed_ev_s(scale, 1_000.0, "ticked"),
        committed_ev_s(scale, 1_000.0, "lazy"),
    ) else {
        eprintln!("scale_check: '{path}' scale section lacks 1000-sensor rows");
        return;
    };
    let ref_speedup = ref_lazy / ref_ticked;

    let rows = run_tier(&SCALE_SENSORS[..2], QUICK_DURATION_SECS);
    let ev_s = |mode: &str| {
        rows.iter()
            .find(|r| r.sensors == 1_000 && r.mode_label() == mode)
            .map_or(0.0, |r| r.events_per_sec())
    };
    let (now_ticked, now_lazy) = (ev_s("ticked"), ev_s("lazy"));
    let now_speedup = now_lazy / now_ticked;

    println!(
        "scale_check @1000 sensors: lazy {:.0} kev/s ({}: {:.0}), \
         lazy/ticked speedup {:.2}x ({}: {:.2}x)",
        now_lazy / 1e3,
        path,
        ref_lazy / 1e3,
        now_speedup,
        path,
        ref_speedup
    );
    let mut warned = false;
    if now_speedup < 0.5 * ref_speedup {
        eprintln!(
            "warning: lazy/ticked speedup collapsed to {now_speedup:.2}x \
             (committed {ref_speedup:.2}x) — lazy mobility may have regressed"
        );
        warned = true;
    }
    if now_lazy < 0.5 * ref_lazy {
        eprintln!(
            "warning: lazy throughput {:.0} kev/s is under half the committed \
             {:.0} kev/s (machine-dependent; ignore if the hardware differs)",
            now_lazy / 1e3,
            ref_lazy / 1e3
        );
        warned = true;
    }
    if !warned {
        println!("scale_check: within tolerance of the committed baseline");
    }
}
