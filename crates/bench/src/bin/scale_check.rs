use dftmsn_core::params::ScenarioParams;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_core::world::Simulation;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dur: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2000);
    let area: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(150.0);
    let sinks: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(3);
    for kind in ProtocolKind::ALL {
        let mut params = ScenarioParams::paper_default()
            .with_duration_secs(dur)
            .with_sinks(sinks);
        params.area_width_m = area;
        params.area_height_m = area;
        let t = std::time::Instant::now();
        let r = Simulation::builder(params, kind).seed(1).build().run();
        println!("{:9} ratio {:5.1}% power {:7.3} mW delay {:6.0}s coll {:6} att {:7} mcast {:6} xi {:.3} [{:?}]",
            kind.label(), r.delivery_ratio()*100.0, r.avg_sensor_power_mw, r.mean_delay_secs,
            r.collisions, r.attempts, r.multicasts, r.mean_final_xi, t.elapsed());
        println!(
            "          drops: ovf {} rej {} ftd {} | copies {} sinkrx {} ctrl_bits {}",
            r.drops_overflow,
            r.drops_rejected,
            r.drops_ftd,
            r.copies_sent,
            r.sink_receptions,
            r.control_bits
        );
    }
}
