//! CI gate for the parallel interval executor's determinism contract: a
//! multi-threaded run of a scale-tier cell must be **bit-identical** to
//! the sequential run — every counter and every f64 bit, under both
//! mobility engines, composed with sharding.
//!
//! `tests/sharded_engine.rs` proves the contract on small pinned worlds;
//! this gate re-proves it on a real scale-tier cell (1 000 sensors, where
//! the interaction quarantine actually splits work) so a regression that
//! only shows up under load cannot slip past CI. The ticked cell must
//! additionally *engage* the parallel path (events executed in chunks),
//! so the gate cannot rot into comparing two sequential runs. Exits 0 on
//! parity, 1 on any divergence.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin thread_parity
//! [--sensors N] [--secs S]` (defaults 1000 / 60).

use dftmsn_bench::scale::scale_scenario;
use dftmsn_core::profile::ExecStats;
use dftmsn_core::report::SimReport;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_core::world::{MobilityMode, Simulation};

/// Every tracked field of a report, flattened to exact bit patterns.
fn fingerprint(r: &SimReport) -> Vec<(&'static str, u64)> {
    vec![
        ("generated", r.generated),
        ("delivered", r.delivered),
        ("sink_receptions", r.sink_receptions),
        ("frames_sent", r.frames_sent),
        ("collisions", r.collisions),
        ("attempts", r.attempts),
        ("multicasts", r.multicasts),
        ("copies_sent", r.copies_sent),
        ("events_processed", r.events_processed),
        ("mean_delay_secs", r.mean_delay_secs.to_bits()),
        ("total_sensor_energy_j", r.total_sensor_energy_j.to_bits()),
        ("avg_sensor_power_mw", r.avg_sensor_power_mw.to_bits()),
        ("deliveries", r.deliveries.len() as u64),
    ]
}

/// Drives a run through `advance` (the parallel-aware unit of work) so
/// the executor's telemetry is readable afterwards; the baseline takes
/// the same path for a like-for-like report.
fn run(
    sensors: usize,
    secs: u64,
    mode: MobilityMode,
    shards: usize,
    threads: usize,
) -> (SimReport, ExecStats) {
    let mut sim = Simulation::builder(scale_scenario(sensors, secs), ProtocolKind::Opt)
        .seed(1)
        .mobility_mode(mode)
        .shards(shards)
        .threads(threads)
        .build();
    while sim.advance() {}
    let stats = sim.exec_stats().clone();
    (sim.finish_partial(), stats)
}

fn arg(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map_or(default, |s| {
            s.parse()
                .unwrap_or_else(|_| panic!("{flag} takes a number"))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sensors = arg(&args, "--sensors", 1_000);
    let secs = arg(&args, "--secs", 60) as u64;

    let mut failed = false;
    for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
        let (single, _) = run(sensors, secs, mode, 1, 1);
        for (shards, threads) in [(1, 2), (4, 8)] {
            let (threaded, stats) = run(sensors, secs, mode, shards, threads);
            let (a, b) = (fingerprint(&single), fingerprint(&threaded));
            let diverged: Vec<&&str> = a
                .iter()
                .zip(&b)
                .filter(|((_, x), (_, y))| x != y)
                .map(|((name, _), _)| name)
                .collect();
            if diverged.is_empty() {
                eprintln!(
                    "thread_parity {mode:?} {shards}sh x {threads}th: OK — \
                     bit-identical ({sensors} sensors, {secs} s, {} events; \
                     {} parallel / {} sequential, {} fallback + {} bypass of \
                     {} intervals)",
                    single.events_processed,
                    stats.parallel_events,
                    stats.sequential_events,
                    stats.fallback_intervals,
                    stats.bypass_intervals,
                    stats.total_intervals(),
                );
            } else {
                failed = true;
                eprintln!(
                    "thread_parity {mode:?} {shards}sh x {threads}th: FAIL — \
                     diverged from sequential in: {diverged:?}"
                );
                for ((name, x), (_, y)) in a.iter().zip(&b).filter(|((_, x), (_, y))| x != y) {
                    eprintln!("  {name}: sequential={x} threaded={y}");
                }
            }
            if mode == MobilityMode::Ticked && threads == 8 && stats.parallel_events == 0 {
                failed = true;
                eprintln!(
                    "thread_parity {mode:?}: FAIL — the parallel path never \
                     engaged on the ticked scale cell (the gate would be \
                     vacuous); fallback={} bypass={}",
                    stats.fallback_intervals, stats.bypass_intervals,
                );
            }
        }
    }
    if failed {
        eprintln!("thread_parity: determinism contract BROKEN (DESIGN.md \u{a7} 8)");
        std::process::exit(1);
    }
}
