//! Engine performance baseline: times the simulation hot paths and writes
//! `BENCH_engine.json` so perf-sensitive PRs have a tracked before/after
//! figure (see EXPERIMENTS.md § Performance for the schema).
//!
//! Two measurements:
//!
//! * **engine** — every protocol variant run serially on one pinned
//!   scenario; reports wall time and events/second (the discrete-event
//!   core's throughput, from `SimReport::events_processed`);
//! * **sweep** — a batch of runs through [`dftmsn_bench::run_all`]'s
//!   work-stealing scheduler; reports runs/second (harness throughput).
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin perf_baseline
//! [--quick] [--out PATH]`. `--quick` shrinks both workloads to a smoke
//! size for CI; numbers from different machines (or `--quick` and full
//! runs) are not comparable with each other.

use dftmsn_bench::sweep::{run_all, RunSpec};
use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::variants::ProtocolKind;
use dftmsn_core::world::Simulation;
use dftmsn_metrics::json::Json;
use std::time::Instant;

struct EngineRow {
    protocol: &'static str,
    runs: u64,
    wall_ms: f64,
    events: u64,
    frames: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_engine.json", String::as_str);

    // Pinned workloads: big enough that per-event costs dominate startup,
    // small enough to finish in seconds. Changing them invalidates
    // comparisons against previously recorded baselines.
    let (engine_secs, engine_seeds, sweep_secs, sweep_seeds) = if quick {
        (1_000, 1, 500, 1)
    } else {
        (10_000, 3, 2_000, 4)
    };
    let scenario = ScenarioParams {
        sensors: 30,
        sinks: 2,
        duration_secs: engine_secs,
        ..ScenarioParams::paper_default()
    };

    // Serial per-variant engine timing.
    let mut rows: Vec<EngineRow> = Vec::new();
    for kind in ProtocolKind::ALL {
        let mut wall_ms = 0.0;
        let mut events = 0;
        let mut frames = 0;
        for seed in 1..=engine_seeds {
            let sim = Simulation::builder(scenario.clone(), kind)
                .seed(seed)
                .build();
            let t0 = Instant::now();
            let report = sim.run();
            wall_ms += t0.elapsed().as_secs_f64() * 1_000.0;
            events += report.events_processed;
            frames += report.frames_sent;
        }
        eprintln!(
            "{:<9} {:>8.1} ms  {:>9} events  {:>6.0} kev/s",
            kind.label(),
            wall_ms,
            events,
            events as f64 / wall_ms
        );
        rows.push(EngineRow {
            protocol: kind.label(),
            runs: engine_seeds,
            wall_ms,
            events,
            frames,
        });
    }
    let total_ms: f64 = rows.iter().map(|r| r.wall_ms).sum();
    let total_events: u64 = rows.iter().map(|r| r.events).sum();

    // Parallel sweep timing (work-stealing run_all, all cores).
    let specs: Vec<RunSpec> = ProtocolKind::ALL
        .into_iter()
        .flat_map(|kind| {
            (1..=sweep_seeds).map(move |seed| RunSpec {
                scenario: ScenarioParams {
                    sensors: 30,
                    sinks: 2,
                    duration_secs: sweep_secs,
                    ..ScenarioParams::paper_default()
                },
                protocol: ProtocolParams::paper_default(),
                config: kind.config(),
                seed,
                faults: FaultPlan::default(),
                observe_window_secs: None,
            })
        })
        .collect();
    let t0 = Instant::now();
    let reports = run_all(&specs, 0);
    let sweep_ms = t0.elapsed().as_secs_f64() * 1_000.0;
    eprintln!(
        "sweep     {:>8.1} ms  {:>9} runs    {:>6.2} runs/s",
        sweep_ms,
        reports.len(),
        reports.len() as f64 / (sweep_ms / 1_000.0)
    );

    let engine_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::object()
                .field("protocol", r.protocol)
                .field("runs", r.runs)
                .field("wall_ms", r.wall_ms)
                .field("events", r.events)
                .field("frames_sent", r.frames)
                .field("events_per_sec", r.events as f64 / (r.wall_ms / 1_000.0))
        })
        .collect();
    let json = Json::object()
        .field("schema", "dftmsn-perf-baseline/1")
        .field("quick", quick)
        .field(
            "scenario",
            Json::object()
                .field("sensors", scenario.sensors)
                .field("sinks", scenario.sinks)
                .field("duration_secs", engine_secs)
                .field("seeds_per_variant", engine_seeds),
        )
        .field("engine", Json::Arr(engine_rows))
        .field(
            "engine_totals",
            Json::object()
                .field("wall_ms", total_ms)
                .field("events", total_events)
                .field("events_per_sec", total_events as f64 / (total_ms / 1_000.0)),
        )
        .field(
            "sweep",
            Json::object()
                .field("runs", specs.len())
                .field("threads", 0usize)
                .field("duration_secs", sweep_secs)
                .field("wall_ms", sweep_ms)
                .field("runs_per_sec", specs.len() as f64 / (sweep_ms / 1_000.0)),
        );
    std::fs::write(out_path, json.render() + "\n").expect("write baseline json");
    eprintln!("wrote {out_path}");
}
