//! Engine performance baseline: times the simulation hot paths and writes
//! `BENCH_engine.json` so perf-sensitive PRs have a tracked before/after
//! figure (see EXPERIMENTS.md § Performance for the schema).
//!
//! Three measurements:
//!
//! * **engine** — every protocol variant run serially on one pinned
//!   scenario; reports wall time (accumulated in integer nanoseconds so
//!   repeated float addition cannot smear the totals), events/second and
//!   ns/event (the discrete-event core's throughput, from
//!   `SimReport::events_processed`);
//! * **sweep** — a batch of runs through [`dftmsn_bench::run_all`]'s
//!   work-stealing scheduler; reports runs/second (harness throughput);
//! * **scale** (`--scale`) — the 200/1 000/5 000-sensor tier of
//!   [`dftmsn_bench::scale`], OPT under both mobility modes, which is the
//!   tracked large-n figure.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin perf_baseline
//! [--quick] [--scale] [--pre-ref EV_PER_S] [--out PATH]`. `--quick`
//! shrinks all workloads to a smoke size for CI; numbers from different
//! machines (or `--quick` and full runs) are not comparable with each
//! other. `--pre-ref` embeds an externally measured pre-change reference
//! throughput (OPT, ticked, 1 000 sensors, same workload and machine) into
//! the scale section so the speedup it anchors is recorded next to the
//! numbers (EXPERIMENTS.md § Scale tier documents the methodology).

use dftmsn_bench::scale::{run_tier, QUICK_DURATION_SECS, SCALE_DURATION_SECS, SCALE_SENSORS};
use dftmsn_bench::sweep::{run_all, RunSpec};
use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::variants::ProtocolKind;
use dftmsn_core::world::Simulation;
use dftmsn_metrics::json::Json;
use std::time::Instant;

struct EngineRow {
    protocol: &'static str,
    runs: u64,
    wall_ns: u128,
    events: u64,
    frames: u64,
}

impl EngineRow {
    fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }

    fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ns as f64 / 1e9)
    }

    fn ns_per_event(&self) -> f64 {
        self.wall_ns as f64 / self.events as f64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = args.iter().any(|a| a == "--scale");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_engine.json", String::as_str);
    let pre_ref: Option<f64> = args
        .iter()
        .position(|a| a == "--pre-ref")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--pre-ref takes events/sec"));

    // Pinned workloads: big enough that per-event costs dominate startup,
    // small enough to finish in seconds. Changing them invalidates
    // comparisons against previously recorded baselines.
    let (engine_secs, engine_seeds, sweep_secs, sweep_seeds) = if quick {
        (1_000, 1, 500, 1)
    } else {
        (10_000, 3, 2_000, 4)
    };
    let scenario = ScenarioParams {
        sensors: 30,
        sinks: 2,
        duration_secs: engine_secs,
        ..ScenarioParams::paper_default()
    };

    // Serial per-variant engine timing; wall accumulated in integer ns.
    let mut rows: Vec<EngineRow> = Vec::new();
    for kind in ProtocolKind::ALL {
        let mut wall_ns: u128 = 0;
        let mut events = 0;
        let mut frames = 0;
        for seed in 1..=engine_seeds {
            let sim = Simulation::builder(scenario.clone(), kind)
                .seed(seed)
                .build();
            let t0 = Instant::now();
            let report = sim.run();
            wall_ns += t0.elapsed().as_nanos();
            events += report.events_processed;
            frames += report.frames_sent;
        }
        let row = EngineRow {
            protocol: kind.label(),
            runs: engine_seeds,
            wall_ns,
            events,
            frames,
        };
        eprintln!(
            "{:<9} {:>8.1} ms  {:>9} events  {:>6.0} kev/s  {:>5.0} ns/ev",
            row.protocol,
            row.wall_ms(),
            row.events,
            row.events_per_sec() / 1e3,
            row.ns_per_event()
        );
        rows.push(row);
    }
    let total_ns: u128 = rows.iter().map(|r| r.wall_ns).sum();
    let total_events: u64 = rows.iter().map(|r| r.events).sum();

    // Parallel sweep timing (work-stealing run_all, all cores).
    let specs: Vec<RunSpec> = ProtocolKind::ALL
        .into_iter()
        .flat_map(|kind| {
            (1..=sweep_seeds).map(move |seed| RunSpec {
                scenario: ScenarioParams {
                    sensors: 30,
                    sinks: 2,
                    duration_secs: sweep_secs,
                    ..ScenarioParams::paper_default()
                },
                protocol: ProtocolParams::paper_default(),
                config: kind.config(),
                seed,
                faults: FaultPlan::default(),
                observe_window_secs: None,
            })
        })
        .collect();
    let t0 = Instant::now();
    let reports = run_all(&specs, 0);
    let sweep_ns = t0.elapsed().as_nanos();
    let sweep_ms = sweep_ns as f64 / 1e6;
    eprintln!(
        "sweep     {:>8.1} ms  {:>9} runs    {:>6.2} runs/s",
        sweep_ms,
        reports.len(),
        reports.len() as f64 / (sweep_ms / 1_000.0)
    );

    let engine_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::object()
                .field("protocol", r.protocol)
                .field("runs", r.runs)
                .field("wall_ms", r.wall_ms())
                .field("events", r.events)
                .field("frames_sent", r.frames)
                .field("events_per_sec", r.events_per_sec())
                .field("ns_per_event", r.ns_per_event())
        })
        .collect();
    let mut json = Json::object()
        .field("schema", "dftmsn-perf-baseline/2")
        .field("quick", quick)
        .field(
            "scenario",
            Json::object()
                .field("sensors", scenario.sensors)
                .field("sinks", scenario.sinks)
                .field("duration_secs", engine_secs)
                .field("seeds_per_variant", engine_seeds),
        )
        .field("engine", Json::Arr(engine_rows))
        .field(
            "engine_totals",
            Json::object()
                .field("wall_ms", total_ns as f64 / 1e6)
                .field("events", total_events)
                .field(
                    "events_per_sec",
                    total_events as f64 / (total_ns as f64 / 1e9),
                ),
        )
        .field(
            "sweep",
            Json::object()
                .field("runs", specs.len())
                .field("threads", 0usize)
                .field("duration_secs", sweep_secs)
                .field("wall_ms", sweep_ms)
                .field("runs_per_sec", specs.len() as f64 / (sweep_ms / 1_000.0)),
        );

    if scale {
        let (sizes, dur): (&[usize], u64) = if quick {
            (&SCALE_SENSORS[..2], QUICK_DURATION_SECS)
        } else {
            (&SCALE_SENSORS[..], SCALE_DURATION_SECS)
        };
        let tier = run_tier(sizes, dur);
        let tier_rows: Vec<Json> = tier
            .iter()
            .map(|r| {
                Json::object()
                    .field("sensors", r.sensors)
                    .field("mode", r.mode_label())
                    .field("wall_ms", r.wall_ns as f64 / 1e6)
                    .field("events", r.events)
                    .field("events_per_sec", r.events_per_sec())
                    .field("ns_per_event", r.ns_per_event())
                    .field("generated", r.generated)
                    .field("delivered", r.delivered)
                    .field("delivery_ratio", r.delivery_ratio())
                    .field("mean_delay_secs", r.mean_delay_secs)
            })
            .collect();
        let mut section = Json::object()
            .field("protocol", "OPT")
            .field("duration_secs", dur)
            .field("seed", 1u64)
            .field("rows", Json::Arr(tier_rows));
        if let Some(ev_s) = pre_ref {
            let lazy_1k = tier
                .iter()
                .find(|r| r.sensors == 1_000 && r.mode_label() == "lazy")
                .map_or(0.0, |r| r.events_per_sec());
            section = section.field(
                "pre_pr_reference",
                Json::object()
                    .field("events_per_sec", ev_s)
                    .field("speedup_lazy_1000", lazy_1k / ev_s)
                    .field(
                        "method",
                        "OPT ticked 1000-sensor scale workload, pre-change binary, \
                         same machine (EXPERIMENTS.md \u{a7} Scale tier)",
                    ),
            );
        }
        json = json.field("scale", section);
    }

    std::fs::write(out_path, json.render() + "\n").expect("write baseline json");
    eprintln!("wrote {out_path}");
}
