//! Engine performance baseline: times the simulation hot paths and writes
//! `BENCH_engine.json` so perf-sensitive PRs have a tracked before/after
//! figure (see EXPERIMENTS.md § Performance for the schema).
//!
//! Three measurements:
//!
//! * **engine** — every protocol variant run serially on one pinned
//!   scenario; reports wall time (accumulated in integer nanoseconds so
//!   repeated float addition cannot smear the totals), events/second and
//!   ns/event (the discrete-event core's throughput, from
//!   `SimReport::events_processed`);
//! * **sweep** — a batch of runs through [`dftmsn_bench::run_all`]'s
//!   work-stealing scheduler; reports runs/second (harness throughput);
//! * **scale** (`--scale`) — the 200/1 000/5 000/20 000-sensor tier of
//!   [`dftmsn_bench::scale`], OPT under both mobility modes, which is the
//!   tracked large-n figure.
//!
//! Usage: `cargo run --release -p dftmsn-bench --bin perf_baseline
//! [--quick] [--scale] [--profile-events] [--speedup-check] [--warn-only]
//! [--pre-ref EV_PER_S] [--out PATH] [--fresh]`.
//! `--speedup-check` gates the parallel interval executor's payoff after
//! the measurements land (see [`check_speedup`]; `--warn-only` demotes a
//! violation to a warning). `--quick` shrinks all workloads to a smoke
//! size for CI;
//! numbers from different machines (or `--quick` and full runs) are not
//! comparable with each other. `--pre-ref` embeds an externally measured
//! pre-change reference throughput (OPT, ticked, 1 000 sensors, same
//! workload and machine) into the scale section so the speedup it anchors
//! is recorded next to the numbers (EXPERIMENTS.md § Scale tier documents
//! the methodology). `--profile-events` adds one extra *profiled* OPT run
//! of the engine scenario and reports where its wall time went, per event
//! kind (count, mean, p50/p99 from a power-of-two histogram), as a printed
//! table and an `event_profile` JSON block; the timestamp overhead makes
//! that run's aggregate wall time incomparable with the unprofiled rows,
//! so it is never used for the tracked figures.
//!
//! The baseline is resumable at the granularity of its timed units: each
//! engine `(variant, seed)` run and each scale `(sensors, mode)` run is
//! recorded in `<out>.progress` the moment it finishes, the output JSON is
//! rewritten after every unit with `"partial": true`, and a rerun replays
//! recorded units instead of re-measuring them (their wall times are the
//! ones measured when they originally ran). The sweep section times the
//! parallel scheduler over the *whole* batch, so it is one unit — slicing
//! it across restarts would time something else. On a complete run the
//! progress file is removed, so the next invocation re-measures from
//! scratch; `--fresh` discards a leftover progress file up front. Progress
//! recorded under a different workload shape (e.g. `--quick` vs. full) is
//! ignored.

use dftmsn_bench::scale::{
    measure, measure_parallel, scale_scenario, QUICK_DURATION_SECS, SCALE_DURATION_SECS,
    SCALE_SENSORS,
};
use dftmsn_bench::sweep::{run_all, RunSpec};
use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::policy::PolicySpec;
use dftmsn_core::profile::{EventProfile, ExecStats};
use dftmsn_core::variants::ProtocolKind;
use dftmsn_core::world::{MobilityMode, Simulation};
use dftmsn_metrics::json::Json;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct EngineRow {
    protocol: &'static str,
    runs: u64,
    wall_ns: u128,
    events: u64,
    frames: u64,
}

impl EngineRow {
    fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }

    fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ns as f64 / 1e9)
    }

    fn ns_per_event(&self) -> f64 {
        self.wall_ns as f64 / self.events as f64
    }
}

/// One measured scale point as stored in the output/progress files.
struct ScalePoint {
    sensors: usize,
    mode: &'static str,
    /// Spatial shard count (1 for the plain tier; >1 only in the
    /// `scale_threaded` section).
    shards: usize,
    /// Worker threads of the parallel interval executor (1 for the plain
    /// tier; >1 only in the `scale_threaded` section).
    threads: usize,
    wall_ns: u128,
    events: u64,
    generated: u64,
    delivered: u64,
    mean_delay_secs: f64,
}

impl ScalePoint {
    fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ns as f64 / 1e9)
    }

    fn ns_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.wall_ns as f64 / self.events as f64
    }

    fn delivery_ratio(&self) -> f64 {
        if self.generated == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.generated as f64
    }
}

/// Completed timed units of an interrupted invocation, keyed the same way
/// the measurement loops iterate.
#[derive(Default)]
struct Progress {
    /// (variant label, seed) → (wall_ns, events, frames).
    engine: HashMap<(String, u64), (u128, u64, u64)>,
    /// (wall_ns, runs) of the completed sweep section.
    sweep: Option<(u128, usize)>,
    /// (sensors, mode label) → the measured point.
    scale: HashMap<(usize, String), ScalePoint>,
    /// (sensors, mode label, shards, threads) → the measured multicore
    /// point.
    threaded: HashMap<(usize, String, usize, usize), ScalePoint>,
}

const PROGRESS_SCHEMA: &str = "dftmsn-perf-progress/2";

impl Progress {
    /// Loads recorded units, discarding a file whose workload fingerprint
    /// does not match the current invocation (stale shapes must not leak
    /// into a differently-sized baseline). Unreadable or unparseable
    /// files degrade to empty progress with a warning — the cost is
    /// re-measurement, never a wrong number.
    fn load(path: &Path, fingerprint: &str) -> Progress {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Progress::default(),
            Err(e) => {
                eprintln!("warning: cannot read {}: {e}; re-measuring", path.display());
                return Progress::default();
            }
        };
        let json = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!(
                    "warning: {} is not valid progress JSON ({e}); re-measuring",
                    path.display()
                );
                return Progress::default();
            }
        };
        if json.get("schema").and_then(Json::as_str) != Some(PROGRESS_SCHEMA)
            || json.get("fingerprint").and_then(Json::as_str) != Some(fingerprint)
        {
            eprintln!(
                "warning: {} records a different workload shape; re-measuring",
                path.display()
            );
            return Progress::default();
        }
        let mut progress = Progress::default();
        let ns = |j: &Json, key: &str| -> Option<u128> {
            j.get(key)
                .and_then(Json::as_str)
                .and_then(|s| s.parse().ok())
        };
        let num = |j: &Json, key: &str| -> Option<f64> { j.get(key).and_then(Json::as_f64) };
        for row in json.get("engine").and_then(Json::as_array).unwrap_or(&[]) {
            let (Some(protocol), Some(seed), Some(wall), Some(events), Some(frames)) = (
                row.get("protocol").and_then(Json::as_str),
                num(row, "seed"),
                ns(row, "wall_ns"),
                num(row, "events"),
                num(row, "frames"),
            ) else {
                continue;
            };
            progress.engine.insert(
                (protocol.to_string(), seed as u64),
                (wall, events as u64, frames as u64),
            );
        }
        if let Some(sweep) = json.get("sweep") {
            if let (Some(wall), Some(runs)) = (ns(sweep, "wall_ns"), num(sweep, "runs")) {
                progress.sweep = Some((wall, runs as usize));
            }
        }
        for row in json.get("scale").and_then(Json::as_array).unwrap_or(&[]) {
            let (Some(sensors), Some(mode), Some(wall)) = (
                num(row, "sensors"),
                row.get("mode").and_then(Json::as_str),
                ns(row, "wall_ns"),
            ) else {
                continue;
            };
            let mode_static: &'static str = if mode == "lazy" { "lazy" } else { "ticked" };
            progress.scale.insert(
                (sensors as usize, mode.to_string()),
                ScalePoint {
                    sensors: sensors as usize,
                    mode: mode_static,
                    shards: 1,
                    threads: 1,
                    wall_ns: wall,
                    events: num(row, "events").unwrap_or(0.0) as u64,
                    generated: num(row, "generated").unwrap_or(0.0) as u64,
                    delivered: num(row, "delivered").unwrap_or(0.0) as u64,
                    mean_delay_secs: num(row, "mean_delay_secs").unwrap_or(0.0),
                },
            );
        }
        for row in json
            .get("scale_threaded")
            .and_then(Json::as_array)
            .unwrap_or(&[])
        {
            let (Some(sensors), Some(mode), Some(shards), Some(threads), Some(wall)) = (
                num(row, "sensors"),
                row.get("mode").and_then(Json::as_str),
                num(row, "shards"),
                num(row, "threads"),
                ns(row, "wall_ns"),
            ) else {
                continue;
            };
            let mode_static: &'static str = if mode == "lazy" { "lazy" } else { "ticked" };
            progress.threaded.insert(
                (
                    sensors as usize,
                    mode.to_string(),
                    shards as usize,
                    threads as usize,
                ),
                ScalePoint {
                    sensors: sensors as usize,
                    mode: mode_static,
                    shards: shards as usize,
                    threads: threads as usize,
                    wall_ns: wall,
                    events: num(row, "events").unwrap_or(0.0) as u64,
                    generated: num(row, "generated").unwrap_or(0.0) as u64,
                    delivered: num(row, "delivered").unwrap_or(0.0) as u64,
                    mean_delay_secs: num(row, "mean_delay_secs").unwrap_or(0.0),
                },
            );
        }
        progress
    }

    /// Rewrites the progress file (write-to-temp + rename, so an
    /// interrupt mid-save cannot tear it).
    fn save(&self, path: &Path, fingerprint: &str) {
        let engine: Vec<Json> = {
            let mut keys: Vec<&(String, u64)> = self.engine.keys().collect();
            keys.sort();
            keys.into_iter()
                .map(|k| {
                    let (wall, events, frames) = self.engine[k];
                    Json::object()
                        .field("protocol", k.0.as_str())
                        .field("seed", k.1)
                        .field("wall_ns", wall.to_string())
                        .field("events", events)
                        .field("frames", frames)
                })
                .collect()
        };
        let scale: Vec<Json> = {
            let mut keys: Vec<&(usize, String)> = self.scale.keys().collect();
            keys.sort();
            keys.into_iter()
                .map(|k| {
                    let p = &self.scale[k];
                    Json::object()
                        .field("sensors", p.sensors)
                        .field("mode", p.mode)
                        .field("wall_ns", p.wall_ns.to_string())
                        .field("events", p.events)
                        .field("generated", p.generated)
                        .field("delivered", p.delivered)
                        .field("mean_delay_secs", p.mean_delay_secs)
                })
                .collect()
        };
        let threaded: Vec<Json> = {
            let mut keys: Vec<&(usize, String, usize, usize)> = self.threaded.keys().collect();
            keys.sort();
            keys.into_iter()
                .map(|k| {
                    let p = &self.threaded[k];
                    Json::object()
                        .field("sensors", p.sensors)
                        .field("mode", p.mode)
                        .field("shards", p.shards)
                        .field("threads", p.threads)
                        .field("wall_ns", p.wall_ns.to_string())
                        .field("events", p.events)
                        .field("generated", p.generated)
                        .field("delivered", p.delivered)
                        .field("mean_delay_secs", p.mean_delay_secs)
                })
                .collect()
        };
        let mut json = Json::object()
            .field("schema", PROGRESS_SCHEMA)
            .field("fingerprint", fingerprint)
            .field("engine", Json::Arr(engine))
            .field("scale", Json::Arr(scale))
            .field("scale_threaded", Json::Arr(threaded));
        if let Some((wall, runs)) = &self.sweep {
            json = json.field(
                "sweep",
                Json::object()
                    .field("wall_ns", wall.to_string())
                    .field("runs", *runs),
            );
        }
        let tmp = PathBuf::from(format!("{}.tmp", path.display()));
        let write =
            std::fs::write(&tmp, json.render() + "\n").and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!(
                "warning: cannot save progress to {}: {e}; interrupted work will repeat",
                path.display()
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = args.iter().any(|a| a == "--scale");
    let fresh = args.iter().any(|a| a == "--fresh");
    let profile_events = args.iter().any(|a| a == "--profile-events");
    let speedup_check = args.iter().any(|a| a == "--speedup-check");
    let warn_only = args.iter().any(|a| a == "--warn-only");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_engine.json", String::as_str);
    let pre_ref: Option<f64> = args
        .iter()
        .position(|a| a == "--pre-ref")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--pre-ref takes events/sec"));

    // Pinned workloads: big enough that per-event costs dominate startup,
    // small enough to finish in seconds. Changing them invalidates
    // comparisons against previously recorded baselines.
    let (engine_secs, engine_seeds, sweep_secs, sweep_seeds) = if quick {
        (1_000u64, 1u64, 500u64, 1u64)
    } else {
        (10_000, 3, 2_000, 4)
    };
    let scenario = ScenarioParams::paper_default()
        .with_sensors(30)
        .with_sinks(2)
        .with_duration_secs(engine_secs);
    let (scale_sizes, scale_dur): (&[usize], u64) = if quick {
        (&SCALE_SENSORS[..2], QUICK_DURATION_SECS)
    } else {
        (&SCALE_SENSORS[..], SCALE_DURATION_SECS)
    };
    // Multicore rows: mid-tier sizes re-run under (shards × threads)
    // cells — pure sharding, pure threading, and both composed. Results
    // are bit-identical by the engine's determinism contract; only the
    // wall time is interesting. The 50k/100k sizes are excluded (7 cells
    // at those sizes would dominate the whole baseline's runtime without
    // adding information the 5k/20k cells don't already give).
    let (threaded_sizes, threaded_cells): (&[usize], &[(usize, usize)]) = if quick {
        (&SCALE_SENSORS[1..2], &[(4, 1), (1, 2), (4, 4)])
    } else {
        (
            &SCALE_SENSORS[2..4],
            &[(2, 1), (4, 1), (8, 1), (1, 2), (1, 4), (4, 2), (4, 4)],
        )
    };
    // Threaded wall times only mean what they claim on a host that can
    // actually run the workers concurrently; record the host's usable
    // core count next to them so a reader can tell real scaling from a
    // single-core lower bound.
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // The progress fingerprint pins every knob that shapes a timed unit;
    // progress from a differently shaped invocation never matches.
    let fingerprint = format!(
        "quick={quick} engine={engine_secs}x{engine_seeds} sweep={sweep_secs}x{sweep_seeds} \
         scale={scale}:{scale_sizes:?}@{scale_dur} threaded={threaded_sizes:?}x{threaded_cells:?}"
    );
    let progress_path = PathBuf::from(format!("{out_path}.progress"));
    if fresh {
        let _ = std::fs::remove_file(&progress_path);
    }
    let mut progress = Progress::load(&progress_path, &fingerprint);
    let resumed_units = progress.engine.len() + progress.scale.len();
    if resumed_units > 0 || progress.sweep.is_some() {
        eprintln!(
            "perf_baseline: resuming from {} ({} timed units on record)",
            progress_path.display(),
            resumed_units + usize::from(progress.sweep.is_some()),
        );
    }

    // Serial per-variant engine timing; wall accumulated in integer ns.
    // Each (variant, seed) run is one resumable unit, and the output file
    // is reflushed (marked partial) after every unit.
    let mut rows: Vec<EngineRow> = Vec::new();
    let mut sweep_done: Option<(u128, usize)> = None;
    let mut scale_rows: Vec<ScalePoint> = Vec::new();
    let mut threaded_rows: Vec<ScalePoint> = Vec::new();
    let mut event_profile: Option<(EventProfile, ExecStats)> = None;
    let flush = |rows: &[EngineRow],
                 sweep_done: &Option<(u128, usize)>,
                 scale_rows: &[ScalePoint],
                 threaded_rows: &[ScalePoint],
                 event_profile: &Option<(EventProfile, ExecStats)>,
                 partial: bool| {
        let json = render_output(
            quick,
            partial,
            &scenario,
            engine_secs,
            engine_seeds,
            sweep_secs,
            host_cores,
            rows,
            sweep_done,
            (scale, scale_dur, scale_rows),
            threaded_rows,
            pre_ref,
            event_profile.as_ref(),
        );
        if let Err(e) = std::fs::write(out_path, json.render() + "\n") {
            if partial {
                eprintln!("warning: cannot flush partial {out_path}: {e}");
            } else {
                eprintln!("error: cannot write {out_path}: {e}");
                std::process::exit(3);
            }
        }
    };

    for kind in ProtocolKind::ALL {
        let mut wall_ns: u128 = 0;
        let mut events = 0;
        let mut frames = 0;
        for seed in 1..=engine_seeds {
            let key = (kind.label().to_string(), seed);
            let (run_ns, run_events, run_frames) = match progress.engine.get(&key) {
                Some(&unit) => unit,
                None => {
                    let sim = Simulation::builder(scenario.clone(), kind)
                        .seed(seed)
                        .build();
                    let t0 = Instant::now();
                    let report = sim.run();
                    let unit = (
                        t0.elapsed().as_nanos(),
                        report.events_processed,
                        report.frames_sent,
                    );
                    progress.engine.insert(key, unit);
                    progress.save(&progress_path, &fingerprint);
                    flush(
                        &rows,
                        &sweep_done,
                        &scale_rows,
                        &threaded_rows,
                        &event_profile,
                        true,
                    );
                    unit
                }
            };
            wall_ns += run_ns;
            events += run_events;
            frames += run_frames;
        }
        let row = EngineRow {
            protocol: kind.label(),
            runs: engine_seeds,
            wall_ns,
            events,
            frames,
        };
        eprintln!(
            "{:<9} {:>8.1} ms  {:>9} events  {:>6.0} kev/s  {:>5.0} ns/ev",
            row.protocol,
            row.wall_ms(),
            row.events,
            row.events_per_sec() / 1e3,
            row.ns_per_event()
        );
        rows.push(row);
        flush(
            &rows,
            &sweep_done,
            &scale_rows,
            &threaded_rows,
            &event_profile,
            true,
        );
    }

    // Parallel sweep timing (work-stealing run_all, all cores). One unit:
    // the figure is the scheduler's throughput over the whole batch, so a
    // partially resumed batch would time a different workload.
    let spec_count = ProtocolKind::ALL.len() * sweep_seeds as usize;
    let (sweep_ns, sweep_runs) = match progress.sweep {
        Some(unit) => unit,
        None => {
            let specs: Vec<RunSpec> = ProtocolKind::ALL
                .into_iter()
                .flat_map(|kind| {
                    (1..=sweep_seeds).map(move |seed| RunSpec {
                        scenario: ScenarioParams::paper_default()
                            .with_sensors(30)
                            .with_sinks(2)
                            .with_duration_secs(sweep_secs),
                        protocol: ProtocolParams::paper_default(),
                        config: kind.config(),
                        seed,
                        faults: FaultPlan::default(),
                        observe_window_secs: None,
                        policy: PolicySpec::Builtin,
                    })
                })
                .collect();
            let t0 = Instant::now();
            let reports = run_all(&specs, 0);
            let unit = (t0.elapsed().as_nanos(), reports.len());
            progress.sweep = Some(unit);
            progress.save(&progress_path, &fingerprint);
            unit
        }
    };
    assert_eq!(sweep_runs, spec_count, "sweep batch shape drifted");
    let sweep_ms = sweep_ns as f64 / 1e6;
    eprintln!(
        "sweep     {sweep_ms:>8.1} ms  {sweep_runs:>9} runs    {:>6.2} runs/s",
        sweep_runs as f64 / (sweep_ms / 1_000.0)
    );
    sweep_done = Some((sweep_ns, sweep_runs));
    flush(
        &rows,
        &sweep_done,
        &scale_rows,
        &threaded_rows,
        &event_profile,
        true,
    );

    if scale {
        for &n in scale_sizes {
            for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
                let label = if mode == MobilityMode::Lazy {
                    "lazy"
                } else {
                    "ticked"
                };
                let key = (n, label.to_string());
                if !progress.scale.contains_key(&key) {
                    let row = measure(n, scale_dur, mode);
                    progress.scale.insert(
                        key.clone(),
                        ScalePoint {
                            sensors: row.sensors,
                            mode: label,
                            shards: 1,
                            threads: 1,
                            wall_ns: row.wall_ns,
                            events: row.events,
                            generated: row.generated,
                            delivered: row.delivered,
                            mean_delay_secs: row.mean_delay_secs,
                        },
                    );
                    progress.save(&progress_path, &fingerprint);
                }
                let p = &progress.scale[&key];
                eprintln!(
                    "scale {:>5} sensors {:>6}: {:>8.1} ms  {:>9} events  {:>7.0} kev/s  ratio {:.2}",
                    p.sensors,
                    p.mode,
                    p.wall_ns as f64 / 1e6,
                    p.events,
                    p.events_per_sec() / 1e3,
                    p.delivery_ratio(),
                );
                scale_rows.push(ScalePoint {
                    sensors: p.sensors,
                    mode: p.mode,
                    shards: 1,
                    threads: 1,
                    wall_ns: p.wall_ns,
                    events: p.events,
                    generated: p.generated,
                    delivered: p.delivered,
                    mean_delay_secs: p.mean_delay_secs,
                });
                flush(
                    &rows,
                    &sweep_done,
                    &scale_rows,
                    &threaded_rows,
                    &event_profile,
                    true,
                );
            }
        }

        // Multicore tier: the same workload re-run under (shards ×
        // threads) cells. The reports are bit-identical to the
        // single-shard sequential rows above (the determinism contract,
        // `thread_parity` in CI), so only the wall time is new data.
        for &n in threaded_sizes {
            for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
                let label = if mode == MobilityMode::Lazy {
                    "lazy"
                } else {
                    "ticked"
                };
                for &(sh, th) in threaded_cells {
                    let key = (n, label.to_string(), sh, th);
                    if !progress.threaded.contains_key(&key) {
                        let row = measure_parallel(n, scale_dur, mode, sh, th);
                        progress.threaded.insert(
                            key.clone(),
                            ScalePoint {
                                sensors: row.sensors,
                                mode: label,
                                shards: sh,
                                threads: th,
                                wall_ns: row.wall_ns,
                                events: row.events,
                                generated: row.generated,
                                delivered: row.delivered,
                                mean_delay_secs: row.mean_delay_secs,
                            },
                        );
                        progress.save(&progress_path, &fingerprint);
                    }
                    let p = &progress.threaded[&key];
                    let speedup = progress
                        .scale
                        .get(&(n, label.to_string()))
                        .map_or(0.0, |base| p.events_per_sec() / base.events_per_sec());
                    eprintln!(
                        "scale {:>5} sensors {:>6} {}sh x {}th: {:>8.1} ms  {:>7.0} kev/s  {:>5.2}x",
                        p.sensors,
                        p.mode,
                        p.shards,
                        p.threads,
                        p.wall_ns as f64 / 1e6,
                        p.events_per_sec() / 1e3,
                        speedup,
                    );
                    threaded_rows.push(ScalePoint {
                        sensors: p.sensors,
                        mode: p.mode,
                        shards: p.shards,
                        threads: p.threads,
                        wall_ns: p.wall_ns,
                        events: p.events,
                        generated: p.generated,
                        delivered: p.delivered,
                        mean_delay_secs: p.mean_delay_secs,
                    });
                    flush(
                        &rows,
                        &sweep_done,
                        &scale_rows,
                        &threaded_rows,
                        &event_profile,
                        true,
                    );
                }
            }
        }
    }

    if profile_events {
        // One extra profiled run, never part of the tracked figures (the
        // two timestamps per event distort its aggregate wall time) and
        // deliberately outside the progress ledger — it is cheap relative
        // to the measured sections and always reflects the current binary.
        let sim = Simulation::builder(scenario.clone(), ProtocolKind::Opt)
            .seed(1)
            .build();
        let (_report, prof) = sim.run_profiled();
        eprintln!(
            "event profile (OPT seed 1, {engine_secs} s; profiled run, wall not comparable):"
        );
        eprintln!(
            "{:<18} {:>10} {:>12} {:>9} {:>9} {:>9}",
            "kind", "events", "total_us", "mean_ns", "p50_ns", "p99_ns"
        );
        for row in prof.by_cost() {
            eprintln!(
                "{:<18} {:>10} {:>12.1} {:>9.0} {:>9} {:>9}",
                row.label,
                row.count,
                row.total_ns as f64 / 1e3,
                row.mean_ns(),
                row.p50_ns(),
                row.p99_ns()
            );
        }
        // A second lens on the same question for the parallel executor:
        // one threaded run of the 1 000-sensor scale cell, reporting how
        // the interval planner divided the event stream (parallel vs.
        // sequential lanes, fallback/bypass intervals, worker wall time).
        // Also outside the progress ledger and never a tracked figure.
        let mut sim = Simulation::builder(
            scale_scenario(1_000, QUICK_DURATION_SECS),
            ProtocolKind::Opt,
        )
        .seed(1)
        .threads(4)
        .build();
        while sim.advance() {}
        let stats = sim.exec_stats().clone();
        let _ = sim.finish_partial();
        eprintln!(
            "interval executor (OPT ticked 1000 sensors, {QUICK_DURATION_SECS} s, 1sh x 4th): \
             {} parallel / {} sequential / {} terminator events; {} intervals \
             ({} fallback, {} bypass); seq fraction {:.2}; chunk {:.1} ms, stall {:.1} ms",
            stats.parallel_events,
            stats.sequential_events,
            stats.terminator_events,
            stats.total_intervals(),
            stats.fallback_intervals,
            stats.bypass_intervals,
            stats.sequential_fraction(),
            stats.chunk_ns as f64 / 1e6,
            stats.stall_ns as f64 / 1e6,
        );
        event_profile = Some((prof, stats));
    }

    flush(
        &rows,
        &sweep_done,
        &scale_rows,
        &threaded_rows,
        &event_profile,
        false,
    );
    // A finished baseline starts over next time: the progress file only
    // bridges interruptions, it must not freeze old measurements forever.
    let _ = std::fs::remove_file(&progress_path);
    eprintln!("wrote {out_path}");

    if speedup_check {
        let violation = check_speedup(&scale_rows, &threaded_rows, host_cores);
        if let Some(msg) = violation {
            if warn_only {
                eprintln!("warning (speedup check demoted by --warn-only): {msg}");
            } else {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
}

/// The `--speedup-check` gate: on a host that can actually run the
/// workers concurrently, the parallel interval executor must pay for
/// itself.
///
/// The gated figure is the best ticked `threads > 1` cell at the largest
/// measured threaded size **among cells with `threads ≤ host_cores`**
/// (ticked is the mode the executor was built for; the largest size is
/// where parallelism matters). That cell must clear **1.5×** the
/// sequential single-shard throughput.
///
/// When no measured cell fits the host (e.g. a 1-core CI box), scaling
/// is *unfalsifiable*: the workers timeshare the cores and the measured
/// ratio is the cost of per-interval thread spawns plus context-switch
/// churn, not a property of the executor (measured ≈0.3× on one core —
/// which is exactly why `threads > 1` is an opt-in knob). The gate then
/// reports the rows as lower bounds and passes, leaving enforcement to
/// the first multicore host that runs it. Returns the violation message,
/// or `None` when the gate passes.
fn check_speedup(
    scale_rows: &[ScalePoint],
    threaded_rows: &[ScalePoint],
    host_cores: usize,
) -> Option<String> {
    let candidates: Vec<(&ScalePoint, f64)> = threaded_rows
        .iter()
        .filter(|r| r.mode == "ticked" && r.threads > 1)
        .filter_map(|r| {
            scale_rows
                .iter()
                .find(|b| b.sensors == r.sensors && b.mode == r.mode)
                .map(ScalePoint::events_per_sec)
                .filter(|&base| base > 0.0)
                .map(|base| (r, r.events_per_sec() / base))
        })
        .collect();
    if candidates.is_empty() {
        return Some(
            "--speedup-check needs at least one ticked threads>1 scale cell \
             (run with --scale); the gate would be vacuous"
                .to_string(),
        );
    }
    let eligible: Vec<&(&ScalePoint, f64)> = candidates
        .iter()
        .filter(|(r, _)| r.threads <= host_cores)
        .collect();
    let Some(largest) = eligible.iter().map(|(r, _)| r.sensors).max() else {
        let (r, s) = candidates
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("speedup is finite"))
            .expect("candidates is non-empty");
        eprintln!(
            "speedup check: host has {host_cores} core(s), fewer than any measured \
             threads>1 cell — scaling is unfalsifiable here, rows recorded as \
             lower bounds (best: ticked {} sensors {}sh x {}th at {:.2}x); \
             the 1.5x floor arms on the first multicore host",
            r.sensors, r.shards, r.threads, s,
        );
        return None;
    };
    let (row, speedup) = eligible
        .iter()
        .filter(|(r, _)| r.sensors == largest)
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("speedup is finite"))
        .expect("largest came from eligible");
    eprintln!(
        "speedup check: ticked {} sensors {}sh x {}th at {:.2}x vs sequential \
         (floor 1.5x, host_cores={host_cores})",
        row.sensors, row.shards, row.threads, speedup,
    );
    (*speedup < 1.5).then(|| {
        format!(
            "parallel executor speedup regressed: ticked {} sensors {}sh x {}th \
             reached {:.2}x vs sequential, below the 1.5x floor on a \
             {host_cores}-core host",
            row.sensors, row.shards, row.threads, speedup,
        )
    })
}

#[allow(clippy::too_many_arguments)]
fn render_output(
    quick: bool,
    partial: bool,
    scenario: &ScenarioParams,
    engine_secs: u64,
    engine_seeds: u64,
    sweep_secs: u64,
    host_cores: usize,
    rows: &[EngineRow],
    sweep_done: &Option<(u128, usize)>,
    scale: (bool, u64, &[ScalePoint]),
    threaded_rows: &[ScalePoint],
    pre_ref: Option<f64>,
    event_profile: Option<&(EventProfile, ExecStats)>,
) -> Json {
    let engine_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::object()
                .field("protocol", r.protocol)
                .field("runs", r.runs)
                .field("wall_ms", r.wall_ms())
                .field("events", r.events)
                .field("frames_sent", r.frames)
                .field("events_per_sec", r.events_per_sec())
                .field("ns_per_event", r.ns_per_event())
        })
        .collect();
    let total_ns: u128 = rows.iter().map(|r| r.wall_ns).sum();
    let total_events: u64 = rows.iter().map(|r| r.events).sum();
    let mut json = Json::object()
        .field("schema", "dftmsn-perf-baseline/2")
        .field("quick", quick)
        .field("partial", partial)
        .field("host_cores", host_cores)
        .field(
            "scenario",
            Json::object()
                .field("sensors", scenario.sensors)
                .field("sinks", scenario.sinks)
                .field("duration_secs", engine_secs)
                .field("seeds_per_variant", engine_seeds),
        )
        .field("engine", Json::Arr(engine_rows));
    if total_events > 0 {
        json = json.field(
            "engine_totals",
            Json::object()
                .field("wall_ms", total_ns as f64 / 1e6)
                .field("events", total_events)
                .field(
                    "events_per_sec",
                    total_events as f64 / (total_ns as f64 / 1e9),
                ),
        );
    }
    if let Some((sweep_ns, sweep_runs)) = sweep_done {
        let sweep_ms = *sweep_ns as f64 / 1e6;
        json = json.field(
            "sweep",
            Json::object()
                .field("runs", *sweep_runs)
                .field("threads", 0usize)
                .field("duration_secs", sweep_secs)
                .field("wall_ms", sweep_ms)
                .field("runs_per_sec", *sweep_runs as f64 / (sweep_ms / 1_000.0)),
        );
    }
    let (scale_enabled, scale_dur, scale_rows) = scale;
    if scale_enabled && !scale_rows.is_empty() {
        let tier_rows: Vec<Json> = scale_rows
            .iter()
            .map(|r| {
                Json::object()
                    .field("sensors", r.sensors)
                    .field("mode", r.mode)
                    .field("wall_ms", r.wall_ns as f64 / 1e6)
                    .field("events", r.events)
                    .field("events_per_sec", r.events_per_sec())
                    .field("ns_per_event", r.ns_per_event())
                    .field("generated", r.generated)
                    .field("delivered", r.delivered)
                    .field("delivery_ratio", r.delivery_ratio())
                    .field("mean_delay_secs", r.mean_delay_secs)
            })
            .collect();
        let mut section = Json::object()
            .field("protocol", "OPT")
            .field("duration_secs", scale_dur)
            .field("seed", 1u64)
            .field("rows", Json::Arr(tier_rows));
        if let Some(ev_s) = pre_ref {
            let lazy_1k = scale_rows
                .iter()
                .find(|r| r.sensors == 1_000 && r.mode == "lazy")
                .map_or(0.0, ScalePoint::events_per_sec);
            section = section.field(
                "pre_pr_reference",
                Json::object()
                    .field("events_per_sec", ev_s)
                    .field("speedup_lazy_1000", lazy_1k / ev_s)
                    .field(
                        "method",
                        "OPT ticked 1000-sensor scale workload, pre-change binary, \
                         same machine (EXPERIMENTS.md \u{a7} Scale tier)",
                    ),
            );
        }
        json = json.field("scale", section);
    }
    if scale_enabled && !threaded_rows.is_empty() {
        let tier_rows: Vec<Json> = threaded_rows
            .iter()
            .map(|r| {
                // Speedup is against the single-shard row of the same
                // (sensors, mode) workload, when that row is present.
                let base = scale_rows
                    .iter()
                    .find(|b| b.sensors == r.sensors && b.mode == r.mode);
                let mut row = Json::object()
                    .field("sensors", r.sensors)
                    .field("mode", r.mode)
                    .field("shards", r.shards)
                    .field("threads", r.threads)
                    .field("wall_ms", r.wall_ns as f64 / 1e6)
                    .field("events", r.events)
                    .field("events_per_sec", r.events_per_sec())
                    .field("ns_per_event", r.ns_per_event())
                    .field("generated", r.generated)
                    .field("delivered", r.delivered)
                    .field("delivery_ratio", r.delivery_ratio())
                    .field("mean_delay_secs", r.mean_delay_secs);
                if let Some(base) = base {
                    if base.events_per_sec() > 0.0 {
                        row = row.field(
                            "speedup_vs_sequential",
                            r.events_per_sec() / base.events_per_sec(),
                        );
                    }
                }
                row
            })
            .collect();
        json = json.field(
            "scale_threaded",
            Json::object()
                .field("protocol", "OPT")
                .field("duration_secs", scale_dur)
                .field("seed", 1u64)
                .field(
                    "note",
                    "spatial shards x executor threads; results bit-identical \
                     to the sequential single-shard run by the determinism \
                     contract (tests/sharded_engine.rs, thread_parity). \
                     Speedups are wall-clock honest for host_cores; on a \
                     host with fewer cores than threads they are lower \
                     bounds, not scaling measurements.",
                )
                .field("rows", Json::Arr(tier_rows)),
        );
    }
    if let Some((prof, exec)) = event_profile {
        let kind_rows: Vec<Json> = prof
            .by_cost()
            .into_iter()
            .map(|k| {
                let hist: Vec<Json> = k.hist.iter().map(|&c| Json::from(c)).collect();
                Json::object()
                    .field("kind", k.label)
                    .field("events", k.count)
                    .field("total_ns", k.total_ns.to_string())
                    .field("mean_ns", k.mean_ns())
                    .field("p50_ns", k.p50_ns())
                    .field("p99_ns", k.p99_ns())
                    .field("hist_pow2_ns", Json::Arr(hist))
            })
            .collect();
        let drained_hist: Vec<Json> = exec.drained_hist.iter().map(|&c| Json::from(c)).collect();
        json = json.field(
            "event_profile",
            Json::object()
                .field("protocol", "OPT")
                .field("seed", 1u64)
                .field(
                    "note",
                    "profiled run; aggregate wall time not comparable with engine rows",
                )
                .field("kinds", Json::Arr(kind_rows))
                .field(
                    "epochs",
                    Json::object()
                        .field(
                            "workload",
                            "OPT ticked 1000-sensor scale cell, 60 s, 1 shard x 4 threads",
                        )
                        .field("intervals", exec.total_intervals())
                        .field("fallback_intervals", exec.fallback_intervals)
                        .field("bypass_intervals", exec.bypass_intervals)
                        .field("parallel_events", exec.parallel_events)
                        .field("sequential_events", exec.sequential_events)
                        .field("terminator_events", exec.terminator_events)
                        .field("spawns_consumed", exec.spawns_consumed)
                        .field("spawns_parked", exec.spawns_parked)
                        .field("chunk_ms", exec.chunk_ns as f64 / 1e6)
                        .field("stall_ms", exec.stall_ns as f64 / 1e6)
                        .field("sequential_fraction", exec.sequential_fraction())
                        .field("drained_hist_pow2", Json::Arr(drained_hist)),
                ),
        );
    }
    json
}
