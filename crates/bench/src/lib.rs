//! # dftmsn-bench — experiment harness for the DFT-MSN reproduction
//!
//! Regenerates every table and figure of the paper's evaluation
//! (DESIGN.md §3 maps experiment ids to binaries):
//!
//! | binary | experiment |
//! |---|---|
//! | `fig2` | Fig. 2(a–c): delivery ratio / power / delay vs #sinks |
//! | `density` | Prose-A: node-density sweep |
//! | `speed` | Prose-B: nodal-speed sweep |
//! | `opt_tables` | Opt-1/2/3: Sec. 4 analytic optimization tables |
//! | `ablation` | Abl-1: per-optimization ablation |
//! | `perf_baseline` | tracked engine/sweep/scale throughput baseline |
//! | `scale_check` | warn-only scale-tier guard vs `BENCH_engine.json` |
//!
//! All binaries accept `--quick` (short runs), `--seeds N`,
//! `--duration SECS` and `--threads N`, and write text + CSV tables under
//! `results/`.
//!
//! The Criterion benches (`cargo bench`) cover the protocol math, queue
//! operations, the substrates, and short end-to-end simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod scale;
pub mod sweep;

pub use experiments::ExperimentOpts;
pub use scale::{scale_scenario, ScaleRow, SCALE_SENSORS};
pub use sweep::{average, run_all, Averaged, RunSpec};
