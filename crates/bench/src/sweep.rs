//! Parallel experiment runner.
//!
//! A sweep is a list of [`RunSpec`]s (scenario × variant × seed) executed
//! across OS threads — each simulation is single-threaded and
//! deterministic, so parallelism across runs keeps results reproducible.

use dftmsn_core::faults::FaultPlan;
use dftmsn_core::observe::{MetricsRecorder, ObserveSeries};
use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::report::SimReport;
use dftmsn_core::variants::VariantConfig;
use dftmsn_core::world::Simulation;
use dftmsn_metrics::stats::RunningStats;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// One simulation to run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Deployment and traffic.
    pub scenario: ScenarioParams,
    /// Protocol constants.
    pub protocol: ProtocolParams,
    /// Variant configuration (from a `ProtocolKind` or a custom ablation).
    pub config: VariantConfig,
    /// Run seed.
    pub seed: u64,
    /// Fault events to inject (empty = fault-free run).
    pub faults: FaultPlan,
    /// Attach a windowed [`MetricsRecorder`] with this aggregation window
    /// (seconds). `None` = headline report only, no observation overhead.
    pub observe_window_secs: Option<f64>,
}

impl RunSpec {
    /// Executes the run.
    ///
    /// # Panics
    ///
    /// Panics if the fault plan does not validate against the scenario, or
    /// if `observe_window_secs` is non-positive or non-finite.
    #[must_use]
    pub fn run(&self) -> SimReport {
        self.run_observed().0
    }

    /// Executes the run, returning the windowed series alongside the
    /// report when `observe_window_secs` is set.
    ///
    /// # Panics
    ///
    /// Same conditions as [`RunSpec::run`].
    #[must_use]
    pub fn run_observed(&self) -> (SimReport, Option<ObserveSeries>) {
        let mut builder = Simulation::builder(self.scenario.clone(), self.config)
            .protocol(self.protocol.clone())
            .seed(self.seed);
        if !self.faults.is_empty() {
            builder = builder.faults(self.faults.clone());
        }
        let recorder = self.observe_window_secs.map(MetricsRecorder::new);
        if let Some(r) = &recorder {
            builder = builder.observe(r.clone());
        }
        let report = builder.build().run();
        (report, recorder.map(|r| r.series()))
    }
}

/// Runs every spec, fanning out over `threads` OS threads (0 = one per
/// available core). Results come back in spec order.
#[must_use]
pub fn run_all(specs: &[RunSpec], threads: usize) -> Vec<SimReport> {
    if specs.is_empty() {
        return Vec::new();
    }
    // `available_parallelism` can fail in restricted environments
    // (containers without cpuset information, some sandboxes); a modest
    // fixed fan-out beats silently degrading to a serial sweep there.
    let threads = if threads == 0 {
        thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    }
    .min(specs.len());

    if threads <= 1 {
        return specs.iter().map(RunSpec::run).collect();
    }

    // Work stealing via a shared cursor: each worker claims the next
    // unstarted spec as soon as it finishes its current one, so a few
    // expensive runs (a NOSLEEP variant, a long duration) cannot strand
    // the other workers idle the way fixed index striping could. Each
    // result lands in the pre-sized slot for its spec index, which keeps
    // the output in spec order with no channel traffic or re-sorting.
    let cursor = AtomicUsize::new(0);
    let slots: Vec<OnceLock<SimReport>> = (0..specs.len()).map(|_| OnceLock::new()).collect();
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(idx) else { break };
                let stored = slots[idx].set(spec.run()).is_ok();
                assert!(stored, "spec index {idx} claimed twice");
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every spec produced a report"))
        .collect()
}

/// Seed-averaged headline metrics of a set of runs of the *same*
/// configuration.
#[derive(Debug, Clone)]
pub struct Averaged {
    /// Delivery ratio statistics across seeds.
    pub ratio: RunningStats,
    /// Average sensor power (mW) across seeds.
    pub power_mw: RunningStats,
    /// Mean delivery delay (s) across seeds.
    pub delay_secs: RunningStats,
    /// Collision losses across seeds.
    pub collisions: RunningStats,
    /// Control-overhead ratio (control bits / data bits) across seeds.
    pub overhead: RunningStats,
}

/// Averages reports (across seeds) into per-metric statistics.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn average(reports: &[SimReport]) -> Averaged {
    assert!(!reports.is_empty(), "cannot average zero reports");
    let mut out = Averaged {
        ratio: RunningStats::new(),
        power_mw: RunningStats::new(),
        delay_secs: RunningStats::new(),
        collisions: RunningStats::new(),
        overhead: RunningStats::new(),
    };
    for r in reports {
        out.ratio.record(r.delivery_ratio());
        out.power_mw.record(r.avg_sensor_power_mw);
        out.delay_secs.record(r.mean_delay_secs);
        out.collisions.record(r.collisions as f64);
        out.overhead.record(r.control_overhead());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftmsn_core::variants::ProtocolKind;

    fn spec(seed: u64) -> RunSpec {
        RunSpec {
            scenario: ScenarioParams {
                sensors: 10,
                sinks: 1,
                duration_secs: 150,
                ..ScenarioParams::paper_default()
            },
            protocol: ProtocolParams::paper_default(),
            config: ProtocolKind::Opt.config(),
            seed,
            faults: FaultPlan::default(),
            observe_window_secs: None,
        }
    }

    #[test]
    fn observed_run_matches_plain_run() {
        let plain = spec(3).run();
        let mut observed_spec = spec(3);
        observed_spec.observe_window_secs = Some(50.0);
        let (report, series) = observed_spec.run_observed();
        assert_eq!(report.to_json().render(), plain.to_json().render());
        let series = series.expect("recorder attached");
        let deliveries = series.get("deliveries").expect("deliveries series");
        let total: f64 = deliveries.iter().map(|(_, v)| v).sum();
        assert!((total - report.delivered as f64).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_serial() {
        let specs: Vec<RunSpec> = (0..4).map(spec).collect();
        let serial = run_all(&specs, 1);
        let parallel = run_all(&specs, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.seed, p.seed);
            assert_eq!(s.generated, p.generated);
            assert_eq!(s.delivered, p.delivered);
            assert_eq!(s.frames_sent, p.frames_sent);
        }
    }

    #[test]
    fn results_preserve_spec_order() {
        let specs: Vec<RunSpec> = (0..6).map(spec).collect();
        let reports = run_all(&specs, 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.seed, i as u64);
        }
    }

    #[test]
    fn stealing_keeps_spec_order_with_uneven_runs() {
        // Alternate long and short runs so workers finish out of submission
        // order and the cursor hands indices to whichever thread is free:
        // results must still come back in spec order, matching serial.
        let specs: Vec<RunSpec> = (0..6)
            .map(|i| {
                let mut s = spec(i);
                s.scenario.duration_secs = if i % 2 == 0 { 400 } else { 50 };
                s
            })
            .collect();
        let serial = run_all(&specs, 1);
        let parallel = run_all(&specs, 3);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(p.seed, i as u64, "slot {i} holds the wrong run");
            assert_eq!(s.frames_sent, p.frames_sent);
            assert_eq!(s.duration_secs, p.duration_secs);
        }
    }

    #[test]
    fn average_aggregates_seeds() {
        let specs: Vec<RunSpec> = (0..3).map(spec).collect();
        let reports = run_all(&specs, 0);
        let avg = average(&reports);
        assert_eq!(avg.ratio.count(), 3);
        assert!(avg.ratio.mean() >= 0.0 && avg.ratio.mean() <= 1.0);
        assert!(avg.power_mw.mean() > 0.0);
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(run_all(&[], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "zero reports")]
    fn average_of_nothing_panics() {
        let _ = average(&[]);
    }
}
