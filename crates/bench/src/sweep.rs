//! Parallel experiment runner.
//!
//! A sweep is a list of [`RunSpec`]s (scenario × variant × seed) executed
//! across OS threads — each simulation is single-threaded and
//! deterministic, so parallelism across runs keeps results reproducible.

use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::report::SimReport;
use dftmsn_core::variants::VariantConfig;
use dftmsn_core::world::Simulation;
use dftmsn_metrics::stats::RunningStats;
use std::sync::mpsc;
use std::thread;

/// One simulation to run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Deployment and traffic.
    pub scenario: ScenarioParams,
    /// Protocol constants.
    pub protocol: ProtocolParams,
    /// Variant configuration (from a `ProtocolKind` or a custom ablation).
    pub config: VariantConfig,
    /// Run seed.
    pub seed: u64,
}

impl RunSpec {
    /// Executes the run.
    #[must_use]
    pub fn run(&self) -> SimReport {
        Simulation::with_config(
            self.scenario.clone(),
            self.protocol.clone(),
            self.config,
            self.seed,
        )
        .run()
    }
}

/// Runs every spec, fanning out over `threads` OS threads (0 = one per
/// available core). Results come back in spec order.
#[must_use]
pub fn run_all(specs: &[RunSpec], threads: usize) -> Vec<SimReport> {
    if specs.is_empty() {
        return Vec::new();
    }
    let threads = if threads == 0 {
        thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    }
    .min(specs.len());

    if threads <= 1 {
        return specs.iter().map(RunSpec::run).collect();
    }

    let (tx, rx) = mpsc::channel::<(usize, SimReport)>();
    thread::scope(|scope| {
        for t in 0..threads {
            let tx = tx.clone();
            let chunk: Vec<(usize, &RunSpec)> = specs
                .iter()
                .enumerate()
                .skip(t)
                .step_by(threads)
                .collect();
            scope.spawn(move || {
                for (idx, spec) in chunk {
                    let report = spec.run();
                    // The receiver lives until the scope ends.
                    let _ = tx.send((idx, report));
                }
            });
        }
        drop(tx);
    });
    let mut slots: Vec<Option<SimReport>> = (0..specs.len()).map(|_| None).collect();
    while let Ok((idx, report)) = rx.recv() {
        slots[idx] = Some(report);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every spec produced a report"))
        .collect()
}

/// Seed-averaged headline metrics of a set of runs of the *same*
/// configuration.
#[derive(Debug, Clone)]
pub struct Averaged {
    /// Delivery ratio statistics across seeds.
    pub ratio: RunningStats,
    /// Average sensor power (mW) across seeds.
    pub power_mw: RunningStats,
    /// Mean delivery delay (s) across seeds.
    pub delay_secs: RunningStats,
    /// Collision losses across seeds.
    pub collisions: RunningStats,
    /// Control-overhead ratio (control bits / data bits) across seeds.
    pub overhead: RunningStats,
}

/// Averages reports (across seeds) into per-metric statistics.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn average(reports: &[SimReport]) -> Averaged {
    assert!(!reports.is_empty(), "cannot average zero reports");
    let mut out = Averaged {
        ratio: RunningStats::new(),
        power_mw: RunningStats::new(),
        delay_secs: RunningStats::new(),
        collisions: RunningStats::new(),
        overhead: RunningStats::new(),
    };
    for r in reports {
        out.ratio.record(r.delivery_ratio());
        out.power_mw.record(r.avg_sensor_power_mw);
        out.delay_secs.record(r.mean_delay_secs);
        out.collisions.record(r.collisions as f64);
        out.overhead.record(r.control_overhead());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftmsn_core::variants::ProtocolKind;

    fn spec(seed: u64) -> RunSpec {
        RunSpec {
            scenario: ScenarioParams {
                sensors: 10,
                sinks: 1,
                duration_secs: 150,
                ..ScenarioParams::paper_default()
            },
            protocol: ProtocolParams::paper_default(),
            config: ProtocolKind::Opt.config(),
            seed,
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let specs: Vec<RunSpec> = (0..4).map(spec).collect();
        let serial = run_all(&specs, 1);
        let parallel = run_all(&specs, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.seed, p.seed);
            assert_eq!(s.generated, p.generated);
            assert_eq!(s.delivered, p.delivered);
            assert_eq!(s.frames_sent, p.frames_sent);
        }
    }

    #[test]
    fn results_preserve_spec_order() {
        let specs: Vec<RunSpec> = (0..6).map(spec).collect();
        let reports = run_all(&specs, 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.seed, i as u64);
        }
    }

    #[test]
    fn average_aggregates_seeds() {
        let specs: Vec<RunSpec> = (0..3).map(spec).collect();
        let reports = run_all(&specs, 0);
        let avg = average(&reports);
        assert_eq!(avg.ratio.count(), 3);
        assert!(avg.ratio.mean() >= 0.0 && avg.ratio.mean() <= 1.0);
        assert!(avg.power_mw.mean() > 0.0);
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(run_all(&[], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "zero reports")]
    fn average_of_nothing_panics() {
        let _ = average(&[]);
    }
}
