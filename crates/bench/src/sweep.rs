//! Parallel experiment runner.
//!
//! A sweep is a list of [`RunSpec`]s (scenario × variant × seed) executed
//! across OS threads — each simulation is single-threaded and
//! deterministic, so parallelism across runs keeps results reproducible.

use dftmsn_core::faults::FaultPlan;
use dftmsn_core::observe::{MetricsRecorder, ObserveSeries};
use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::policy::PolicySpec;
use dftmsn_core::report::SimReport;
use dftmsn_core::variants::VariantConfig;
use dftmsn_core::world::Simulation;
use dftmsn_metrics::stats::RunningStats;
use dftmsn_sim::snap::fnv1a64;
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread;

/// One simulation to run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Deployment and traffic.
    pub scenario: ScenarioParams,
    /// Protocol constants.
    pub protocol: ProtocolParams,
    /// Variant configuration (from a `ProtocolKind` or a custom ablation).
    pub config: VariantConfig,
    /// Run seed.
    pub seed: u64,
    /// Fault events to inject (empty = fault-free run).
    pub faults: FaultPlan,
    /// Attach a windowed [`MetricsRecorder`] with this aggregation window
    /// (seconds). `None` = headline report only, no observation overhead.
    pub observe_window_secs: Option<f64>,
    /// Forwarding policy (default [`PolicySpec::Builtin`]: the behaviour
    /// `config` names).
    pub policy: PolicySpec,
}

impl RunSpec {
    /// Executes the run.
    ///
    /// # Panics
    ///
    /// Panics if the fault plan does not validate against the scenario, or
    /// if `observe_window_secs` is non-positive or non-finite.
    #[must_use]
    pub fn run(&self) -> SimReport {
        self.run_observed().0
    }

    /// Executes the run, returning the windowed series alongside the
    /// report when `observe_window_secs` is set.
    ///
    /// # Panics
    ///
    /// Same conditions as [`RunSpec::run`].
    #[must_use]
    pub fn run_observed(&self) -> (SimReport, Option<ObserveSeries>) {
        let mut builder = Simulation::builder(self.scenario.clone(), self.config)
            .protocol(self.protocol.clone())
            .policy(self.policy)
            .seed(self.seed);
        if !self.faults.is_empty() {
            builder = builder.faults(self.faults.clone());
        }
        let recorder = self.observe_window_secs.map(MetricsRecorder::new);
        if let Some(r) = &recorder {
            builder = builder.observe(r.clone());
        }
        let report = builder.build().run();
        (report, recorder.map(|r| r.series()))
    }
}

/// Runs every spec, fanning out over `threads` OS threads (0 = one per
/// available core). Results come back in spec order.
#[must_use]
pub fn run_all(specs: &[RunSpec], threads: usize) -> Vec<SimReport> {
    run_all_with(specs, threads, |_, _| {})
}

/// [`run_all`] with a completion hook: `on_complete(index, report)` fires
/// as soon as the spec at `index` finishes, *while the rest of the sweep
/// is still running*. Harness binaries use it to flush partial results
/// tables after every completed run instead of going dark until the last
/// spec lands.
///
/// The hook is invoked from whichever worker thread finished the run, so
/// it must synchronize any shared state itself (a `Mutex` around the
/// accumulator is the usual shape). Results still come back in spec order.
#[must_use]
pub fn run_all_with<F>(specs: &[RunSpec], threads: usize, on_complete: F) -> Vec<SimReport>
where
    F: Fn(usize, &SimReport) + Sync,
{
    if specs.is_empty() {
        return Vec::new();
    }
    // `available_parallelism` can fail in restricted environments
    // (containers without cpuset information, some sandboxes); a modest
    // fixed fan-out beats silently degrading to a serial sweep there.
    let threads = if threads == 0 {
        thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    }
    .min(specs.len());

    if threads <= 1 {
        return specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let report = spec.run();
                on_complete(i, &report);
                report
            })
            .collect();
    }

    // Work stealing via a shared cursor: each worker claims the next
    // unstarted spec as soon as it finishes its current one, so a few
    // expensive runs (a NOSLEEP variant, a long duration) cannot strand
    // the other workers idle the way fixed index striping could. Each
    // result lands in the pre-sized slot for its spec index, which keeps
    // the output in spec order with no channel traffic or re-sorting.
    let cursor = AtomicUsize::new(0);
    let slots: Vec<OnceLock<SimReport>> = (0..specs.len()).map(|_| OnceLock::new()).collect();
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(idx) else { break };
                let stored = slots[idx].set(spec.run()).is_ok();
                assert!(stored, "spec index {idx} claimed twice");
                on_complete(idx, slots[idx].get().expect("just stored"));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every spec produced a report"))
        .collect()
}

/// Content fingerprint of a spec, for keying sweep progress files.
///
/// Hashes the spec's full debug rendering (every scenario, protocol,
/// variant, seed and fault-plan field participates), so two specs collide
/// only if they describe the same run. The value is stable within one
/// build of the workspace but **not** across code changes that alter the
/// spec types — after such a change a progress file simply stops
/// matching and the affected runs re-execute, which is the safe failure
/// mode.
#[must_use]
pub fn spec_fingerprint(spec: &RunSpec) -> u64 {
    fnv1a64(format!("{spec:?}").as_bytes())
}

/// Magic header of the sweep progress file (`dftmsn-sweep-progress/1`).
///
/// Records follow back-to-back, each `fingerprint u64 | payload len u32 |
/// payload ([`SimReport::snap_bytes`]) | fnv1a64(payload) u64`, all
/// little-endian. The file is append-only: a crash can tear at most the
/// final record, which the loader detects (length or checksum mismatch)
/// and drops while keeping everything before it.
pub const PROGRESS_MAGIC: &[u8] = b"dftmsn-sweep-progress/1\n";

/// Completed runs of a previous (interrupted) sweep, keyed by
/// [`spec_fingerprint`].
#[derive(Debug, Default)]
pub struct SweepProgress {
    done: HashMap<u64, SimReport>,
    /// Length of the intact file prefix (magic + whole records). Anything
    /// past it is a torn tail that must be truncated away before new
    /// records are appended, or they would sit unreachable behind it.
    valid_len: u64,
}

impl SweepProgress {
    /// Loads a progress file. A missing file yields empty progress; a
    /// torn or corrupt tail is dropped with a warning on stderr and the
    /// intact prefix is kept; a file that does not start with
    /// [`PROGRESS_MAGIC`] is ignored wholesale (also with a warning).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "not found".
    pub fn load(path: &Path) -> std::io::Result<SweepProgress> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(SweepProgress::default())
            }
            Err(e) => return Err(e),
        };
        let mut progress = SweepProgress::default();
        if !bytes.starts_with(PROGRESS_MAGIC) {
            eprintln!(
                "warning: {} is not a sweep progress file; ignoring its contents",
                path.display()
            );
            return Ok(progress);
        }
        let mut at = PROGRESS_MAGIC.len();
        let total = bytes.len();
        while at < total {
            let Some(record) = decode_record(&bytes[at..]) else {
                eprintln!(
                    "warning: {}: dropping torn record at byte {at} (interrupted write?); \
                     keeping the {} completed runs before it",
                    path.display(),
                    progress.done.len()
                );
                break;
            };
            let (fingerprint, report, consumed) = record;
            progress.done.insert(fingerprint, report);
            at += consumed;
        }
        progress.valid_len = at as u64;
        Ok(progress)
    }

    /// The recorded report for a fingerprint, if that run completed.
    #[must_use]
    pub fn get(&self, fingerprint: u64) -> Option<&SimReport> {
        self.done.get(&fingerprint)
    }

    /// Number of completed runs on record.
    #[must_use]
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// True when no completed runs are on record.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }
}

/// Decodes one progress record; `None` on truncation or checksum
/// mismatch (both mean the tail was torn).
fn decode_record(buf: &[u8]) -> Option<(u64, SimReport, usize)> {
    if buf.len() < 12 {
        return None;
    }
    let fingerprint = u64::from_le_bytes(buf[..8].try_into().ok()?);
    let len = u32::from_le_bytes(buf[8..12].try_into().ok()?) as usize;
    let end = 12usize.checked_add(len)?;
    if buf.len() < end + 8 {
        return None;
    }
    let payload = &buf[12..end];
    let sum = u64::from_le_bytes(buf[end..end + 8].try_into().ok()?);
    if fnv1a64(payload) != sum {
        return None;
    }
    let report = SimReport::from_snap_bytes(payload).ok()?;
    Some((fingerprint, report, end + 8))
}

/// Encodes one progress record (see [`PROGRESS_MAGIC`] for the layout).
fn encode_record(fingerprint: u64, report: &SimReport) -> Vec<u8> {
    let payload = report.snap_bytes();
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("report fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out
}

/// [`run_all_with`], resumable across process restarts.
///
/// Completed runs are appended to the progress file at `progress_path`
/// as they finish (one atomic `write` per record); on the next
/// invocation any spec whose [`spec_fingerprint`] is already on record
/// is served from the file instead of re-running. `on_complete` fires
/// for *every* spec — cached ones first (in spec order), then live ones
/// as they land — so partial-table flushing sees the same stream either
/// way.
///
/// A failure to *append* a record is reported on stderr but does not
/// abort the sweep: the run's result is still returned, it just will not
/// be skipped next time.
///
/// # Errors
///
/// Propagates failures to read the progress file or to create/open it
/// for appending.
pub fn run_all_resumable<F>(
    specs: &[RunSpec],
    threads: usize,
    progress_path: &Path,
    on_complete: F,
) -> std::io::Result<Vec<SimReport>>
where
    F: Fn(usize, &SimReport) + Sync,
{
    let progress = SweepProgress::load(progress_path)?;
    let fingerprints: Vec<u64> = specs.iter().map(spec_fingerprint).collect();

    let mut results: Vec<Option<SimReport>> = vec![None; specs.len()];
    let mut pending: Vec<usize> = Vec::new();
    for (i, fp) in fingerprints.iter().enumerate() {
        if let Some(report) = progress.get(*fp) {
            on_complete(i, report);
            results[i] = Some(report.clone());
        } else {
            pending.push(i);
        }
    }
    if !progress.is_empty() {
        eprintln!(
            "sweep: {} of {} runs already completed in {}; running the remaining {}",
            specs.len() - pending.len(),
            specs.len(),
            progress_path.display(),
            pending.len()
        );
    }
    if pending.is_empty() {
        return Ok(results.into_iter().map(Option::unwrap).collect());
    }

    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .read(true)
        .write(true)
        .truncate(false)
        .open(progress_path)?;
    // Cut off any torn tail (or a foreign file's contents) so appended
    // records land where the loader will actually reach them.
    if file.metadata()?.len() != progress.valid_len {
        file.set_len(progress.valid_len)?;
    }
    std::io::Seek::seek(&mut file, std::io::SeekFrom::End(0))?;
    if progress.valid_len == 0 {
        file.write_all(PROGRESS_MAGIC)?;
        file.flush()?;
    }
    let file = Mutex::new(file);

    let pending_specs: Vec<RunSpec> = pending.iter().map(|&i| specs[i].clone()).collect();
    let live = run_all_with(&pending_specs, threads, |pi, report| {
        let orig = pending[pi];
        let record = encode_record(fingerprints[orig], report);
        {
            let mut f = file.lock().expect("progress file lock");
            if let Err(e) = f.write_all(&record).and_then(|()| f.flush()) {
                eprintln!(
                    "warning: could not append to {}: {e}; this run will repeat on resume",
                    progress_path.display()
                );
            }
        }
        on_complete(orig, report);
    });
    for (pi, report) in pending.iter().zip(live) {
        results[*pi] = Some(report);
    }
    Ok(results.into_iter().map(Option::unwrap).collect())
}

/// Seed-averaged headline metrics of a set of runs of the *same*
/// configuration.
#[derive(Debug, Clone)]
pub struct Averaged {
    /// Delivery ratio statistics across seeds.
    pub ratio: RunningStats,
    /// Average sensor power (mW) across seeds.
    pub power_mw: RunningStats,
    /// Mean delivery delay (s) across seeds.
    pub delay_secs: RunningStats,
    /// Collision losses across seeds.
    pub collisions: RunningStats,
    /// Control-overhead ratio (control bits / data bits) across seeds.
    pub overhead: RunningStats,
}

/// Averages reports (across seeds) into per-metric statistics.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn average(reports: &[SimReport]) -> Averaged {
    assert!(!reports.is_empty(), "cannot average zero reports");
    let mut out = Averaged {
        ratio: RunningStats::new(),
        power_mw: RunningStats::new(),
        delay_secs: RunningStats::new(),
        collisions: RunningStats::new(),
        overhead: RunningStats::new(),
    };
    for r in reports {
        out.ratio.record(r.delivery_ratio());
        out.power_mw.record(r.avg_sensor_power_mw);
        out.delay_secs.record(r.mean_delay_secs);
        out.collisions.record(r.collisions as f64);
        out.overhead.record(r.control_overhead());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftmsn_core::variants::ProtocolKind;

    fn spec(seed: u64) -> RunSpec {
        RunSpec {
            scenario: ScenarioParams::paper_default()
                .with_sensors(10)
                .with_sinks(1)
                .with_duration_secs(150),
            protocol: ProtocolParams::paper_default(),
            config: ProtocolKind::Opt.config(),
            seed,
            faults: FaultPlan::default(),
            observe_window_secs: None,
            policy: PolicySpec::Builtin,
        }
    }

    #[test]
    fn observed_run_matches_plain_run() {
        let plain = spec(3).run();
        let mut observed_spec = spec(3);
        observed_spec.observe_window_secs = Some(50.0);
        let (report, series) = observed_spec.run_observed();
        assert_eq!(report.to_json().render(), plain.to_json().render());
        let series = series.expect("recorder attached");
        let deliveries = series.get("deliveries").expect("deliveries series");
        let total: f64 = deliveries.iter().map(|(_, v)| v).sum();
        assert!((total - report.delivered as f64).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_serial() {
        let specs: Vec<RunSpec> = (0..4).map(spec).collect();
        let serial = run_all(&specs, 1);
        let parallel = run_all(&specs, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.seed, p.seed);
            assert_eq!(s.generated, p.generated);
            assert_eq!(s.delivered, p.delivered);
            assert_eq!(s.frames_sent, p.frames_sent);
        }
    }

    #[test]
    fn results_preserve_spec_order() {
        let specs: Vec<RunSpec> = (0..6).map(spec).collect();
        let reports = run_all(&specs, 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.seed, i as u64);
        }
    }

    #[test]
    fn stealing_keeps_spec_order_with_uneven_runs() {
        // Alternate long and short runs so workers finish out of submission
        // order and the cursor hands indices to whichever thread is free:
        // results must still come back in spec order, matching serial.
        let specs: Vec<RunSpec> = (0..6)
            .map(|i| {
                let mut s = spec(i);
                s.scenario.duration_secs = if i % 2 == 0 { 400 } else { 50 };
                s
            })
            .collect();
        let serial = run_all(&specs, 1);
        let parallel = run_all(&specs, 3);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(p.seed, i as u64, "slot {i} holds the wrong run");
            assert_eq!(s.frames_sent, p.frames_sent);
            assert_eq!(s.duration_secs, p.duration_secs);
        }
    }

    #[test]
    fn average_aggregates_seeds() {
        let specs: Vec<RunSpec> = (0..3).map(spec).collect();
        let reports = run_all(&specs, 0);
        let avg = average(&reports);
        assert_eq!(avg.ratio.count(), 3);
        assert!(avg.ratio.mean() >= 0.0 && avg.ratio.mean() <= 1.0);
        assert!(avg.power_mw.mean() > 0.0);
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(run_all(&[], 0).is_empty());
    }

    #[test]
    fn completion_hook_sees_every_spec_exactly_once() {
        let specs: Vec<RunSpec> = (0..5).map(spec).collect();
        let seen = Mutex::new(vec![0u32; specs.len()]);
        let reports = run_all_with(&specs, 3, |i, r| {
            assert_eq!(r.seed, i as u64, "hook got the wrong report for {i}");
            seen.lock().unwrap()[i] += 1;
        });
        assert_eq!(reports.len(), specs.len());
        assert!(seen.lock().unwrap().iter().all(|&n| n == 1));
        // Serial path fires the hook too.
        let serial_seen = Mutex::new(0usize);
        let _ = run_all_with(&specs, 1, |_, _| *serial_seen.lock().unwrap() += 1);
        assert_eq!(*serial_seen.lock().unwrap(), specs.len());
    }

    #[test]
    fn fingerprints_separate_distinct_specs() {
        let a = spec(1);
        let b = spec(2);
        let mut c = spec(1);
        c.scenario.sensors += 1;
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&spec(1)));
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&b));
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&c));
    }

    fn temp_progress_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dftmsn-sweeptest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(format!("{tag}.progress"))
    }

    #[test]
    fn resumable_sweep_skips_completed_specs_and_matches_fresh_results() {
        let specs: Vec<RunSpec> = (0..4).map(spec).collect();
        let path = temp_progress_path("skip");
        let _ = std::fs::remove_file(&path);

        // First pass: only the first two specs "complete".
        let first = run_all_resumable(&specs[..2], 2, &path, |_, _| {}).expect("first pass");
        assert_eq!(first.len(), 2);

        // Second pass over all four: the hook fires for every index, and
        // the cached results are bit-identical to a fresh serial run.
        let ran = Mutex::new(Vec::new());
        let all = run_all_resumable(&specs, 2, &path, |i, _| ran.lock().unwrap().push(i))
            .expect("second pass");
        let mut seen = ran.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        let fresh = run_all(&specs, 1);
        for (a, b) in all.iter().zip(&fresh) {
            assert_eq!(a.snap_bytes(), b.snap_bytes(), "cached result drifted");
        }

        // Third pass: everything is served from the file.
        let progress = SweepProgress::load(&path).expect("load progress");
        assert_eq!(progress.len(), 4);
        let again = run_all_resumable(&specs, 2, &path, |_, _| {}).expect("third pass");
        for (a, b) in again.iter().zip(&fresh) {
            assert_eq!(a.snap_bytes(), b.snap_bytes());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_progress_tail_is_dropped_not_fatal() {
        let specs: Vec<RunSpec> = (0..2).map(spec).collect();
        let path = temp_progress_path("torn");
        let _ = std::fs::remove_file(&path);
        let _ = run_all_resumable(&specs, 1, &path, |_, _| {}).expect("seed progress");

        // Tear the final record mid-payload.
        let bytes = std::fs::read(&path).expect("read progress");
        std::fs::write(&path, &bytes[..bytes.len() - 9]).expect("truncate");
        let progress = SweepProgress::load(&path).expect("load torn file");
        assert_eq!(progress.len(), 1, "intact prefix must survive");

        // A resumed sweep re-runs only the torn spec and still returns both.
        let ran = Mutex::new(0usize);
        let all = run_all_resumable(&specs, 1, &path, |_, _| *ran.lock().unwrap() += 1)
            .expect("resume over torn file");
        assert_eq!(all.len(), 2);
        assert_eq!(*ran.lock().unwrap(), 2);
        assert_eq!(SweepProgress::load(&path).expect("reload").len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_progress_file_is_ignored_with_a_warning() {
        let path = temp_progress_path("foreign");
        std::fs::write(&path, b"this is not a progress file").expect("write");
        let progress = SweepProgress::load(&path).expect("load foreign file");
        assert!(progress.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "zero reports")]
    fn average_of_nothing_panics() {
        let _ = average(&[]);
    }
}
