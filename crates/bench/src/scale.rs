//! The scale-benchmark tier: engine throughput at 200 / 1 000 / 5 000 /
//! 20 000 sensors.
//!
//! The paper evaluates at 100 sensors; this tier asks how the engine
//! behaves one to two orders of magnitude beyond that. The workload is
//! held honest across sizes by two deliberate choices:
//!
//! * **Constant density, constant aggregate load.** The area grows as
//!   `150 · sqrt(n/100)` per side (so node density and the zone size stay
//!   at the paper's values) and the per-sensor Poisson generation interval
//!   grows as `120 · n/100` s, keeping the *network-wide* offered load at
//!   the paper's ≈0.83 msg/s. Without the latter, larger runs would just
//!   measure queue-overflow churn.
//! * **Contact-accurate trajectory sampling.** The shortest possible
//!   contact window is `range / v_max = 2 s`, so resolving contact
//!   durations (which drive the paper's delivery-probability dynamics)
//!   needs a mobility tick well below that. The tier pins
//!   `mobility_tick_secs = 0.025 s` — 80 position samples per minimal
//!   contact window, 0.125 m of movement per step at `v_max` — at which
//!   point discretization error in contact detection is negligible. Under
//!   [`MobilityMode::Ticked`] that fidelity makes per-tick mobility the
//!   dominant cost at large n; the sleeper-aware lazy mode is built for
//!   exactly this regime, because its event-stepped catch-up gives
//!   *continuous* (tick-free) trajectories at a cost independent of the
//!   sampling fidelity asked of the ticked engine.
//!
//! Each size is measured for both mobility modes on the OPT variant with
//! wall time accumulated in integer nanoseconds. The rows feed the
//! `scale` section of `BENCH_engine.json` (schema `dftmsn-perf-baseline/2`)
//! and the scale table in EXPERIMENTS.md.

use dftmsn_core::params::ScenarioParams;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_core::world::{MobilityMode, Simulation};
use std::time::Instant;

/// Sensor counts of the tracked scale tier. The 50 000- and 100 000-
/// sensor sizes exist to keep the flat per-event cost honest two further
/// doublings out (and to give the parallel interval executor headroom on
/// hosts that have the cores for it).
pub const SCALE_SENSORS: [usize; 6] = [200, 1_000, 5_000, 20_000, 50_000, 100_000];

/// Simulated seconds per scale run in the full tier.
pub const SCALE_DURATION_SECS: u64 = 300;

/// Simulated seconds per scale run under `--quick` (CI smoke).
pub const QUICK_DURATION_SECS: u64 = 60;

/// The pinned scale scenario for `sensors` nodes (see the module docs for
/// the scaling rationale).
///
/// # Panics
///
/// Panics if the derived scenario fails parameter validation — the
/// scaling rules keep it valid for any `sensors ≥ 1`.
#[must_use]
pub fn scale_scenario(sensors: usize, duration_secs: u64) -> ScenarioParams {
    let side = 150.0 * (sensors as f64 / 100.0).sqrt();
    let zones = (side / 30.0).round().max(1.0) as usize;
    let mut p = ScenarioParams::paper_default();
    p.sensors = sensors;
    p.sinks = (3 * sensors / 100).max(1);
    p.area_width_m = side;
    p.area_height_m = side;
    p.zone_cols = zones;
    p.zone_rows = zones;
    p.data_interval_secs = 120.0 * sensors as f64 / 100.0;
    p.mobility_tick_secs = 0.025;
    p.duration_secs = duration_secs;
    p.validate().expect("scale scenario must be valid");
    p
}

/// One measured (size, mobility-mode, shard-count) point of the scale
/// tier.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Sensor count of the run.
    pub sensors: usize,
    /// Mobility mode the engine ran under.
    pub mode: MobilityMode,
    /// Spatial shard count the engine ran with (1 = the single-shard
    /// engine; results are bit-identical for every value by contract,
    /// only the wall time moves).
    pub shards: usize,
    /// Worker threads of the parallel interval executor (1 = sequential;
    /// bit-identical results for every value, same contract as shards).
    pub threads: usize,
    /// Wall time of `Simulation::run`, accumulated in integer ns.
    pub wall_ns: u128,
    /// Events popped from the queue (`SimReport::events_processed`).
    pub events: u64,
    /// Messages generated across the run.
    pub generated: u64,
    /// Messages delivered to a sink.
    pub delivered: u64,
    /// Mean end-to-end delay of delivered messages (s).
    pub mean_delay_secs: f64,
}

impl ScaleRow {
    /// Engine throughput in events per wall-clock second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Mean wall cost per event in nanoseconds.
    #[must_use]
    pub fn ns_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.wall_ns as f64 / self.events as f64
    }

    /// Delivery ratio of the run (0 when nothing was generated).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.generated == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.generated as f64
    }

    /// Short label for the mode column ("ticked" / "lazy").
    #[must_use]
    pub fn mode_label(&self) -> &'static str {
        match self.mode {
            MobilityMode::Ticked => "ticked",
            MobilityMode::Lazy => "lazy",
        }
    }
}

/// Times one OPT run of the scale scenario (build excluded, `run` only).
#[must_use]
pub fn measure(sensors: usize, duration_secs: u64, mode: MobilityMode) -> ScaleRow {
    measure_sharded(sensors, duration_secs, mode, 1)
}

/// [`measure`] with the engine partitioned onto `shards` spatial shards.
/// The report is bit-identical to the single-shard run (the engine's
/// determinism contract, enforced by `tests/sharded_engine.rs`), so the
/// only quantity this adds over `measure` is the wall time.
#[must_use]
pub fn measure_sharded(
    sensors: usize,
    duration_secs: u64,
    mode: MobilityMode,
    shards: usize,
) -> ScaleRow {
    measure_parallel(sensors, duration_secs, mode, shards, 1)
}

/// [`measure_sharded`] with `threads` workers driving the parallel
/// interval executor on top of the shard topology. Still bit-identical
/// to the sequential single-shard run (`thread_parity` enforces it); the
/// wall time is the only new quantity.
#[must_use]
pub fn measure_parallel(
    sensors: usize,
    duration_secs: u64,
    mode: MobilityMode,
    shards: usize,
    threads: usize,
) -> ScaleRow {
    let sim = Simulation::builder(scale_scenario(sensors, duration_secs), ProtocolKind::Opt)
        .seed(1)
        .mobility_mode(mode)
        .shards(shards)
        .threads(threads)
        .build();
    let t0 = Instant::now();
    let report = sim.run();
    let wall_ns = t0.elapsed().as_nanos();
    ScaleRow {
        sensors,
        mode,
        shards,
        threads,
        wall_ns,
        events: report.events_processed,
        generated: report.generated,
        delivered: report.delivered,
        mean_delay_secs: report.mean_delay_secs,
    }
}

/// Runs the tier: every size in `sizes` under both mobility modes,
/// Ticked first (rows come back grouped by size).
#[must_use]
pub fn run_tier(sizes: &[usize], duration_secs: u64) -> Vec<ScaleRow> {
    let mut rows = Vec::with_capacity(sizes.len() * 2);
    for &n in sizes {
        for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
            let row = measure(n, duration_secs, mode);
            eprintln!(
                "scale {:>5} sensors {:>6}: {:>8.1} ms  {:>9} events  {:>7.0} kev/s  ratio {:.2}",
                row.sensors,
                row.mode_label(),
                row.wall_ns as f64 / 1e6,
                row.events,
                row.events_per_sec() / 1e3,
                row.delivery_ratio(),
            );
            rows.push(row);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_scenarios_preserve_density_and_load() {
        let base = scale_scenario(100, 300);
        assert!((base.area_width_m - 150.0).abs() < 1e-9);
        assert_eq!(base.sinks, 3);
        for n in SCALE_SENSORS {
            let s = scale_scenario(n, 300);
            let density = n as f64 / (s.area_width_m * s.area_height_m);
            let base_density = 100.0 / (150.0 * 150.0);
            assert!(
                (density - base_density).abs() / base_density < 1e-9,
                "density drifted at n={n}"
            );
            // Aggregate offered load n / interval is the paper's constant.
            let load = n as f64 / s.data_interval_secs;
            assert!((load - 100.0 / 120.0).abs() < 1e-9, "load drifted at n={n}");
            // Zones keep the paper's ~30 m side.
            let zone_side = s.area_width_m / s.zone_cols as f64;
            assert!((25.0..=35.0).contains(&zone_side), "zone side {zone_side}");
            assert_eq!(s.sinks, 3 * n / 100);
            assert!((s.mobility_tick_secs - 0.025).abs() < 1e-12);
        }
    }

    #[test]
    fn measure_smoke_runs_both_modes() {
        // A deliberately tiny size so the debug-built test stays fast; the
        // real tier sizes are exercised by the perf_baseline binary.
        for mode in [MobilityMode::Ticked, MobilityMode::Lazy] {
            let row = measure(50, 30, mode);
            assert_eq!(row.sensors, 50);
            assert!(row.events > 0, "{mode:?}: no events processed");
            assert!(row.wall_ns > 0);
            assert!(row.events_per_sec() > 0.0);
            assert!(row.ns_per_event() > 0.0);
        }
    }

    #[test]
    fn empty_rows_divide_safely() {
        let row = ScaleRow {
            sensors: 0,
            mode: MobilityMode::Ticked,
            shards: 1,
            threads: 1,
            wall_ns: 0,
            events: 0,
            generated: 0,
            delivered: 0,
            mean_delay_secs: 0.0,
        };
        assert_eq!(row.events_per_sec(), 0.0);
        assert_eq!(row.ns_per_event(), 0.0);
        assert_eq!(row.delivery_ratio(), 0.0);
    }
}
