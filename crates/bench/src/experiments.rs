//! Experiment builders: one function per table/figure of the paper's
//! evaluation (see DESIGN.md §3 for the index).

use crate::sweep::{average, run_all, RunSpec};
use dftmsn_core::contention::{
    cts_collision_probability, optimize_cts_window, optimize_tau_max, rts_collision_probability,
    sigma,
};
use dftmsn_core::faults::FaultPlan;
use dftmsn_core::params::{ProtocolParams, ScenarioParams};
use dftmsn_core::policy::PolicySpec;
use dftmsn_core::sleep::SleepController;
use dftmsn_core::variants::{ProtocolKind, VariantConfig};
use dftmsn_metrics::table::Table;

/// Shared experiment knobs.
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Seeds per configuration (averaged).
    pub seeds: u64,
    /// Simulated seconds per run.
    pub duration_secs: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl ExperimentOpts {
    /// The paper's full setup: 25 000 s, averaged over 3 seeds.
    #[must_use]
    pub fn full() -> Self {
        ExperimentOpts {
            seeds: 3,
            duration_secs: 25_000,
            threads: 0,
        }
    }

    /// A fast smoke configuration for CI and iteration.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentOpts {
            seeds: 2,
            duration_secs: 3_000,
            threads: 0,
        }
    }

    /// Parses `--quick`, `--seeds N`, `--duration S`, `--threads N` from
    /// the process arguments; defaults to [`ExperimentOpts::full`].
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = if args.iter().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::full()
        };
        let grab = |flag: &str| -> Option<u64> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        if let Some(s) = grab("--seeds") {
            opts.seeds = s.max(1);
        }
        if let Some(d) = grab("--duration") {
            opts.duration_secs = d.max(1);
        }
        if let Some(t) = grab("--threads") {
            opts.threads = t as usize;
        }
        opts
    }
}

fn averaged_cell(
    spec_base: &ScenarioParams,
    kind: ProtocolKind,
    opts: &ExperimentOpts,
) -> Vec<RunSpec> {
    (0..opts.seeds)
        .map(|seed| RunSpec {
            scenario: spec_base.clone().with_duration_secs(opts.duration_secs),
            protocol: ProtocolParams::paper_default(),
            config: kind.config(),
            seed: seed + 1,
            faults: FaultPlan::default(),
            observe_window_secs: None,
            policy: PolicySpec::Builtin,
        })
        .collect()
}

/// Runs one (scenario-point × variant) grid and returns, per metric, a
/// table with the sweep value in the first column and one column per
/// variant.
fn grid_tables(
    title_prefix: &str,
    sweep_name: &str,
    points: &[(f64, ScenarioParams)],
    variants: &[ProtocolKind],
    opts: &ExperimentOpts,
) -> Vec<Table> {
    let mut specs = Vec::new();
    for (_, scenario) in points {
        for &kind in variants {
            specs.extend(averaged_cell(scenario, kind, opts));
        }
    }
    let reports = run_all(&specs, opts.threads);

    let mut columns: Vec<&str> = vec![sweep_name];
    let labels: Vec<&'static str> = variants.iter().map(|v| v.label()).collect();
    columns.extend(labels.iter().copied());

    let metric_titles = [
        format!("{title_prefix}: delivery ratio (%)"),
        format!("{title_prefix}: average nodal power consumption rate (mW)"),
        format!("{title_prefix}: average delivery delay (s)"),
        format!("{title_prefix}: collision losses"),
        format!("{title_prefix}: control overhead (ctrl bits / data bits)"),
    ];
    let mut tables: Vec<Table> = metric_titles
        .iter()
        .map(|t| Table::new(t, &columns))
        .collect();

    let per_point = variants.len() * opts.seeds as usize;
    for (pi, (x, _)) in points.iter().enumerate() {
        let mut rows: Vec<Vec<dftmsn_metrics::table::Cell>> =
            (0..5).map(|_| vec![(*x).into()]).collect();
        for (vi, _) in variants.iter().enumerate() {
            let start = pi * per_point + vi * opts.seeds as usize;
            let avg = average(&reports[start..start + opts.seeds as usize]);
            rows[0].push((avg.ratio.mean() * 100.0).into());
            rows[1].push(avg.power_mw.mean().into());
            rows[2].push(avg.delay_secs.mean().into());
            rows[3].push(avg.collisions.mean().into());
            rows[4].push(avg.overhead.mean().into());
        }
        for (t, row) in tables.iter_mut().zip(rows) {
            t.row(row);
        }
    }
    tables
}

/// Fig. 2(a–c): impact of the number of sinks on delivery ratio, power
/// consumption rate and delivery delay for OPT/NOSLEEP/NOOPT/ZBR (plus
/// collision/overhead diagnostics).
#[must_use]
pub fn fig2(opts: &ExperimentOpts) -> Vec<Table> {
    let points: Vec<(f64, ScenarioParams)> = (1..=10)
        .map(|s| {
            (
                s as f64,
                ScenarioParams::paper_default().with_sinks(s as usize),
            )
        })
        .collect();
    grid_tables("Fig. 2", "sinks", &points, &ProtocolKind::FIG2, opts)
}

/// Prose-A (Sec. 5): impact of node density. The paper reports that the
/// delivery ratio *falls* as density grows (near-sink bottlenecks).
#[must_use]
pub fn density(opts: &ExperimentOpts) -> Vec<Table> {
    let points: Vec<(f64, ScenarioParams)> = [50usize, 100, 150, 200, 250]
        .iter()
        .map(|&n| (n as f64, ScenarioParams::paper_default().with_sensors(n)))
        .collect();
    grid_tables(
        "Density study",
        "sensors",
        &points,
        &ProtocolKind::FIG2,
        opts,
    )
}

/// Prose-B (Sec. 5): impact of nodal speed. Ratios rise and delays fall
/// with speed; OPT's overhead falls too.
#[must_use]
pub fn speed(opts: &ExperimentOpts) -> Vec<Table> {
    let points: Vec<(f64, ScenarioParams)> = [1.0f64, 2.0, 5.0, 8.0, 10.0]
        .iter()
        .map(|&v| (v, ScenarioParams::paper_default().with_max_speed(v)))
        .collect();
    grid_tables(
        "Speed study",
        "v_max (m/s)",
        &points,
        &ProtocolKind::FIG2,
        opts,
    )
}

/// Abl-1: each Sec. 4 optimization toggled independently on the default
/// scenario.
#[must_use]
pub fn ablation(opts: &ExperimentOpts) -> Vec<Table> {
    let base = ProtocolKind::Opt.config();
    let cases: Vec<(&str, VariantConfig)> = vec![
        ("OPT (all)", base),
        ("no adaptive tau", base.with_adaptive_tau(false)),
        ("no adaptive W", base.with_adaptive_window(false)),
        ("fixed sleep", base.with_adaptive_sleep(false)),
        ("NOOPT (none)", ProtocolKind::NoOpt.config()),
        ("NOSLEEP", ProtocolKind::NoSleep.config()),
    ];
    let mut specs = Vec::new();
    for (_, config) in &cases {
        for seed in 0..opts.seeds {
            specs.push(RunSpec {
                scenario: ScenarioParams::paper_default().with_duration_secs(opts.duration_secs),
                protocol: ProtocolParams::paper_default(),
                config: *config,
                seed: seed + 1,
                faults: FaultPlan::default(),
                observe_window_secs: None,
                policy: PolicySpec::Builtin,
            });
        }
    }
    let reports = run_all(&specs, opts.threads);
    let mut table = Table::new(
        "Ablation: Sec. 4 optimizations toggled independently (3 sinks)",
        &[
            "configuration",
            "ratio (%)",
            "power (mW)",
            "delay (s)",
            "collisions",
            "overhead",
        ],
    );
    for (ci, (name, _)) in cases.iter().enumerate() {
        let start = ci * opts.seeds as usize;
        let avg = average(&reports[start..start + opts.seeds as usize]);
        table.row(vec![
            (*name).into(),
            (avg.ratio.mean() * 100.0).into(),
            avg.power_mw.mean().into(),
            avg.delay_secs.mean().into(),
            avg.collisions.mean().into(),
            avg.overhead.mean().into(),
        ]);
    }
    vec![table]
}

/// Opt-1/2/3: the analytic optimization tables of Sec. 4 — no simulation,
/// pure evaluations of Eqs. 9–14 and Eq. 6.
#[must_use]
pub fn optimization_tables() -> Vec<Table> {
    let mut out = Vec::new();

    // Opt-1: RTS collision probability γ (Eq. 12) vs τ_max for m equal-ξ
    // contenders, plus the Eq. 13 minimal τ_max at H = 0.1.
    let mut t1 = Table::new(
        "Opt-1: RTS collision probability vs tau_max (xi = 0.5 contenders, Eqs. 10-13)",
        &[
            "tau_max",
            "m=2",
            "m=3",
            "m=5",
            "m=8",
            "min tau (m=3, H=0.1)",
        ],
    );
    let min_tau_m3 = optimize_tau_max(&[0.5, 0.5, 0.5], 0.1, 64);
    for tau_max in [2u64, 4, 8, 16, 32, 64] {
        let gamma = |m: usize| {
            let sigmas: Vec<u64> = (0..m).map(|_| sigma(0.5, tau_max)).collect();
            rts_collision_probability(&sigmas)
        };
        t1.row(vec![
            tau_max.into(),
            gamma(2).into(),
            gamma(3).into(),
            gamma(5).into(),
            gamma(8).into(),
            min_tau_m3.into(),
        ]);
    }
    out.push(t1);

    // Opt-2: CTS collision probability γₒ (Eq. 14) vs window W, plus the
    // minimal window for a 0.1 target.
    let mut t2 = Table::new(
        "Opt-2: CTS collision probability vs contention window (Eq. 14)",
        &["W", "n=2", "n=3", "n=5", "n=8", "min W (n=3, target 0.1)"],
    );
    let min_w_n3 = optimize_cts_window(3, 0.1, 1024);
    for w in [2u64, 4, 8, 16, 32, 64] {
        t2.row(vec![
            w.into(),
            cts_collision_probability(2, w).into(),
            cts_collision_probability(3, w).into(),
            cts_collision_probability(5, w).into(),
            cts_collision_probability(8, w).into(),
            min_w_n3.into(),
        ]);
    }
    out.push(t2);

    // Opt-3: the Eq. 6 sleeping period over (ρ, α).
    let p = ProtocolParams::paper_default();
    let mut t3 = Table::new(
        "Opt-3: sleeping period T_i (s) over success rate rho and urgency alpha (Eqs. 4-8)",
        &["rho", "alpha=0.0", "alpha=0.25", "alpha=0.5", "alpha=1.0"],
    );
    for successes in [0usize, 2, 4, 6, 8, 10] {
        let mut ctl = SleepController::new(p.history_window_s);
        for i in 0..p.history_window_s {
            ctl.record_cycle(i < successes);
        }
        let mut row: Vec<dftmsn_metrics::table::Cell> = vec![ctl.rho().into()];
        for alpha in [0.0, 0.25, 0.5, 1.0] {
            row.push(ctl.sleep_duration(alpha, &p).as_secs_f64().into());
        }
        t3.row(row);
    }
    out.push(t3);
    out
}

/// Writes a table as aligned text + CSV under `dir` (created on demand),
/// and returns the rendered text.
///
/// # Panics
///
/// Panics if the directory or files cannot be written.
pub fn write_table(dir: &str, slug: &str, table: &Table) -> String {
    std::fs::create_dir_all(dir).expect("create results dir");
    let text = table.render_text(3);
    std::fs::write(format!("{dir}/{slug}.txt"), &text).expect("write table text");
    std::fs::write(format!("{dir}/{slug}.csv"), table.render_csv()).expect("write table csv");
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimization_tables_have_expected_shape() {
        let tables = optimization_tables();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].row_count(), 6);
        assert_eq!(tables[1].row_count(), 6);
        assert_eq!(tables[2].row_count(), 6);
        // γ decreases down the τ_max column for m=3.
        let first = tables[0].num(0, 2).unwrap();
        let last = tables[0].num(5, 2).unwrap();
        assert!(last < first);
        // Eq. 14 monotone in W.
        let first = tables[1].num(0, 2).unwrap();
        let last = tables[1].num(5, 2).unwrap();
        assert!(last < first);
    }

    #[test]
    fn opts_parsing_defaults() {
        let full = ExperimentOpts::full();
        assert_eq!(full.duration_secs, 25_000);
        let quick = ExperimentOpts::quick();
        assert!(quick.duration_secs < full.duration_secs);
    }

    #[test]
    fn tiny_fig2_grid_runs() {
        // One sink point, one seed, tiny duration: exercises the whole
        // grid machinery quickly.
        let opts = ExperimentOpts {
            seeds: 1,
            duration_secs: 120,
            threads: 0,
        };
        let points = vec![(1.0, ScenarioParams::paper_default().with_sensors(8))];
        let tables = grid_tables("t", "sinks", &points, &[ProtocolKind::Opt], &opts);
        assert_eq!(tables.len(), 5);
        assert_eq!(tables[0].row_count(), 1);
        assert!(tables[0].num(0, 1).is_some());
    }
}
