//! Benchmarks of the simulation substrates: event queue throughput,
//! RNG, mobility stepping, spatial-index rebuild+query, and medium
//! broadcast.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dftmsn_mobility::geom::{Bounds, Vec2};
use dftmsn_mobility::grid_index::SpatialGrid;
use dftmsn_mobility::models::{MobilityModel, ZoneMobility};
use dftmsn_mobility::zones::{ZoneGrid, ZoneId};
use dftmsn_radio::ids::NodeId;
use dftmsn_radio::medium::{Frame, Medium};
use dftmsn_sim::event::EventQueue;
use dftmsn_sim::rng::SimRng;
use dftmsn_sim::time::{SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..10_000u32 {
                q.schedule_at(SimTime::from_ticks(rng.gen_range_u64(1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += u64::from(e);
            }
            black_box(sum)
        });
    });
    // The protocol's epoch-guard pattern cancels most timers it schedules;
    // this exercises the slab queue's O(1) cancellation path.
    c.bench_function("event_queue_schedule_cancel_10k", |b| {
        let mut rng = SimRng::seed_from(6);
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            let tokens: Vec<_> = (0..10_000u32)
                .map(|i| q.schedule_at(SimTime::from_ticks(rng.gen_range_u64(1_000_000)), i))
                .collect();
            for t in tokens {
                q.cancel(t);
            }
            let mut fired = 0u64;
            while q.pop().is_some() {
                fired += 1;
            }
            black_box(fired)
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_next_f64_1k", |b| {
        let mut rng = SimRng::seed_from(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.next_f64();
            }
            black_box(acc)
        });
    });
    c.bench_function("rng_exp_1k", |b| {
        let mut rng = SimRng::seed_from(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.gen_exp(120.0);
            }
            black_box(acc)
        });
    });
}

fn bench_mobility(c: &mut Criterion) {
    c.bench_function("zone_mobility_100_nodes_one_tick", |b| {
        let zones = ZoneGrid::new(Bounds::new(150.0, 150.0), 5, 5);
        let mut rng = SimRng::seed_from(4);
        let mut models: Vec<ZoneMobility> = (0..100)
            .map(|i| ZoneMobility::new(zones.clone(), ZoneId(i % 25), 0.0, 5.0, 0.2, &mut rng))
            .collect();
        b.iter(|| {
            for m in &mut models {
                m.advance(0.5, &mut rng);
            }
            black_box(models[0].position())
        });
    });
}

fn bench_spatial_grid(c: &mut Criterion) {
    let area = Bounds::new(150.0, 150.0);
    let mut rng = SimRng::seed_from(5);
    let positions: Vec<Vec2> = (0..100)
        .map(|_| Vec2::new(rng.gen_range_f64(0.0, 150.0), rng.gen_range_f64(0.0, 150.0)))
        .collect();
    c.bench_function("spatial_grid_rebuild_100", |b| {
        let mut grid = SpatialGrid::new(area, 10.0);
        b.iter(|| grid.rebuild(black_box(&positions)));
    });
    // Mobility-tick shape: most nodes drift within their cell, a few cross
    // a boundary — the case the incremental update is built for.
    c.bench_function("spatial_grid_update_100_small_motion", |b| {
        let mut grid = SpatialGrid::new(area, 10.0);
        grid.rebuild(&positions);
        let mut moved = positions.clone();
        let mut jiggle = SimRng::seed_from(7);
        b.iter(|| {
            for p in &mut moved {
                p.x = (p.x + jiggle.gen_range_f64(-1.0, 1.0)).clamp(0.0, 150.0);
                p.y = (p.y + jiggle.gen_range_f64(-1.0, 1.0)).clamp(0.0, 150.0);
            }
            grid.update(black_box(&moved));
        });
    });
    c.bench_function("spatial_grid_query_100", |b| {
        let mut grid = SpatialGrid::new(area, 10.0);
        grid.rebuild(&positions);
        let mut out = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % positions.len();
            grid.query_within(&positions, i, 10.0, &mut out);
            black_box(out.len())
        });
    });
}

fn bench_medium(c: &mut Criterion) {
    c.bench_function("medium_broadcast_8_receivers", |b| {
        let mut medium: Medium<u32> = Medium::new(10);
        for i in 1..10 {
            medium.set_listening(NodeId(i), true);
        }
        let audible: Vec<NodeId> = (1..9).map(NodeId).collect();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += SimDuration::from_millis(6);
            let tx = medium.begin_tx(
                now,
                Frame {
                    src: NodeId(0),
                    bits: 50,
                    payload: 1,
                },
                &audible,
            );
            black_box(medium.end_tx(now + SimDuration::from_millis(5), tx))
        });
    });
    // Fan-out scaling: a full tx/rx cycle with a fixed 8-node audible set
    // while the medium tracks ever more listeners. The audibility index
    // keys per-node state, so the cost must stay flat as the listener
    // population grows — this is the medium half of the O(local density)
    // contract.
    for n in [200usize, 1_000, 5_000] {
        c.bench_function(&format!("medium_fanout_8_of_{n}_listeners"), |b| {
            let mut medium: Medium<u32> = Medium::new(n);
            for i in 1..n {
                medium.set_listening(NodeId(i), true);
            }
            let audible: Vec<NodeId> = (1..9).map(NodeId).collect();
            let mut now = SimTime::ZERO;
            b.iter(|| {
                now += SimDuration::from_millis(6);
                let tx = medium.begin_tx(
                    now,
                    Frame {
                        src: NodeId(0),
                        bits: 50,
                        payload: 1,
                    },
                    &audible,
                );
                black_box(medium.end_tx(now + SimDuration::from_millis(5), tx))
            });
        });
    }
}

/// Node layout at the scale tier's density (100 sensors per 150 m square).
fn scale_density_layout(n: usize) -> (Bounds, Vec<Vec2>) {
    let side = 150.0 * (n as f64 / 100.0).sqrt();
    let mut rng = SimRng::seed_from(8);
    let positions = (0..n)
        .map(|_| Vec2::new(rng.gen_range_f64(0.0, side), rng.gen_range_f64(0.0, side)))
        .collect();
    (Bounds::new(side, side), positions)
}

fn bench_contact_cache(c: &mut Criterion) {
    // Mirrors the world's per-node contact cache (a private type): a miss
    // collects the unfiltered bucket superset and runs an exact query at
    // range + margin, caching the result; a hit only re-filters the cached
    // superset at the true range. The gap between the two is what the
    // cache buys per protocol cycle.
    let (area, positions) = scale_density_layout(5_000);
    let (range, margin) = (10.0, 2.5);
    let mut grid = SpatialGrid::new(area, 4.0 * range);
    grid.rebuild(&positions);
    c.bench_function("contact_cache_miss_5000", |b| {
        let mut superset = Vec::new();
        let mut cached = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % positions.len();
            grid.collect_neighborhood(i, range + margin, &mut superset);
            grid.query_within(&positions, i, range + margin, &mut cached);
            black_box(cached.len())
        });
    });
    c.bench_function("contact_cache_hit_5000", |b| {
        let mut cached = Vec::new();
        let mut hits = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % positions.len();
            if cached.is_empty() || i.is_multiple_of(16) {
                grid.query_within(&positions, i, range + margin, &mut cached);
            }
            let r2 = range * range;
            let center = positions[i];
            hits.clear();
            for &j in &cached {
                if positions[j].distance_sq(center) <= r2 {
                    hits.push(j);
                }
            }
            black_box(hits.len())
        });
    });
}

fn bench_multi_ring_query(c: &mut Criterion) {
    // The multi-ring query walk: the same radius resolved against a cell
    // smaller than the radius (several rings of buckets) and against a
    // cell larger than it (the classic single-ring case). Both must return
    // identical results; the bench tracks the cost of lifting the old
    // `r <= cell` restriction.
    let (area, positions) = scale_density_layout(1_000);
    let r = 20.0;
    for (label, cell) in [("multi_ring", 4.0), ("single_ring", 25.0)] {
        c.bench_function(&format!("grid_query_r20_{label}_1000"), |b| {
            let mut grid = SpatialGrid::new(area, cell);
            grid.rebuild(&positions);
            let mut out = Vec::new();
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % positions.len();
                grid.query_within(&positions, i, r, &mut out);
                black_box(out.len())
            });
        });
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_event_queue, bench_rng, bench_mobility, bench_spatial_grid, bench_medium,
        bench_contact_cache, bench_multi_ring_query
);
criterion_main!(benches);
