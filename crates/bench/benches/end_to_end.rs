//! End-to-end simulation throughput: how many simulated seconds per wall
//! second the engine sustains, per protocol variant. These are the runs
//! behind every figure, so regressions here multiply into experiment
//! wall time.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dftmsn_core::params::ScenarioParams;
use dftmsn_core::variants::ProtocolKind;
use dftmsn_core::world::Simulation;

fn scenario(secs: u64) -> ScenarioParams {
    ScenarioParams::paper_default()
        .with_sensors(30)
        .with_sinks(2)
        .with_duration_secs(secs)
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_300s_30_sensors");
    group.sample_size(10);
    for kind in [
        ProtocolKind::Opt,
        ProtocolKind::NoOpt,
        ProtocolKind::Zbr,
        ProtocolKind::Direct,
        ProtocolKind::Epidemic,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    black_box(
                        Simulation::builder(scenario(300), kind)
                            .seed(1)
                            .build()
                            .run(),
                    )
                });
            },
        );
    }
    // NOSLEEP generates far more events; bench it shorter so the suite
    // stays fast.
    group.bench_function("NOSLEEP_100s", |b| {
        b.iter(|| {
            black_box(
                Simulation::builder(scenario(100), ProtocolKind::NoSleep)
                    .seed(1)
                    .build()
                    .run(),
            )
        });
    });
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    c.bench_function("simulation_setup_paper_scale", |b| {
        b.iter(|| {
            black_box(
                Simulation::builder(ScenarioParams::paper_default(), ProtocolKind::Opt)
                    .seed(1)
                    .build(),
            )
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default();
    targets = bench_variants, bench_construction
);
criterion_main!(benches);
