//! Benchmarks of the stateful protocol structures: the FTD queue under
//! churn, the neighbor table, and the sleep controller.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dftmsn_core::ftd::Ftd;
use dftmsn_core::message::{Message, MessageId};
use dftmsn_core::neighbor::NeighborTable;
use dftmsn_core::params::ProtocolParams;
use dftmsn_core::queue::FtdQueue;
use dftmsn_core::sleep::SleepController;
use dftmsn_radio::ids::NodeId;
use dftmsn_sim::rng::SimRng;
use dftmsn_sim::time::{SimDuration, SimTime};

fn msg(id: u64, ftd: f64) -> Message {
    Message::sensed(MessageId(id), NodeId(0), SimTime::ZERO).with_ftd(Ftd::new(ftd))
}

fn bench_queue(c: &mut Criterion) {
    c.bench_function("ftd_queue_churn_200cap", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| {
            let mut q = FtdQueue::new(200);
            for i in 0..500u64 {
                q.insert(msg(i, rng.next_f64()));
                if i % 5 == 0 {
                    let _ = q.pop_head();
                }
            }
            black_box(q.len())
        });
    });
    c.bench_function("ftd_queue_available_space", |b| {
        let mut q = FtdQueue::new(200);
        let mut rng = SimRng::seed_from(2);
        for i in 0..200u64 {
            q.insert(msg(i, rng.next_f64()));
        }
        b.iter(|| q.available_space_for(black_box(Ftd::new(0.5))));
    });
    c.bench_function("ftd_queue_update_ftd", |b| {
        let mut q = FtdQueue::new(200);
        let mut rng = SimRng::seed_from(3);
        for i in 0..200u64 {
            q.insert(msg(i, rng.next_f64()));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 200;
            q.update_ftd(MessageId(i), Ftd::new(0.42))
        });
    });
}

fn bench_neighbor_table(c: &mut Criterion) {
    c.bench_function("neighbor_table_observe_and_query", |b| {
        let mut t = NeighborTable::new();
        let now = SimTime::from_secs(100);
        for i in 0..64usize {
            t.observe(NodeId(i), (i as f64) / 64.0, SimTime::from_secs(i as u64));
        }
        let ttl = SimDuration::from_secs(50);
        b.iter(|| {
            black_box(t.fresh_xis(now, ttl));
            black_box(t.qualified_count(0.4, now, ttl))
        });
    });
}

fn bench_sleep(c: &mut Criterion) {
    c.bench_function("sleep_controller_cycle_and_duration", |b| {
        let p = ProtocolParams::paper_default();
        let mut ctl = SleepController::new(p.history_window_s);
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            ctl.record_cycle(i.is_multiple_of(3));
            ctl.sleep_duration(black_box(0.2), &p)
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_queue, bench_neighbor_table, bench_sleep
);
criterion_main!(benches);
