//! Microbenchmarks of the protocol math: Eq. 1 updates, Eqs. 2–3 FTD
//! computations, the Sec. 3.2.2 receiver selection, and the Sec. 4
//! optimizers (Eqs. 10–14).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dftmsn_core::contention::{
    cts_collision_probability, optimize_cts_window, optimize_tau_max, rts_collision_probability,
};
use dftmsn_core::delivery::DeliveryProb;
use dftmsn_core::ftd::Ftd;
use dftmsn_core::neighbor::{select_receivers, Candidate};
use dftmsn_radio::ids::NodeId;

fn bench_delivery_updates(c: &mut Criterion) {
    c.bench_function("eq1_xi_update_chain_1k", |b| {
        b.iter(|| {
            let mut xi = DeliveryProb::ZERO;
            for i in 0..1000u32 {
                if i % 3 == 0 {
                    xi.on_timeout(black_box(0.25));
                } else {
                    xi.on_transmission(DeliveryProb::new(0.6), black_box(0.25));
                }
            }
            xi
        });
    });
}

fn bench_ftd(c: &mut Criterion) {
    let xis = [0.3, 0.5, 0.7, 0.2];
    c.bench_function("eq3_after_multicast", |b| {
        b.iter(|| Ftd::new(0.4).after_multicast(black_box(&xis)));
    });
    c.bench_function("eq2_receiver_copy", |b| {
        b.iter(|| Ftd::new(0.4).receiver_copy(black_box(0.3), black_box(&xis[..3])));
    });
}

fn bench_selection(c: &mut Criterion) {
    let candidates: Vec<Candidate> = (0..16)
        .map(|i| Candidate {
            id: NodeId(i),
            xi: (i as f64 + 1.0) / 20.0,
            buffer_space: 10,
        })
        .collect();
    c.bench_function("receiver_selection_16_candidates", |b| {
        b.iter(|| select_receivers(black_box(0.2), Ftd::NEW, black_box(&candidates), 0.95));
    });
}

fn bench_optimizers(c: &mut Criterion) {
    let xis = [0.2, 0.4, 0.6, 0.8];
    c.bench_function("eq12_rts_collision_probability", |b| {
        let sigmas = [4u64, 8, 13, 26];
        b.iter(|| rts_collision_probability(black_box(&sigmas)));
    });
    c.bench_function("eq13_optimize_tau_max", |b| {
        b.iter(|| optimize_tau_max(black_box(&xis), 0.1, 32));
    });
    c.bench_function("eq14_cts_collision_probability", |b| {
        b.iter(|| cts_collision_probability(black_box(5), black_box(24)));
    });
    c.bench_function("eq14_optimize_cts_window", |b| {
        b.iter(|| optimize_cts_window(black_box(4), 0.1, 64));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_delivery_updates, bench_ftd, bench_selection, bench_optimizers
);
criterion_main!(benches);
