//! Single-point scale probe for perf work: measures one (sensors,
//! duration, mode) cell of the scale tier without running the whole
//! `perf_baseline` tier, optionally with the per-event-kind profile and
//! contact-cache hit/miss counters.
//!
//! ```text
//! cargo run --release -p dftmsn-bench --example scale_probe -- \
//!     SENSORS DURATION [lazy] [profile]
//! ```
use dftmsn_bench::scale::{measure, scale_scenario};
use dftmsn_core::variants::ProtocolKind;
use dftmsn_core::world::{MobilityMode, Simulation};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sensors: usize = args.get(1).map_or(5000, |s| s.parse().unwrap());
    let dur: u64 = args.get(2).map_or(60, |s| s.parse().unwrap());
    let mode = if args.iter().any(|a| a == "lazy") {
        MobilityMode::Lazy
    } else {
        MobilityMode::Ticked
    };
    if args.iter().any(|a| a == "profile") {
        let mut sim = Simulation::builder(scale_scenario(sensors, dur), ProtocolKind::Opt)
            .seed(1)
            .mobility_mode(mode)
            .build();
        while sim.step() {}
        let cache = sim.contact_cache_stats();
        let sim2 = Simulation::builder(scale_scenario(sensors, dur), ProtocolKind::Opt)
            .seed(1)
            .mobility_mode(mode)
            .build();
        let (report, profile) = sim2.run_profiled();
        println!("events {}  cache {:?}", report.events_processed, cache);
        for k in profile.by_cost() {
            println!(
                "{:<20} {:>9} events  {:>12.1} us total  {:>8.0} ns mean  p50 {:>6} p99 {:>8}",
                k.label,
                k.count,
                k.total_ns as f64 / 1e3,
                k.mean_ns(),
                k.p50_ns(),
                k.p99_ns()
            );
        }
        return;
    }
    let row = measure(sensors, dur, mode);
    println!(
        "{} sensors {:?} {}s: {:.1} ms, {} events, {:.1} ns/event",
        sensors,
        mode,
        dur,
        row.wall_ns as f64 / 1e6,
        row.events,
        row.ns_per_event()
    );
}
