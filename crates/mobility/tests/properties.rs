//! Property-based tests of the mobility substrate: models never escape
//! their areas, the zone grid tiles exactly, and the spatial index always
//! matches a brute-force scan.

use dftmsn_mobility::geom::{Bounds, Vec2};
use dftmsn_mobility::grid_index::SpatialGrid;
use dftmsn_mobility::models::{MobilityModel, RandomWalk, RandomWaypoint, ZoneMobility};
use dftmsn_mobility::zones::{ZoneGrid, ZoneId};
use dftmsn_sim::rng::SimRng;
use proptest::prelude::*;

proptest! {
    /// Zone mobility stays inside the deployment area for arbitrary
    /// speeds, exit probabilities and step sizes.
    #[test]
    fn zone_mobility_never_escapes(
        seed in any::<u64>(),
        vmax in 0.1f64..20.0,
        exit_prob in 0.0f64..=1.0,
        dt in 0.05f64..2.0,
        home in 0usize..25,
    ) {
        let grid = ZoneGrid::new(Bounds::new(150.0, 150.0), 5, 5);
        let mut rng = SimRng::seed_from(seed);
        let mut m = ZoneMobility::new(grid.clone(), ZoneId(home), 0.0, vmax, exit_prob, &mut rng);
        for _ in 0..500 {
            m.advance(dt, &mut rng);
            prop_assert!(grid.area().contains(m.position()), "escaped to {}", m.position());
        }
    }

    /// Random waypoint and random walk stay inside arbitrary areas.
    #[test]
    fn free_models_never_escape(
        seed in any::<u64>(),
        w in 10.0f64..500.0,
        h in 10.0f64..500.0,
        vmax in 0.5f64..30.0,
        dt in 0.05f64..2.0,
    ) {
        let area = Bounds::new(w, h);
        let mut rng = SimRng::seed_from(seed);
        let mut wp = RandomWaypoint::new(area, 0.5, vmax, 1.0, &mut rng);
        let mut rw = RandomWalk::new(area, 0.0, vmax, 10.0, &mut rng);
        for _ in 0..300 {
            wp.advance(dt, &mut rng);
            rw.advance(dt, &mut rng);
            prop_assert!(area.contains(wp.position()));
            prop_assert!(area.contains(rw.position()));
        }
    }

    /// Every point of the area maps to exactly the zone whose bounds
    /// contain it.
    #[test]
    fn zone_lookup_matches_zone_bounds(
        x in 0.0f64..150.0,
        y in 0.0f64..150.0,
        cols in 1usize..8,
        rows in 1usize..8,
    ) {
        let grid = ZoneGrid::new(Bounds::new(150.0, 150.0), cols, rows);
        let p = Vec2::new(x, y);
        let zone = grid.zone_of(p);
        let b = grid.zone_bounds(zone);
        prop_assert!(b.contains(p), "zone {zone:?} bounds {b} miss {p}");
    }

    /// The spatial index equals brute force on arbitrary layouts, radii
    /// and cell sizes (radius ≤ cell).
    #[test]
    fn grid_index_matches_brute_force(
        seed in any::<u64>(),
        n in 1usize..80,
        cell in 5.0f64..40.0,
        r_frac in 0.1f64..=1.0,
    ) {
        let area = Bounds::new(200.0, 200.0);
        let mut rng = SimRng::seed_from(seed);
        let positions: Vec<Vec2> = (0..n)
            .map(|_| Vec2::new(rng.gen_range_f64(0.0, 200.0), rng.gen_range_f64(0.0, 200.0)))
            .collect();
        let r = cell * r_frac;
        let mut grid = SpatialGrid::new(area, cell);
        grid.rebuild(&positions);
        let mut out = Vec::new();
        for i in 0..n {
            grid.query_within(&positions, i, r, &mut out);
            let brute: Vec<usize> = (0..n)
                .filter(|&j| j != i && positions[j].distance(positions[i]) <= r)
                .collect();
            prop_assert_eq!(&out, &brute, "node {} r {} cell {}", i, r, cell);
        }
    }

    /// The incrementally maintained index is indistinguishable from a
    /// full rebuild after arbitrary movement histories.
    #[test]
    fn grid_incremental_update_equals_rebuild(
        seed in any::<u64>(),
        n in 1usize..60,
        cell in 5.0f64..40.0,
        steps in 1usize..12,
        max_step in 0.5f64..50.0,
    ) {
        let area = Bounds::new(200.0, 200.0);
        let mut rng = SimRng::seed_from(seed);
        let mut positions: Vec<Vec2> = (0..n)
            .map(|_| Vec2::new(rng.gen_range_f64(0.0, 200.0), rng.gen_range_f64(0.0, 200.0)))
            .collect();
        let mut inc = SpatialGrid::new(area, cell);
        inc.rebuild(&positions);
        let mut out_inc = Vec::new();
        let mut out_full = Vec::new();
        for _ in 0..steps {
            for (i, p) in positions.iter_mut().enumerate() {
                if i % 4 == 0 {
                    continue; // a quarter of the fleet never moves
                }
                p.x = (p.x + rng.gen_range_f64(-max_step, max_step)).clamp(0.0, 200.0);
                p.y = (p.y + rng.gen_range_f64(-max_step, max_step)).clamp(0.0, 200.0);
            }
            inc.update(&positions);
            let mut full = SpatialGrid::new(area, cell);
            full.rebuild(&positions);
            for i in 0..n {
                inc.query_within(&positions, i, cell, &mut out_inc);
                full.query_within(&positions, i, cell, &mut out_full);
                prop_assert_eq!(&out_inc, &out_full, "node {} after movement", i);
            }
        }
    }

    /// Reflection always lands inside and preserves speed direction
    /// magnitude.
    #[test]
    fn reflection_contains_and_preserves_direction_norm(
        w in 1.0f64..100.0,
        h in 1.0f64..100.0,
        px in -50.0f64..150.0,
        py in -50.0f64..150.0,
        dx in -1.0f64..1.0,
        dy in -1.0f64..1.0,
    ) {
        let b = Bounds::new(w, h);
        // Bound the overshoot like the simulator does: one velocity step.
        let p = Vec2::new(px.clamp(-w, 2.0 * w), py.clamp(-h, 2.0 * h));
        let dir = Vec2::new(dx, dy);
        let (rp, rd) = b.reflect(p, dir);
        prop_assert!(b.contains(rp), "reflected point {rp} outside {b}");
        prop_assert!((rd.length() - dir.length()).abs() < 1e-9);
    }
}
