//! The zone grid of the paper's deployment area.
//!
//! The evaluation divides the area into a grid of non-overlapping zones
//! (25 zones in the default setup); each sensor has a *home zone* and the
//! zone-based mobility model makes crossing decisions at zone boundaries.

use crate::geom::{Bounds, Vec2};
use serde::{Deserialize, Serialize};

/// Identifies a zone: row-major index into the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ZoneId(pub usize);

/// A rectangular grid of equally sized zones covering an area.
///
/// # Examples
///
/// ```
/// use dftmsn_mobility::geom::{Bounds, Vec2};
/// use dftmsn_mobility::zones::{ZoneGrid, ZoneId};
///
/// let grid = ZoneGrid::new(Bounds::new(150.0, 150.0), 5, 5);
/// assert_eq!(grid.zone_count(), 25);
/// assert_eq!(grid.zone_of(Vec2::new(10.0, 10.0)), ZoneId(0));
/// assert_eq!(grid.zone_of(Vec2::new(149.0, 149.0)), ZoneId(24));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneGrid {
    area: Bounds,
    cols: usize,
    rows: usize,
    zone_w: f64,
    zone_h: f64,
}

impl ZoneGrid {
    /// Creates a `cols × rows` grid over `area`.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero.
    #[must_use]
    pub fn new(area: Bounds, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one zone");
        ZoneGrid {
            zone_w: area.width() / cols as f64,
            zone_h: area.height() / rows as f64,
            area,
            cols,
            rows,
        }
    }

    /// The covered area.
    #[must_use]
    pub fn area(&self) -> Bounds {
        self.area
    }

    /// Number of zone columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of zone rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of zones.
    #[must_use]
    pub fn zone_count(&self) -> usize {
        self.cols * self.rows
    }

    /// The zone containing point `p` (points outside clamp to the border
    /// zone, so every point maps to a valid zone).
    #[must_use]
    pub fn zone_of(&self, p: Vec2) -> ZoneId {
        let cx = ((p.x - self.area.x0) / self.zone_w).floor();
        let cy = ((p.y - self.area.y0) / self.zone_h).floor();
        let cx = (cx as isize).clamp(0, self.cols as isize - 1) as usize;
        let cy = (cy as isize).clamp(0, self.rows as isize - 1) as usize;
        ZoneId(cy * self.cols + cx)
    }

    /// The rectangle of zone `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn zone_bounds(&self, id: ZoneId) -> Bounds {
        assert!(id.0 < self.zone_count(), "zone id {id:?} out of range");
        let cx = id.0 % self.cols;
        let cy = id.0 / self.cols;
        Bounds::from_corners(
            self.area.x0 + cx as f64 * self.zone_w,
            self.area.y0 + cy as f64 * self.zone_h,
            self.area.x0 + (cx + 1) as f64 * self.zone_w,
            self.area.y0 + (cy + 1) as f64 * self.zone_h,
        )
    }

    /// The centre of zone `id`.
    #[must_use]
    pub fn zone_center(&self, id: ZoneId) -> Vec2 {
        self.zone_bounds(id).center()
    }

    /// Whether two zones share an edge (4-neighbourhood).
    #[must_use]
    pub fn adjacent(&self, a: ZoneId, b: ZoneId) -> bool {
        let (ax, ay) = (a.0 % self.cols, a.0 / self.cols);
        let (bx, by) = (b.0 % self.cols, b.0 / self.cols);
        ax.abs_diff(bx) + ay.abs_diff(by) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ZoneGrid {
        ZoneGrid::new(Bounds::new(150.0, 150.0), 5, 5)
    }

    #[test]
    fn zone_lookup_covers_grid() {
        let g = grid();
        assert_eq!(g.zone_of(Vec2::new(0.0, 0.0)), ZoneId(0));
        assert_eq!(g.zone_of(Vec2::new(31.0, 0.0)), ZoneId(1));
        assert_eq!(g.zone_of(Vec2::new(0.0, 31.0)), ZoneId(5));
        assert_eq!(g.zone_of(Vec2::new(149.9, 149.9)), ZoneId(24));
    }

    #[test]
    fn out_of_area_points_clamp() {
        let g = grid();
        assert_eq!(g.zone_of(Vec2::new(-5.0, -5.0)), ZoneId(0));
        assert_eq!(g.zone_of(Vec2::new(400.0, 400.0)), ZoneId(24));
    }

    #[test]
    fn zone_bounds_partition_area() {
        let g = grid();
        let mut total = 0.0;
        for i in 0..g.zone_count() {
            let b = g.zone_bounds(ZoneId(i));
            total += b.width() * b.height();
            assert!((b.width() - 30.0).abs() < 1e-9);
            assert!((b.height() - 30.0).abs() < 1e-9);
        }
        assert!((total - 150.0 * 150.0).abs() < 1e-6);
    }

    #[test]
    fn bounds_and_lookup_agree() {
        let g = grid();
        for i in 0..g.zone_count() {
            let c = g.zone_center(ZoneId(i));
            assert_eq!(g.zone_of(c), ZoneId(i));
        }
    }

    #[test]
    fn adjacency_is_4_neighbourhood() {
        let g = grid();
        assert!(g.adjacent(ZoneId(0), ZoneId(1)));
        assert!(g.adjacent(ZoneId(0), ZoneId(5)));
        assert!(!g.adjacent(ZoneId(0), ZoneId(6)), "diagonal");
        assert!(!g.adjacent(ZoneId(0), ZoneId(0)), "self");
        assert!(!g.adjacent(ZoneId(4), ZoneId(5)), "row wrap");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_zone_id_panics() {
        let _ = grid().zone_bounds(ZoneId(25));
    }
}
