//! A uniform spatial hash grid for neighbour queries.
//!
//! The medium needs "who is within transmission range of node *i*" on every
//! frame transmission. A brute-force scan is O(n) per query; the
//! [`SpatialGrid`] buckets positions into cells so a query touches only the
//! `⌈r/cell⌉` rings of cells that can intersect the query disc — cell size
//! is a cache-occupancy knob, decoupled from the query radius.
//!
//! Two properties keep the hot path cheap:
//!
//! * every bucket stores its node indices in ascending order, so
//!   [`query_within`](SpatialGrid::query_within) produces sorted output by
//!   merging the scanned neighbourhood instead of sorting per query;
//! * [`update`](SpatialGrid::update) moves only the nodes whose cell
//!   changed since the last indexing — stationary sinks and slow nodes
//!   cost nothing per mobility tick, where a full
//!   [`rebuild`](SpatialGrid::rebuild) used to reclear every bucket.

use crate::geom::{Bounds, Vec2};

/// A rebuildable uniform grid over node positions.
///
/// # Examples
///
/// ```
/// use dftmsn_mobility::geom::{Bounds, Vec2};
/// use dftmsn_mobility::grid_index::SpatialGrid;
///
/// let positions = vec![Vec2::new(1.0, 1.0), Vec2::new(2.0, 2.0), Vec2::new(90.0, 90.0)];
/// let mut grid = SpatialGrid::new(Bounds::new(100.0, 100.0), 10.0);
/// grid.rebuild(&positions);
/// let mut out = Vec::new();
/// grid.query_within(&positions, 0, 10.0, &mut out);
/// assert_eq!(out, vec![1]); // node 2 is far away; the centre itself is excluded
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    area: Bounds,
    cell: f64,
    cols: usize,
    rows: usize,
    /// `buckets[cell]` lists the node indices inside that cell, ascending.
    /// `u32` halves the bucket memory traffic on the query hot path; node
    /// counts past 4 billion are far beyond any simulated scenario.
    buckets: Vec<Vec<u32>>,
    /// Cached cell index per node from the last `rebuild`/`update`.
    node_cell: Vec<u32>,
}

impl SpatialGrid {
    /// Creates a grid over `area` with cells of side `cell` metres.
    ///
    /// The cell size no longer bounds the query radius —
    /// [`query_within`](Self::query_within) scans `⌈r/cell⌉` rings of
    /// cells around the centre — so `cell` is purely a performance knob:
    /// small cells tighten the scanned area but touch more buckets, large
    /// cells scan fewer (fatter) buckets.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not positive and finite.
    #[must_use]
    pub fn new(area: Bounds, cell: f64) -> Self {
        assert!(cell.is_finite() && cell > 0.0, "invalid cell size {cell}");
        let cols = (area.width() / cell).ceil().max(1.0) as usize;
        let rows = (area.height() / cell).ceil().max(1.0) as usize;
        SpatialGrid {
            area,
            cell,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
            node_cell: Vec::new(),
        }
    }

    fn cell_of(&self, p: Vec2) -> usize {
        let cx = (((p.x - self.area.x0) / self.cell) as isize).clamp(0, self.cols as isize - 1);
        let cy = (((p.y - self.area.y0) / self.cell) as isize).clamp(0, self.rows as isize - 1);
        cy as usize * self.cols + cx as usize
    }

    /// Rebuilds the index from scratch for the given positions.
    pub fn rebuild(&mut self, positions: &[Vec2]) {
        assert!(
            positions.len() <= u32::MAX as usize,
            "too many nodes for the index"
        );
        for b in &mut self.buckets {
            b.clear();
        }
        self.node_cell.clear();
        self.node_cell.reserve(positions.len());
        for (i, &p) in positions.iter().enumerate() {
            let c = self.cell_of(p);
            // Ascending i keeps every bucket sorted by construction.
            self.buckets[c].push(i as u32);
            self.node_cell.push(c as u32);
        }
    }

    /// Moves the single node `i` to position `p`, keeping its bucket
    /// membership (and the ascending bucket order) consistent. Free when
    /// the node stayed inside its cell. This is the lazy-mobility
    /// catch-up primitive: a node whose position was just extrapolated is
    /// re-indexed on its own, without touching the other nodes.
    ///
    /// # Panics
    ///
    /// Panics if `i` was not part of the last `rebuild`.
    pub fn move_node(&mut self, i: usize, p: Vec2) {
        let new_cell = self.cell_of(p) as u32;
        self.relocate(i, new_cell);
    }

    /// Re-buckets node `i` into `new_cell` if it moved, preserving
    /// ascending bucket order.
    fn relocate(&mut self, i: usize, new_cell: u32) {
        let old_cell = self.node_cell[i];
        if new_cell == old_cell {
            return;
        }
        let key = i as u32;
        let old = &mut self.buckets[old_cell as usize];
        let at = old.binary_search(&key).expect("node indexed in its cell");
        old.remove(at);
        let new = &mut self.buckets[new_cell as usize];
        let at = new
            .binary_search(&key)
            .expect_err("node absent from new cell");
        new.insert(at, key);
        self.node_cell[i] = new_cell;
    }

    /// [`move_node`](Self::move_node) fused with
    /// [`cell_margin`](Self::cell_margin): moves node `i` to `p` and
    /// returns the margin at `p`, sharing the coordinate normalization
    /// both need. This is the ticked coast engine's cell-recheck
    /// primitive, called every time a lease's cell window expires, so the
    /// duplicate divisions of the unfused pair matter.
    ///
    /// # Panics
    ///
    /// Panics if `i` was not part of the last `rebuild`.
    pub fn move_node_margin(&mut self, i: usize, p: Vec2) -> f64 {
        let fx = (p.x - self.area.x0) / self.cell;
        let fy = (p.y - self.area.y0) / self.cell;
        let cx = (fx as isize).clamp(0, self.cols as isize - 1);
        let cy = (fy as isize).clamp(0, self.rows as isize - 1);
        self.relocate(i, (cy as usize * self.cols + cx as usize) as u32);
        let mx = (fx - cx as f64).min(cx as f64 + 1.0 - fx) * self.cell;
        let my = (fy - cy as f64).min(cy as f64 + 1.0 - fy) * self.cell;
        mx.min(my).max(0.0)
    }

    /// Incrementally refreshes the index: only nodes whose cell changed
    /// since the last `rebuild`/`update` are moved. Equivalent to (but
    /// much cheaper than) a full [`rebuild`](Self::rebuild) over the same
    /// positions — nodes that stayed inside their cell cost one
    /// `cell_of` computation and nothing else.
    ///
    /// # Panics
    ///
    /// Panics if the node count changed since the last indexing (the
    /// incremental path tracks movement, not membership; `rebuild` after
    /// adding or removing nodes).
    pub fn update(&mut self, positions: &[Vec2]) {
        assert!(
            self.node_cell.len() == positions.len(),
            "index built for {} nodes, updated with {} (rebuild after membership changes)",
            self.node_cell.len(),
            positions.len()
        );
        for (i, &p) in positions.iter().enumerate() {
            self.move_node(i, p);
        }
    }

    /// Collects into `out` the indices of all nodes within distance `r` of
    /// node `center` (excluding `center` itself), in ascending index order.
    ///
    /// The `(2k+1)²` cell neighbourhood with `k = ⌈r/cell⌉` is scanned;
    /// for `k > 1` cells whose rectangle lies entirely outside the query
    /// disc are skipped before their bucket is touched. Survivors of the
    /// distance filter are collected and the (typically tiny) result
    /// sorted — cheaper than a multi-lane merge because each bucket is
    /// walked linearly exactly once and the per-element work is one
    /// distance check.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not finite and non-negative, if `center` is out of
    /// range, or if the index is stale (fewer indexed nodes than
    /// `positions`).
    pub fn query_within(&self, positions: &[Vec2], center: usize, r: f64, out: &mut Vec<usize>) {
        assert!(r.is_finite() && r >= 0.0, "invalid query radius {r}");
        assert!(
            self.node_cell.len() == positions.len(),
            "index built for {} nodes, queried with {}",
            self.node_cell.len(),
            positions.len()
        );
        out.clear();
        let p = positions[center];
        let c = self.node_cell[center] as usize;
        let cx = (c % self.cols) as isize;
        let cy = (c / self.cols) as isize;
        let r2 = r * r;
        // How many rings of cells the disc can reach. The centre node sits
        // anywhere inside its cell, so a disc of radius r protrudes at most
        // r past either cell edge: ⌈r/cell⌉ rings always cover it.
        let reach = ((r / self.cell).ceil() as isize).max(1);
        let prune = reach > 1;

        for dy in -reach..=reach {
            let ny = cy + dy;
            if ny < 0 || ny >= self.rows as isize {
                continue;
            }
            for dx in -reach..=reach {
                let nx = cx + dx;
                if nx < 0 || nx >= self.cols as isize {
                    continue;
                }
                if prune && !self.cell_intersects_disc(nx, ny, p, r) {
                    continue;
                }
                for &j in &self.buckets[ny as usize * self.cols + nx as usize] {
                    let j = j as usize;
                    if j != center && positions[j].distance_sq(p) <= r2 {
                        out.push(j);
                    }
                }
            }
        }
        // Buckets are disjoint, so the union is duplicate-free; sorting
        // restores the ascending order the callers (and determinism
        // baselines) rely on. The survivor set is small, so this beats
        // paying a lane scan per merged element.
        out.sort_unstable();
    }

    /// Collects into `out` every node indexed in the `⌈r/cell⌉`-ring cell
    /// neighbourhood of node `center` — an unfiltered superset of what
    /// [`query_within`](Self::query_within) at the same radius would
    /// inspect (no distance filter, no disc pruning, `center` included, no
    /// ordering guarantee). Callers that maintain positions lazily use
    /// this to catch every candidate up *before* running the exact query.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not finite and non-negative or `center` is out of
    /// range.
    pub fn collect_neighborhood(&self, center: usize, r: f64, out: &mut Vec<usize>) {
        assert!(r.is_finite() && r >= 0.0, "invalid query radius {r}");
        out.clear();
        let c = self.node_cell[center] as usize;
        let cx = (c % self.cols) as isize;
        let cy = (c / self.cols) as isize;
        let reach = ((r / self.cell).ceil() as isize).max(1);
        for dy in -reach..=reach {
            let ny = cy + dy;
            if ny < 0 || ny >= self.rows as isize {
                continue;
            }
            for dx in -reach..=reach {
                let nx = cx + dx;
                if nx < 0 || nx >= self.cols as isize {
                    continue;
                }
                out.extend(
                    self.buckets[ny as usize * self.cols + nx as usize]
                        .iter()
                        .map(|&j| j as usize),
                );
            }
        }
    }

    /// True when the rectangle of cell `(nx, ny)` can contain a point
    /// within distance `r` of `p`. Conservative (widened by a ulp-scale
    /// epsilon) so pruning never drops a true neighbour.
    fn cell_intersects_disc(&self, nx: isize, ny: isize, p: Vec2, r: f64) -> bool {
        let x0 = self.area.x0 + nx as f64 * self.cell;
        let y0 = self.area.y0 + ny as f64 * self.cell;
        let dx = (x0 - p.x).max(p.x - (x0 + self.cell)).max(0.0);
        let dy = (y0 - p.y).max(p.y - (y0 + self.cell)).max(0.0);
        dx * dx + dy * dy <= r * r * (1.0 + 1e-12) + 1e-12
    }

    /// The cell side length in metres.
    #[must_use]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Distance from `p` to the nearest boundary of the grid cell it maps
    /// to: a node that moves strictly less than this stays in its cell, so
    /// its index entry cannot go stale. Returns 0 for points outside the
    /// area (their clamped cell offers no such guarantee).
    #[must_use]
    pub fn cell_margin(&self, p: Vec2) -> f64 {
        let fx = (p.x - self.area.x0) / self.cell;
        let fy = (p.y - self.area.y0) / self.cell;
        let cx = (fx as isize).clamp(0, self.cols as isize - 1) as f64;
        let cy = (fy as isize).clamp(0, self.rows as isize - 1) as f64;
        let mx = (fx - cx).min(cx + 1.0 - fx) * self.cell;
        let my = (fy - cy).min(cy + 1.0 - fy) * self.cell;
        mx.min(my).max(0.0)
    }

    /// Builds a [`ShardMap`] partitioning this grid's columns into
    /// `shards` contiguous vertical bands.
    #[must_use]
    pub fn shard_map(&self, shards: usize) -> ShardMap {
        ShardMap::new(self.area, self.cell, self.cols, shards)
    }
}

/// Spatial shard ownership: the grid's columns split into contiguous
/// vertical bands, one per shard.
///
/// Shards are aligned to [`SpatialGrid`] cell columns so a shard owns whole
/// buckets, never a fraction of one. A shard's *boundary band* is the strip
/// within `band_m` metres of a band edge; nodes there are visible to (and
/// mirrored into) the adjacent shard, which is what lets shard-local
/// structures run an epoch without consulting the rest of the world — a
/// node deeper than the band cannot interact across the edge within one
/// conservative-lookahead epoch (see `dftmsn_sim::time::EpochClock`).
///
/// The shard of a node is pure *placement*: the engine's determinism
/// contract guarantees that which shard owns a node never changes simulated
/// outcomes, so the map may be refreshed lazily (at epoch barriers) from
/// positions that themselves lag by a bounded drift.
///
/// # Examples
///
/// ```
/// use dftmsn_mobility::geom::{Bounds, Vec2};
/// use dftmsn_mobility::grid_index::ShardMap;
///
/// let map = ShardMap::new(Bounds::new(100.0, 100.0), 10.0, 10, 4);
/// assert_eq!(map.shards(), 4);
/// assert_eq!(map.shard_of(Vec2::new(5.0, 50.0)), 0);
/// assert_eq!(map.shard_of(Vec2::new(95.0, 50.0)), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ShardMap {
    area: Bounds,
    cell: f64,
    cols: usize,
    shards: usize,
    /// `col_shard[c]` is the shard owning grid column `c`.
    col_shard: Vec<u8>,
    /// Per-shard `[first_col, last_col]` (inclusive) of the owned band.
    spans: Vec<(usize, usize)>,
}

impl ShardMap {
    /// Partitions `cols` grid columns of side `cell` over `area` into
    /// `shards` near-equal contiguous bands. The shard count is clamped to
    /// the column count (a band must own at least one column) and to 256
    /// (`u8` shard ids).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `cell` is not positive and finite.
    #[must_use]
    pub fn new(area: Bounds, cell: f64, cols: usize, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        assert!(cell.is_finite() && cell > 0.0, "invalid cell size {cell}");
        let cols = cols.max(1);
        let shards = shards.min(cols).min(256);
        let mut col_shard = vec![0u8; cols];
        let mut spans = Vec::with_capacity(shards);
        // Balanced split: the first `cols % shards` bands get one extra
        // column. Deterministic in (cols, shards) alone.
        let base = cols / shards;
        let extra = cols % shards;
        let mut col = 0usize;
        for s in 0..shards {
            let width = base + usize::from(s < extra);
            let first = col;
            let last = col + width - 1;
            for owner in &mut col_shard[first..=last] {
                *owner = s as u8;
            }
            spans.push((first, last));
            col = last + 1;
        }
        ShardMap {
            area,
            cell,
            cols,
            shards,
            col_shard,
            spans,
        }
    }

    /// Number of shards (after clamping to the column count).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning position `p` (positions outside the area clamp to
    /// the nearest column, like the grid itself).
    #[must_use]
    pub fn shard_of(&self, p: Vec2) -> usize {
        usize::from(self.col_shard[self.col_of(p)])
    }

    /// The shard owning grid column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    #[must_use]
    pub fn shard_of_col(&self, col: usize) -> usize {
        usize::from(self.col_shard[col])
    }

    /// True when `p` lies within `band_m` metres of an edge shared with an
    /// adjacent shard — the boundary band whose contents must be mirrored
    /// across that edge for one lookahead epoch.
    #[must_use]
    pub fn in_boundary_band(&self, p: Vec2, band_m: f64) -> bool {
        let s = self.shard_of(p);
        let (first, last) = self.spans[s];
        let x = p.x - self.area.x0;
        if s > 0 {
            let left_edge = first as f64 * self.cell;
            if x - left_edge < band_m {
                return true;
            }
        }
        if s + 1 < self.shards {
            let right_edge = (last + 1) as f64 * self.cell;
            if right_edge - x < band_m {
                return true;
            }
        }
        false
    }

    /// The `[first_col, last_col]` column span owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn span(&self, s: usize) -> (usize, usize) {
        self.spans[s]
    }

    fn col_of(&self, p: Vec2) -> usize {
        (((p.x - self.area.x0) / self.cell) as isize).clamp(0, self.cols as isize - 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dftmsn_sim::rng::SimRng;

    fn brute_force(positions: &[Vec2], center: usize, r: f64) -> Vec<usize> {
        let p = positions[center];
        (0..positions.len())
            .filter(|&j| j != center && positions[j].distance(p) <= r)
            .collect()
    }

    #[test]
    fn matches_brute_force_on_random_layouts() {
        let mut rng = SimRng::seed_from(11);
        let area = Bounds::new(150.0, 150.0);
        for trial in 0..20 {
            let n = 50 + trial;
            let positions: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.gen_range_f64(0.0, 150.0), rng.gen_range_f64(0.0, 150.0)))
                .collect();
            let mut grid = SpatialGrid::new(area, 10.0);
            grid.rebuild(&positions);
            let mut out = Vec::new();
            for i in 0..n {
                grid.query_within(&positions, i, 10.0, &mut out);
                assert_eq!(out, brute_force(&positions, i, 10.0), "node {i}");
            }
        }
    }

    #[test]
    fn incremental_update_matches_full_rebuild() {
        // Random walks with a mix of still, slow, and cell-hopping nodes:
        // after every step the incrementally maintained index must answer
        // queries identically to a freshly rebuilt one.
        let mut rng = SimRng::seed_from(23);
        let area = Bounds::new(120.0, 120.0);
        let n = 60;
        let mut positions: Vec<Vec2> = (0..n)
            .map(|_| Vec2::new(rng.gen_range_f64(0.0, 120.0), rng.gen_range_f64(0.0, 120.0)))
            .collect();
        let mut inc = SpatialGrid::new(area, 10.0);
        inc.rebuild(&positions);
        let mut out_inc = Vec::new();
        let mut out_full = Vec::new();
        for _step in 0..40 {
            for (i, p) in positions.iter_mut().enumerate() {
                // A third of the nodes are stationary; the rest jitter by
                // up to a cell so some hop cells and some do not.
                if i % 3 == 0 {
                    continue;
                }
                let step = if i % 5 == 0 { 12.0 } else { 2.0 };
                p.x = (p.x + rng.gen_range_f64(-step, step)).clamp(0.0, 120.0);
                p.y = (p.y + rng.gen_range_f64(-step, step)).clamp(0.0, 120.0);
            }
            inc.update(&positions);
            let mut full = SpatialGrid::new(area, 10.0);
            full.rebuild(&positions);
            for i in 0..n {
                inc.query_within(&positions, i, 10.0, &mut out_inc);
                full.query_within(&positions, i, 10.0, &mut out_full);
                assert_eq!(out_inc, out_full, "node {i} diverged");
                assert_eq!(out_inc, brute_force(&positions, i, 10.0), "node {i}");
            }
        }
    }

    #[test]
    fn update_without_movement_is_identity() {
        let positions = vec![Vec2::new(5.0, 5.0), Vec2::new(6.0, 6.0)];
        let mut grid = SpatialGrid::new(Bounds::new(100.0, 100.0), 10.0);
        grid.rebuild(&positions);
        let before = grid.clone();
        grid.update(&positions);
        assert_eq!(grid.buckets, before.buckets);
        assert_eq!(grid.node_cell, before.node_cell);
    }

    #[test]
    #[should_panic(expected = "rebuild after membership changes")]
    fn update_with_changed_node_count_panics() {
        let positions = vec![Vec2::ZERO, Vec2::new(1.0, 1.0)];
        let mut grid = SpatialGrid::new(Bounds::new(10.0, 10.0), 5.0);
        grid.rebuild(&positions[..1]);
        grid.update(&positions);
    }

    #[test]
    fn boundary_positions_are_indexed() {
        let area = Bounds::new(100.0, 100.0);
        let positions = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 100.0),
            Vec2::new(99.0, 99.5),
        ];
        let mut grid = SpatialGrid::new(area, 10.0);
        grid.rebuild(&positions);
        let mut out = Vec::new();
        grid.query_within(&positions, 1, 10.0, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn empty_rebuild_is_fine() {
        let mut grid = SpatialGrid::new(Bounds::new(10.0, 10.0), 10.0);
        grid.rebuild(&[]);
        grid.update(&[]);
        // No nodes, nothing to query; just ensure no panic.
    }

    #[test]
    fn oversized_radius_scans_extra_rings() {
        // r = 2.5× the cell used to panic; now it must see every node the
        // brute force sees.
        let positions = vec![
            Vec2::ZERO,
            Vec2::new(1.0, 1.0),
            Vec2::new(4.5, 0.0),
            Vec2::new(0.0, 4.9),
            Vec2::new(5.5, 5.5),
        ];
        let mut grid = SpatialGrid::new(Bounds::new(10.0, 10.0), 2.0);
        grid.rebuild(&positions);
        let mut out = Vec::new();
        grid.query_within(&positions, 0, 5.0, &mut out);
        assert_eq!(out, brute_force(&positions, 0, 5.0));
    }

    #[test]
    fn multi_ring_matches_brute_force_at_many_radius_cell_ratios() {
        // Property test for the multi-ring scan: random layouts queried at
        // radius/cell ratios below, at, and well above 1 must agree with
        // the O(n²) brute force for every centre node.
        let mut rng = SimRng::seed_from(47);
        let area = Bounds::new(150.0, 150.0);
        for &(cell, r) in &[
            (10.0, 3.0),  // r < cell: single-ring fast case
            (10.0, 10.0), // r == cell: boundary of the old assert
            (10.0, 17.0), // 1 < r/cell < 2
            (6.0, 14.0),  // r/cell ≈ 2.3
            (4.0, 15.5),  // r/cell ≈ 3.9 — pruning kicks in hard
            (3.0, 31.0),  // r/cell > 10: disc spans a large block
            (40.0, 55.0), // cells larger than most of the area
        ] {
            for trial in 0..8 {
                let n = 40 + 11 * trial;
                let positions: Vec<Vec2> = (0..n)
                    .map(|_| {
                        Vec2::new(rng.gen_range_f64(0.0, 150.0), rng.gen_range_f64(0.0, 150.0))
                    })
                    .collect();
                let mut grid = SpatialGrid::new(area, cell);
                grid.rebuild(&positions);
                let mut out = Vec::new();
                for i in 0..n {
                    grid.query_within(&positions, i, r, &mut out);
                    assert_eq!(
                        out,
                        brute_force(&positions, i, r),
                        "cell {cell} r {r} node {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn cell_margin_bounds_cell_changes() {
        // A node moved by strictly less than its cell margin must keep the
        // same cell index; margin is 0 only on cell boundaries.
        let mut rng = SimRng::seed_from(91);
        let grid = SpatialGrid::new(Bounds::new(100.0, 100.0), 7.0);
        for _ in 0..500 {
            let p = Vec2::new(rng.gen_range_f64(0.0, 100.0), rng.gen_range_f64(0.0, 100.0));
            let m = grid.cell_margin(p);
            assert!((0.0..=3.5 + 1e-9).contains(&m), "margin {m} out of range");
            if m > 1e-9 {
                let step = m * 0.999;
                for &(dx, dy) in &[(step, 0.0), (-step, 0.0), (0.0, step), (0.0, -step)] {
                    let q = Vec2::new(p.x + dx, p.y + dy);
                    assert_eq!(
                        grid.cell_of(p),
                        grid.cell_of(q),
                        "p {p:?} moved ({dx},{dy})"
                    );
                }
            }
        }
    }

    #[test]
    fn move_node_margin_matches_unfused_pair() {
        let mut rng = SimRng::seed_from(133);
        let area = Bounds::new(100.0, 100.0);
        let n = 40;
        let mut positions: Vec<Vec2> = (0..n)
            .map(|_| Vec2::new(rng.gen_range_f64(0.0, 100.0), rng.gen_range_f64(0.0, 100.0)))
            .collect();
        let mut fused = SpatialGrid::new(area, 8.0);
        let mut plain = SpatialGrid::new(area, 8.0);
        fused.rebuild(&positions);
        plain.rebuild(&positions);
        for _step in 0..30 {
            for (i, p) in positions.iter_mut().enumerate() {
                p.x = (p.x + rng.gen_range_f64(-6.0, 6.0)).clamp(0.0, 100.0);
                p.y = (p.y + rng.gen_range_f64(-6.0, 6.0)).clamp(0.0, 100.0);
                let m = fused.move_node_margin(i, *p);
                plain.move_node(i, *p);
                assert_eq!(m.to_bits(), plain.cell_margin(*p).to_bits());
            }
            assert_eq!(fused.buckets, plain.buckets);
            assert_eq!(fused.node_cell, plain.node_cell);
        }
    }

    #[test]
    fn collect_neighborhood_covers_query_within() {
        // The unfiltered neighbourhood must contain every index the exact
        // query returns (plus the centre), at any radius/cell ratio.
        let mut rng = SimRng::seed_from(77);
        let area = Bounds::new(120.0, 120.0);
        for &(cell, r) in &[(10.0, 3.0), (10.0, 10.0), (5.0, 17.0), (40.0, 55.0)] {
            let n = 80;
            let positions: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.gen_range_f64(0.0, 120.0), rng.gen_range_f64(0.0, 120.0)))
                .collect();
            let mut grid = SpatialGrid::new(area, cell);
            grid.rebuild(&positions);
            let mut exact = Vec::new();
            let mut superset = Vec::new();
            for i in 0..n {
                grid.query_within(&positions, i, r, &mut exact);
                grid.collect_neighborhood(i, r, &mut superset);
                assert!(superset.contains(&i), "centre missing for node {i}");
                for j in &exact {
                    assert!(superset.contains(j), "cell {cell} r {r}: {j} missing");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "index built for")]
    fn stale_index_panics() {
        let positions = vec![Vec2::ZERO, Vec2::new(1.0, 1.0)];
        let mut grid = SpatialGrid::new(Bounds::new(10.0, 10.0), 5.0);
        grid.rebuild(&positions[..1]);
        let mut out = Vec::new();
        grid.query_within(&positions, 0, 5.0, &mut out);
    }

    #[test]
    fn shard_map_covers_all_columns_contiguously() {
        for cols in [1usize, 3, 7, 10, 64] {
            for shards in [1usize, 2, 3, 8, 100] {
                let map = ShardMap::new(Bounds::new(cols as f64 * 5.0, 50.0), 5.0, cols, shards);
                assert!(map.shards() >= 1 && map.shards() <= shards.min(cols));
                // Every column owned, shard ids non-decreasing left→right,
                // every shard owns at least one column.
                let mut last = 0usize;
                let mut seen = vec![false; map.shards()];
                for c in 0..cols {
                    let s = map.shard_of_col(c);
                    assert!(s >= last, "shard ids must be monotone");
                    assert!(s < map.shards());
                    seen[s] = true;
                    last = s;
                }
                assert!(seen.iter().all(|&b| b), "empty shard band");
                // Spans agree with the per-column table.
                for s in 0..map.shards() {
                    let (first, last_col) = map.span(s);
                    assert_eq!(map.shard_of_col(first), s);
                    assert_eq!(map.shard_of_col(last_col), s);
                }
            }
        }
    }

    #[test]
    fn shard_of_matches_grid_bucketing() {
        let area = Bounds::new(100.0, 80.0);
        let grid = SpatialGrid::new(area, 10.0);
        let map = grid.shard_map(4);
        // A position's shard is the shard of its grid column, including
        // out-of-area clamping.
        for &(x, y) in &[
            (0.0, 0.0),
            (49.9, 70.0),
            (50.1, 3.0),
            (99.9, 79.9),
            (-5.0, 5.0),
        ] {
            let p = Vec2::new(x, y);
            let col = (((x) / 10.0) as isize).clamp(0, 9) as usize;
            assert_eq!(map.shard_of(p), map.shard_of_col(col));
        }
    }

    #[test]
    fn boundary_band_flags_only_near_shared_edges() {
        // 10 columns of 10 m, 2 shards: the shared edge is at x = 50.
        let map = ShardMap::new(Bounds::new(100.0, 100.0), 10.0, 10, 2);
        let band = 4.0;
        assert!(map.in_boundary_band(Vec2::new(47.0, 10.0), band));
        assert!(map.in_boundary_band(Vec2::new(53.0, 10.0), band));
        assert!(!map.in_boundary_band(Vec2::new(40.0, 10.0), band));
        assert!(!map.in_boundary_band(Vec2::new(60.0, 10.0), band));
        // The outer walls are not shard edges: nothing to mirror there.
        assert!(!map.in_boundary_band(Vec2::new(1.0, 10.0), band));
        assert!(!map.in_boundary_band(Vec2::new(99.0, 10.0), band));
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let map = ShardMap::new(Bounds::new(100.0, 100.0), 10.0, 10, 1);
        for x in 0..10 {
            let p = Vec2::new(x as f64 * 10.0 + 5.0, 50.0);
            assert_eq!(map.shard_of(p), 0);
            assert!(!map.in_boundary_band(p, 1000.0));
        }
    }
}
