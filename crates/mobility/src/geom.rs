//! Planar geometry primitives: [`Vec2`] points/vectors and rectangular
//! [`Bounds`] with reflection, the building blocks of every mobility model.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Neg, Sub};
use serde::{Deserialize, Serialize};

/// A 2-D point or vector in metres.
///
/// # Examples
///
/// ```
/// use dftmsn_mobility::geom::Vec2;
///
/// let a = Vec2::new(0.0, 0.0);
/// let b = Vec2::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal coordinate (m).
    pub x: f64,
    /// Vertical coordinate (m).
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// A unit vector at `angle` radians from the positive x-axis.
    #[must_use]
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Euclidean length.
    #[must_use]
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared length (avoids the square root for comparisons).
    #[must_use]
    pub fn length_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point.
    #[must_use]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).length()
    }

    /// Squared distance to another point.
    #[must_use]
    pub fn distance_sq(self, other: Vec2) -> f64 {
        (self - other).length_sq()
    }

    /// The same direction with unit length; [`Vec2::ZERO`] stays zero.
    #[must_use]
    pub fn normalized(self) -> Vec2 {
        let len = self.length();
        if len == 0.0 {
            Vec2::ZERO
        } else {
            Vec2::new(self.x / len, self.y / len)
        }
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// An axis-aligned rectangle `[x0, x1] × [y0, y1]` in metres.
///
/// Used both for the whole deployment area and for individual zones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Bounds {
    /// A rectangle with its lower-left corner at the origin.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is not a positive finite number.
    #[must_use]
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width.is_finite() && width > 0.0, "width must be positive");
        assert!(
            height.is_finite() && height > 0.0,
            "height must be positive"
        );
        Bounds {
            x0: 0.0,
            y0: 0.0,
            x1: width,
            y1: height,
        }
    }

    /// An arbitrary rectangle from corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is empty or inverted.
    #[must_use]
    pub fn from_corners(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(x0 < x1 && y0 < y1, "empty or inverted bounds");
        Bounds { x0, y0, x1, y1 }
    }

    /// Width of the rectangle.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height of the rectangle.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// The centre point.
    #[must_use]
    pub fn center(&self) -> Vec2 {
        Vec2::new((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// True when `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// Clamps `p` onto the rectangle.
    #[must_use]
    pub fn clamp(&self, p: Vec2) -> Vec2 {
        Vec2::new(p.x.clamp(self.x0, self.x1), p.y.clamp(self.y0, self.y1))
    }

    /// Mirror-reflects a point that stepped outside back in, flipping the
    /// matching direction components — the standard "billiard" boundary.
    ///
    /// Returns the reflected position and direction. Points that are inside
    /// pass through unchanged. Reflection is applied repeatedly, so even a
    /// large overshoot lands inside.
    #[must_use]
    pub fn reflect(&self, mut p: Vec2, mut dir: Vec2) -> (Vec2, Vec2) {
        // A bounded loop: each pass halves the overshoot; positions produced
        // by the simulator overshoot by at most one velocity step.
        for _ in 0..64 {
            let mut bounced = false;
            if p.x < self.x0 {
                p.x = 2.0 * self.x0 - p.x;
                dir.x = -dir.x;
                bounced = true;
            } else if p.x > self.x1 {
                p.x = 2.0 * self.x1 - p.x;
                dir.x = -dir.x;
                bounced = true;
            }
            if p.y < self.y0 {
                p.y = 2.0 * self.y0 - p.y;
                dir.y = -dir.y;
                bounced = true;
            } else if p.y > self.y1 {
                p.y = 2.0 * self.y1 - p.y;
                dir.y = -dir.y;
                bounced = true;
            }
            if !bounced {
                return (p, dir);
            }
        }
        (self.clamp(p), dir)
    }
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1},{:.1}]x[{:.1},{:.1}]",
            self.x0, self.x1, self.y0, self.y1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(b - a, Vec2::new(2.0, -3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(3.0, 4.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn from_angle_is_unit() {
        for i in 0..16 {
            let a = i as f64 * std::f64::consts::TAU / 16.0;
            assert!((Vec2::from_angle(a).length() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bounds_contains_and_clamp() {
        let b = Bounds::new(10.0, 5.0);
        assert!(b.contains(Vec2::new(0.0, 0.0)));
        assert!(b.contains(Vec2::new(10.0, 5.0)));
        assert!(!b.contains(Vec2::new(10.1, 0.0)));
        assert_eq!(b.clamp(Vec2::new(-3.0, 9.0)), Vec2::new(0.0, 5.0));
        assert_eq!(b.center(), Vec2::new(5.0, 2.5));
    }

    #[test]
    fn reflect_bounces_off_each_edge() {
        let b = Bounds::new(10.0, 10.0);
        let (p, d) = b.reflect(Vec2::new(-1.0, 5.0), Vec2::new(-1.0, 0.0));
        assert_eq!(p, Vec2::new(1.0, 5.0));
        assert_eq!(d, Vec2::new(1.0, 0.0));
        let (p, d) = b.reflect(Vec2::new(5.0, 12.0), Vec2::new(0.0, 1.0));
        assert_eq!(p, Vec2::new(5.0, 8.0));
        assert_eq!(d, Vec2::new(0.0, -1.0));
    }

    #[test]
    fn reflect_handles_corner_overshoot() {
        let b = Bounds::new(10.0, 10.0);
        let (p, _) = b.reflect(Vec2::new(11.0, -2.0), Vec2::new(1.0, -1.0));
        assert!(b.contains(p));
    }

    #[test]
    fn reflect_inside_is_identity() {
        let b = Bounds::new(10.0, 10.0);
        let dir = Vec2::new(0.3, -0.7);
        let (p, d) = b.reflect(Vec2::new(4.0, 4.0), dir);
        assert_eq!(p, Vec2::new(4.0, 4.0));
        assert_eq!(d, dir);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn empty_bounds_panics() {
        let _ = Bounds::new(0.0, 5.0);
    }
}
