//! # dftmsn-mobility — mobility substrate for the DFT-MSN reproduction
//!
//! Node movement is what creates (and breaks) communication opportunities
//! in a DFT-MSN, so the mobility model is a first-class substrate:
//!
//! * [`geom`] — planar points/vectors and reflecting rectangular bounds;
//! * [`zones`] — the paper's zone grid over the deployment area;
//! * [`models`] — the paper's [`ZoneMobility`] model
//!   plus [`RandomWaypoint`],
//!   [`RandomWalk`] and
//!   [`Stationary`] for sensitivity studies;
//! * [`grid_index`] — a spatial hash grid for O(1)-ish range queries;
//! * [`trace`] — trace-replay mobility and pairwise contact extraction.
//!
//! # Examples
//!
//! ```
//! use dftmsn_mobility::geom::Bounds;
//! use dftmsn_mobility::models::{MobilityModel, ZoneMobility};
//! use dftmsn_mobility::zones::{ZoneGrid, ZoneId};
//! use dftmsn_sim::rng::SimRng;
//!
//! let grid = ZoneGrid::new(Bounds::new(150.0, 150.0), 5, 5);
//! let mut rng = SimRng::seed_from(7);
//! let mut node = ZoneMobility::new(grid, ZoneId(0), 0.0, 5.0, 0.2, &mut rng);
//! node.advance(0.5, &mut rng);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geom;
pub mod grid_index;
pub mod models;
pub mod trace;
pub mod zones;

pub use geom::{Bounds, Vec2};
pub use grid_index::SpatialGrid;
pub use models::{MobilityModel, RandomWalk, RandomWaypoint, Stationary, ZoneMobility};
pub use trace::{extract_contacts, Contact, TraceMobility};
pub use zones::{ZoneGrid, ZoneId};
