//! Trace-driven mobility and contact extraction.
//!
//! [`TraceMobility`] replays a recorded waypoint track (piecewise-linear
//! interpolation), which lets the simulator run on measured human-mobility
//! traces instead of synthetic models. [`extract_contacts`] derives the
//! contact log — the `(pair, start, end)` intervals two nodes spend within
//! range — which is the standard DTN-evaluation artefact.

use crate::geom::Vec2;
use crate::models::MobilityModel;
use dftmsn_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A mobility model replaying `(t_secs, position)` waypoints with linear
/// interpolation; the node holds its last position after the final
/// waypoint.
///
/// # Examples
///
/// ```
/// use dftmsn_mobility::geom::Vec2;
/// use dftmsn_mobility::models::MobilityModel;
/// use dftmsn_mobility::trace::TraceMobility;
/// use dftmsn_sim::rng::SimRng;
///
/// let mut m = TraceMobility::new(vec![
///     (0.0, Vec2::new(0.0, 0.0)),
///     (10.0, Vec2::new(10.0, 0.0)),
/// ]);
/// let mut rng = SimRng::seed_from(1);
/// m.advance(5.0, &mut rng);
/// assert_eq!(m.position(), Vec2::new(5.0, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMobility {
    waypoints: Vec<(f64, Vec2)>,
    now: f64,
}

impl TraceMobility {
    /// Creates a replayer from waypoints sorted by time.
    ///
    /// # Panics
    ///
    /// Panics if `waypoints` is empty or timestamps are not
    /// non-decreasing and finite.
    #[must_use]
    pub fn new(waypoints: Vec<(f64, Vec2)>) -> Self {
        assert!(!waypoints.is_empty(), "a trace needs at least one waypoint");
        assert!(
            waypoints.iter().all(|(t, _)| t.is_finite()),
            "non-finite waypoint time"
        );
        assert!(
            waypoints.windows(2).all(|w| w[0].0 <= w[1].0),
            "waypoints must be sorted by time"
        );
        let start = waypoints[0].0;
        TraceMobility {
            waypoints,
            now: start,
        }
    }

    /// The replay clock (seconds in trace time).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    fn position_at(&self, t: f64) -> Vec2 {
        let wps = &self.waypoints;
        if t <= wps[0].0 {
            return wps[0].1;
        }
        if t >= wps[wps.len() - 1].0 {
            return wps[wps.len() - 1].1;
        }
        let i = wps.partition_point(|&(wt, _)| wt <= t);
        let (t0, p0) = wps[i - 1];
        let (t1, p1) = wps[i];
        if t1 <= t0 {
            return p1;
        }
        let f = (t - t0) / (t1 - t0);
        p0 + (p1 - p0) * f
    }
}

impl MobilityModel for TraceMobility {
    fn position(&self) -> Vec2 {
        self.position_at(self.now)
    }

    fn advance(&mut self, dt: f64, _rng: &mut SimRng) {
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive, got {dt}");
        self.now += dt;
    }
}

/// One contact: nodes `a < b` were within range from `start` to `end`
/// (trace seconds; `end` is exclusive and aligned to the sampling step).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Contact {
    /// Lower node index.
    pub a: usize,
    /// Higher node index.
    pub b: usize,
    /// Contact start (s).
    pub start: f64,
    /// Contact end (s).
    pub end: f64,
}

impl Contact {
    /// Contact duration (s).
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Samples a set of mobility models every `dt` seconds for `duration`
/// seconds and extracts the pairwise contact log at transmission range
/// `range`.
///
/// Contacts open at the first sample two nodes are within range and close
/// at the first sample they are not; contacts still open at the end are
/// closed at `duration`.
///
/// # Panics
///
/// Panics if `dt` or `duration` is not positive, or `range` is negative.
pub fn extract_contacts(
    models: &mut [Box<dyn MobilityModel>],
    range: f64,
    duration: f64,
    dt: f64,
    rng: &mut SimRng,
) -> Vec<Contact> {
    assert!(
        dt > 0.0 && duration > 0.0,
        "dt and duration must be positive"
    );
    assert!(range >= 0.0, "negative range");
    let n = models.len();
    let mut open: Vec<Vec<Option<f64>>> = vec![vec![None; n]; n];
    let mut contacts = Vec::new();
    let steps = (duration / dt).ceil() as u64;
    let mut positions: Vec<Vec2> = models.iter().map(|m| m.position()).collect();
    let r2 = range * range;
    for step in 0..=steps {
        let t = step as f64 * dt;
        for a in 0..n {
            for b in (a + 1)..n {
                let within = positions[a].distance_sq(positions[b]) <= r2;
                match (open[a][b], within) {
                    (None, true) => open[a][b] = Some(t),
                    (Some(start), false) => {
                        contacts.push(Contact {
                            a,
                            b,
                            start,
                            end: t,
                        });
                        open[a][b] = None;
                    }
                    _ => {}
                }
            }
        }
        if step < steps {
            for (m, p) in models.iter_mut().zip(positions.iter_mut()) {
                m.advance(dt, rng);
                *p = m.position();
            }
        }
    }
    for (a, row) in open.iter().enumerate() {
        for (b, slot) in row.iter().enumerate().skip(a + 1) {
            if let Some(start) = *slot {
                contacts.push(Contact {
                    a,
                    b,
                    start,
                    end: duration,
                });
            }
        }
    }
    contacts.sort_by(|x, y| {
        x.start
            .partial_cmp(&y.start)
            .expect("finite times")
            .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
    });
    contacts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Bounds;
    use crate::models::Stationary;
    use crate::zones::{ZoneGrid, ZoneId};
    use crate::ZoneMobility;

    #[test]
    fn trace_interpolates_linearly() {
        let m = TraceMobility::new(vec![
            (0.0, Vec2::new(0.0, 0.0)),
            (10.0, Vec2::new(20.0, 10.0)),
            (20.0, Vec2::new(20.0, 10.0)),
        ]);
        assert_eq!(m.position_at(0.0), Vec2::new(0.0, 0.0));
        assert_eq!(m.position_at(5.0), Vec2::new(10.0, 5.0));
        assert_eq!(m.position_at(15.0), Vec2::new(20.0, 10.0));
        assert_eq!(m.position_at(99.0), Vec2::new(20.0, 10.0));
    }

    #[test]
    fn trace_holds_before_first_waypoint() {
        let m = TraceMobility::new(vec![(5.0, Vec2::new(3.0, 3.0))]);
        assert_eq!(m.position_at(0.0), Vec2::new(3.0, 3.0));
    }

    #[test]
    fn advance_moves_the_replay_clock() {
        let mut m = TraceMobility::new(vec![
            (0.0, Vec2::new(0.0, 0.0)),
            (10.0, Vec2::new(10.0, 0.0)),
        ]);
        let mut rng = SimRng::seed_from(1);
        m.advance(2.5, &mut rng);
        m.advance(2.5, &mut rng);
        assert_eq!(m.position(), Vec2::new(5.0, 0.0));
        assert_eq!(m.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_waypoints_panic() {
        let _ = TraceMobility::new(vec![(5.0, Vec2::ZERO), (1.0, Vec2::new(1.0, 1.0))]);
    }

    #[test]
    fn contacts_of_crossing_traces() {
        // Node 1 walks past stationary node 0: one contact while within
        // 10 m of it.
        let mut models: Vec<Box<dyn MobilityModel>> = vec![
            Box::new(Stationary::new(Vec2::new(50.0, 0.0))),
            Box::new(TraceMobility::new(vec![
                (0.0, Vec2::new(0.0, 0.0)),
                (100.0, Vec2::new(100.0, 0.0)), // 1 m/s
            ])),
        ];
        let mut rng = SimRng::seed_from(1);
        let contacts = extract_contacts(&mut models, 10.0, 100.0, 1.0, &mut rng);
        assert_eq!(contacts.len(), 1);
        let c = contacts[0];
        assert_eq!((c.a, c.b), (0, 1));
        // Within range from x=40 (t=40) to x=60 (t=60); sampling grid may
        // shift the edges by one step.
        assert!((c.start - 40.0).abs() <= 1.0, "start {}", c.start);
        assert!((c.end - 61.0).abs() <= 1.0, "end {}", c.end);
        assert!(c.duration() > 15.0);
    }

    #[test]
    fn contacts_open_at_end_are_closed() {
        let mut models: Vec<Box<dyn MobilityModel>> = vec![
            Box::new(Stationary::new(Vec2::new(0.0, 0.0))),
            Box::new(Stationary::new(Vec2::new(5.0, 0.0))),
        ];
        let mut rng = SimRng::seed_from(1);
        let contacts = extract_contacts(&mut models, 10.0, 50.0, 1.0, &mut rng);
        assert_eq!(contacts.len(), 1);
        assert_eq!(contacts[0].start, 0.0);
        assert_eq!(contacts[0].end, 50.0);
    }

    #[test]
    fn zone_mobility_contact_log_is_plausible() {
        let grid = ZoneGrid::new(Bounds::new(150.0, 150.0), 5, 5);
        let mut rng = SimRng::seed_from(9);
        let mut models: Vec<Box<dyn MobilityModel>> = (0..20)
            .map(|i| {
                Box::new(ZoneMobility::new(
                    grid.clone(),
                    ZoneId(i % 25),
                    0.5,
                    5.0,
                    0.2,
                    &mut rng,
                )) as Box<dyn MobilityModel>
            })
            .collect();
        let contacts = extract_contacts(&mut models, 10.0, 2_000.0, 0.5, &mut rng);
        assert!(!contacts.is_empty(), "20 nodes over 2000 s must meet");
        for c in &contacts {
            assert!(c.a < c.b);
            assert!(c.duration() > 0.0);
            assert!(c.end <= 2_000.0);
        }
    }
}
