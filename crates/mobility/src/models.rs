//! Mobility models.
//!
//! The paper's evaluation uses a **zone-based** model ([`ZoneMobility`]):
//! each sensor has a home zone, moves with a uniformly random speed, bounces
//! back from its current zone's boundary with probability 80% (crosses with
//! 20%), and always crosses a boundary leading back into its home zone.
//! [`RandomWaypoint`], [`RandomWalk`] and [`Stationary`] are provided for
//! sensitivity studies and tests.
//!
//! Models advance in discrete ticks: the simulation calls
//! [`MobilityModel::advance`] with a small `dt` (0.5 s by default) and reads
//! back the position. All randomness comes from the caller-supplied
//! [`SimRng`], keeping runs deterministic.

use crate::geom::{Bounds, Vec2};
use crate::zones::{ZoneGrid, ZoneId};
use dftmsn_sim::rng::SimRng;

/// A point process generating node positions over time.
///
/// Implementations must keep the position inside the model's area at all
/// times.
pub trait MobilityModel: std::fmt::Debug + Send {
    /// The current position.
    fn position(&self) -> Vec2;

    /// Advances the model by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `dt` is not a positive finite number.
    fn advance(&mut self, dt: f64, rng: &mut SimRng);

    /// Advances the model across an arbitrary span of `dt` seconds in a
    /// single call — the lazy-mobility catch-up path.
    ///
    /// The default forwards to [`advance`](Self::advance), which is correct
    /// for models whose `advance` already walks the span closed-form
    /// ([`RandomWaypoint`], [`Stationary`], trace replay). Models whose
    /// per-tick `advance` makes boundary decisions each tick
    /// ([`ZoneMobility`], [`RandomWalk`]) override this with an
    /// event-stepped walk: cost is proportional to the number of leg ends
    /// and boundary hits in the span, not to `dt / tick`. The trajectory is
    /// drawn from the same distribution but is **not** bit-identical to a
    /// sequence of small ticks, so an engine switching between the two
    /// modes must re-record its golden baselines.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `dt` is not a positive finite number.
    fn advance_span(&mut self, dt: f64, rng: &mut SimRng) {
        self.advance(dt, rng);
    }

    /// The model's mutable state as a flat `f64` vector, for checkpointing.
    ///
    /// Only trajectory state is captured — construction-time parameters
    /// (area, zone grid, speed bounds) are rebuilt from the scenario.
    /// Values must round-trip bit-exactly; stateless models return an
    /// empty vector.
    fn save_state(&self) -> Vec<f64> {
        Vec::new()
    }

    /// Restores state captured by [`save_state`](Self::save_state) into a
    /// freshly constructed model of the same kind and parameters.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `state` does not match their
    /// [`save_state`](Self::save_state) layout.
    fn load_state(&mut self, state: &[f64]) {
        assert!(
            state.is_empty(),
            "stateless model handed {} state values",
            state.len()
        );
    }

    /// Ticked-mode coast lease: `(disp, k)` promises that each of the next
    /// `k` calls to [`advance`](Self::advance) with this exact `dt` would
    /// be a pure straight-line step — the position moves by exactly `disp`
    /// (bit-identical to what `advance` would compute), no RNG is drawn,
    /// and no leg end, zone boundary, or area wall is reached.
    ///
    /// The caller may then apply `disp` to its own position mirror for up
    /// to `k` ticks without touching the model, provided it reports the
    /// skipped ticks back via [`tick_settle`](Self::tick_settle) before
    /// anything else reads or advances the model. Models without a
    /// constant-displacement tick (or none at all) return `(Vec2::ZERO,
    /// 0)`, which callers must treat as "call `advance` every tick".
    fn tick_grant(&self, _dt: f64) -> (Vec2, u32) {
        (Vec2::ZERO, 0)
    }

    /// Settles `ticks` coasted ticks granted by
    /// [`tick_grant`](Self::tick_grant): `pos` is the caller-accumulated
    /// position after applying the granted displacement `ticks` times —
    /// bit-identical to what repeated `advance` calls would have produced,
    /// because both sides perform the same `+= disp` sequence from the
    /// same start. Implementations replay any per-tick countdowns so
    /// subsequent redraw decisions land on exactly the tick a pure
    /// per-tick run would have chosen.
    ///
    /// # Panics
    ///
    /// The default (for models that never grant) panics when `ticks > 0`.
    fn tick_settle(&mut self, _dt: f64, ticks: u32, _pos: Vec2) {
        assert_eq!(ticks, 0, "model granted no coast ticks but was settled");
    }
}

/// Whole steps of `d` a point at `p` can take while staying at least
/// `guard` metres inside `[lo, hi]` along this axis (infinite when `d` is
/// zero: the coordinate never changes). The guard band absorbs the
/// accumulated f64 addition error of a lease — microscopic against
/// metre-scale margins — so every intermediate position stays strictly
/// interior.
fn coast_ticks(p: f64, d: f64, lo: f64, hi: f64, guard: f64) -> f64 {
    let dist = if d > 0.0 {
        hi - p
    } else if d < 0.0 {
        p - lo
    } else {
        return f64::INFINITY;
    };
    ((dist - guard) / d.abs()).floor()
}

/// Time until a point at `p` moving with velocity `v` leaves `[lo, hi]`
/// (infinite when it never does).
fn ray_exit(p: f64, v: f64, lo: f64, hi: f64) -> f64 {
    if v > 0.0 {
        (hi - p) / v
    } else if v < 0.0 {
        (lo - p) / v
    } else {
        f64::INFINITY
    }
}

fn assert_dt(dt: f64) {
    assert!(dt.is_finite() && dt > 0.0, "dt must be positive, got {dt}");
}

/// The paper's zone-based mobility model (Sec. 5).
///
/// # Examples
///
/// ```
/// use dftmsn_mobility::geom::Bounds;
/// use dftmsn_mobility::models::{MobilityModel, ZoneMobility};
/// use dftmsn_mobility::zones::{ZoneGrid, ZoneId};
/// use dftmsn_sim::rng::SimRng;
///
/// let grid = ZoneGrid::new(Bounds::new(150.0, 150.0), 5, 5);
/// let mut rng = SimRng::seed_from(1);
/// let mut m = ZoneMobility::new(grid.clone(), ZoneId(12), 0.0, 5.0, 0.2, &mut rng);
/// for _ in 0..100 {
///     m.advance(0.5, &mut rng);
///     assert!(grid.area().contains(m.position()));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ZoneMobility {
    grid: ZoneGrid,
    home: ZoneId,
    pos: Vec2,
    dir: Vec2,
    speed: f64,
    v_min: f64,
    v_max: f64,
    exit_prob: f64,
    /// Seconds left on the current straight-line leg before the node
    /// re-draws its heading and speed.
    leg_remaining: f64,
    /// Conservative lower bound on the distance (m) from `pos` to the
    /// nearest edge of its current zone — a step shorter than this cannot
    /// reach any boundary, letting `advance_span` skip the zone geometry
    /// entirely. A movement of length L shrinks every edge distance by at
    /// most L, so the bound survives heading redraws; 0 forces the full
    /// path, which recomputes it.
    span_margin_m: f64,
}

impl ZoneMobility {
    /// Mean straight-line leg duration before re-drawing heading/speed (s).
    const MEAN_LEG_SECS: f64 = 20.0;

    /// Creates a node homed in zone `home`, placed uniformly inside it.
    ///
    /// `exit_prob` is the probability of crossing a non-home zone boundary
    /// (the paper uses 0.2).
    ///
    /// # Panics
    ///
    /// Panics if the speed range is invalid or `exit_prob` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(
        grid: ZoneGrid,
        home: ZoneId,
        v_min: f64,
        v_max: f64,
        exit_prob: f64,
        rng: &mut SimRng,
    ) -> Self {
        assert!(
            v_min >= 0.0 && v_max >= v_min && v_max.is_finite(),
            "invalid speed range [{v_min}, {v_max}]"
        );
        assert!(
            (0.0..=1.0).contains(&exit_prob),
            "exit_prob must be a probability, got {exit_prob}"
        );
        let zb = grid.zone_bounds(home);
        let pos = Vec2::new(
            rng.gen_range_f64(zb.x0, zb.x1),
            rng.gen_range_f64(zb.y0, zb.y1),
        );
        let mut m = ZoneMobility {
            grid,
            home,
            pos,
            dir: Vec2::new(1.0, 0.0),
            speed: 0.0,
            v_min,
            v_max,
            exit_prob,
            leg_remaining: 0.0,
            span_margin_m: 0.0,
        };
        m.redraw_leg(rng);
        m
    }

    /// The node's home zone.
    #[must_use]
    pub fn home_zone(&self) -> ZoneId {
        self.home
    }

    /// The zone currently containing the node.
    #[must_use]
    pub fn current_zone(&self) -> ZoneId {
        self.grid.zone_of(self.pos)
    }

    fn redraw_leg(&mut self, rng: &mut SimRng) {
        self.dir = Vec2::from_angle(rng.gen_range_f64(0.0, std::f64::consts::TAU));
        self.speed = rng.gen_range_f64(self.v_min, self.v_max);
        self.leg_remaining = rng.gen_exp(Self::MEAN_LEG_SECS);
    }
}

impl MobilityModel for ZoneMobility {
    fn position(&self) -> Vec2 {
        self.pos
    }

    fn advance(&mut self, dt: f64, rng: &mut SimRng) {
        assert_dt(dt);
        // The tick path moves `pos` without maintaining the span margin;
        // force the next `advance_span` through its full path.
        self.span_margin_m = 0.0;
        self.leg_remaining -= dt;
        if self.leg_remaining <= 0.0 {
            self.redraw_leg(rng);
        }

        let tentative = self.pos + self.dir * (self.speed * dt);
        // Reflect off the outer area first: walls are always hard.
        let (tentative, dir) = self.grid.area().reflect(tentative, self.dir);
        self.dir = dir;

        let cur = self.grid.zone_of(self.pos);
        let nxt = self.grid.zone_of(tentative);
        if nxt == cur {
            self.pos = tentative;
            return;
        }
        // Reached a zone boundary: cross into the home zone with probability
        // 1, otherwise cross with `exit_prob` and bounce back with the
        // complement (paper Sec. 5).
        let crosses = nxt == self.home || rng.gen_bool(self.exit_prob);
        if crosses {
            self.pos = tentative;
        } else {
            let (p, d) = self.grid.zone_bounds(cur).reflect(tentative, self.dir);
            self.pos = p;
            self.dir = d;
        }
    }

    /// Event-stepped span advance: walks from leg end to leg end and from
    /// zone-boundary hit to zone-boundary hit, making one crossing decision
    /// per boundary actually reached. Cost ∝ events in the span (legs are
    /// exponential with mean `MEAN_LEG_SECS` s, boundaries are a
    /// zone width apart), not ∝ `dt / tick`.
    fn advance_span(&mut self, dt: f64, rng: &mut SimRng) {
        assert_dt(dt);
        /// Nudge across a boundary so `zone_of` sees the far side (m).
        const EPS_M: f64 = 1e-9;
        let area = self.grid.area();
        let mut budget = dt;
        // Hard cap against pathological geometry; events in any realistic
        // span number in the hundreds.
        for _ in 0..1_000_000 {
            if budget <= 0.0 {
                return;
            }
            if self.leg_remaining <= 0.0 {
                self.redraw_leg(rng);
            }
            let step = budget.min(self.leg_remaining);
            if self.speed <= 0.0 {
                self.leg_remaining -= step;
                budget -= step;
                continue;
            }
            let dist = self.speed * step;
            if dist < self.span_margin_m {
                // Too short to reach any zone edge: pure position update,
                // no zone lookup. The expression matches the in-zone slow
                // path below exactly, so trajectories stay bit-identical.
                self.pos += self.dir * dist;
                self.span_margin_m -= dist;
                self.leg_remaining -= step;
                budget -= step;
                continue;
            }
            let zb = self.grid.zone_bounds(self.grid.zone_of(self.pos));
            let vx = self.dir.x * self.speed;
            let vy = self.dir.y * self.speed;
            let tx = ray_exit(self.pos.x, vx, zb.x0, zb.x1);
            let ty = ray_exit(self.pos.y, vy, zb.y0, zb.y1);
            let hit = tx.min(ty);
            if hit >= step {
                // The whole step stays inside the current zone.
                self.pos += self.dir * (self.speed * step);
                self.span_margin_m = (self.pos.x - zb.x0)
                    .min(zb.x1 - self.pos.x)
                    .min(self.pos.y - zb.y0)
                    .min(zb.y1 - self.pos.y);
                self.leg_remaining -= step;
                budget -= step;
                continue;
            }
            self.span_margin_m = 0.0;
            // Advance to the boundary, then resolve each crossing axis:
            // area walls always reflect; zone boundaries cross into the
            // home zone with probability 1 and elsewhere with `exit_prob`.
            let used = hit.max(0.0);
            self.pos += self.dir * (self.speed * used);
            self.leg_remaining -= used;
            budget -= used;
            if tx <= hit {
                let (face, wall) = if vx > 0.0 {
                    (zb.x1, (zb.x1 - area.x1).abs() < EPS_M)
                } else {
                    (zb.x0, (zb.x0 - area.x0).abs() < EPS_M)
                };
                let probe = Vec2::new(face + vx.signum() * EPS_M, self.pos.y);
                let next = self.grid.zone_of(probe);
                if wall || !(next == self.home || rng.gen_bool(self.exit_prob)) {
                    // Bounce: land strictly inside the current zone so the
                    // next `zone_of` doesn't floor onto the far side.
                    self.pos.x = face - vx.signum() * EPS_M;
                    self.dir.x = -self.dir.x;
                } else {
                    self.pos.x = probe.x;
                }
            }
            if ty <= hit {
                let (face, wall) = if vy > 0.0 {
                    (zb.y1, (zb.y1 - area.y1).abs() < EPS_M)
                } else {
                    (zb.y0, (zb.y0 - area.y0).abs() < EPS_M)
                };
                let probe = Vec2::new(self.pos.x, face + vy.signum() * EPS_M);
                let next = self.grid.zone_of(probe);
                if wall || !(next == self.home || rng.gen_bool(self.exit_prob)) {
                    self.pos.y = face - vy.signum() * EPS_M;
                    self.dir.y = -self.dir.y;
                } else {
                    self.pos.y = probe.y;
                }
            }
        }
        let (p, _) = area.reflect(self.pos, self.dir);
        self.pos = p;
    }

    fn save_state(&self) -> Vec<f64> {
        vec![
            self.pos.x,
            self.pos.y,
            self.dir.x,
            self.dir.y,
            self.speed,
            self.leg_remaining,
            self.span_margin_m,
        ]
    }

    fn load_state(&mut self, state: &[f64]) {
        let [px, py, dx, dy, speed, leg, margin] = *state else {
            panic!("zone mobility expects 7 state values, got {}", state.len());
        };
        self.pos = Vec2::new(px, py);
        self.dir = Vec2::new(dx, dy);
        self.speed = speed;
        self.leg_remaining = leg;
        self.span_margin_m = margin;
    }

    fn tick_grant(&self, dt: f64) -> (Vec2, u32) {
        const GUARD_M: f64 = 1e-6;
        // One fewer than the whole ticks left on the leg: the countdown in
        // `advance` must stay strictly positive on every granted tick so
        // the redraw fires exactly where a pure per-tick run fires it.
        let k_leg = (self.leg_remaining / dt).floor() - 1.0;
        if k_leg < 1.0 {
            return (Vec2::ZERO, 0);
        }
        let disp = self.dir * (self.speed * dt);
        let zb = self.grid.zone_bounds(self.grid.zone_of(self.pos));
        let kx = coast_ticks(self.pos.x, disp.x, zb.x0, zb.x1, GUARD_M);
        let ky = coast_ticks(self.pos.y, disp.y, zb.y0, zb.y1, GUARD_M);
        // Strictly interior to the zone also means interior to the area
        // (zones tile it), so the wall reflection is the identity too.
        let k = k_leg.min(kx).min(ky).min(1e6);
        if k < 1.0 {
            (Vec2::ZERO, 0)
        } else {
            (disp, k as u32)
        }
    }

    fn tick_settle(&mut self, dt: f64, ticks: u32, pos: Vec2) {
        // Replay the per-tick countdown: k single subtractions, not one
        // k·dt subtraction, so the leg ends on the bit-identical tick.
        for _ in 0..ticks {
            self.leg_remaining -= dt;
        }
        debug_assert!(
            ticks == 0 || self.leg_remaining > 0.0,
            "coast lease outlived its leg"
        );
        self.pos = pos;
        self.span_margin_m = 0.0;
    }
}

/// Classic random-waypoint mobility over a rectangular area.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    area: Bounds,
    pos: Vec2,
    target: Vec2,
    speed: f64,
    v_min: f64,
    v_max: f64,
    pause_remaining: f64,
    max_pause: f64,
}

impl RandomWaypoint {
    /// Creates a walker at a uniformly random position.
    ///
    /// `max_pause` is the upper bound of the uniformly distributed pause at
    /// each waypoint (0 for no pauses).
    ///
    /// # Panics
    ///
    /// Panics if the speed range is invalid (`v_min` must be positive so a
    /// leg always finishes) or `max_pause` is negative.
    #[must_use]
    pub fn new(area: Bounds, v_min: f64, v_max: f64, max_pause: f64, rng: &mut SimRng) -> Self {
        assert!(
            v_min > 0.0 && v_max >= v_min && v_max.is_finite(),
            "invalid speed range [{v_min}, {v_max}]"
        );
        assert!(max_pause >= 0.0, "negative pause bound");
        let pos = Vec2::new(
            rng.gen_range_f64(area.x0, area.x1),
            rng.gen_range_f64(area.y0, area.y1),
        );
        let mut w = RandomWaypoint {
            area,
            pos,
            target: pos,
            speed: v_min,
            v_min,
            v_max,
            pause_remaining: 0.0,
            max_pause,
        };
        w.pick_waypoint(rng);
        w
    }

    fn pick_waypoint(&mut self, rng: &mut SimRng) {
        self.target = Vec2::new(
            rng.gen_range_f64(self.area.x0, self.area.x1),
            rng.gen_range_f64(self.area.y0, self.area.y1),
        );
        self.speed = rng.gen_range_f64(self.v_min, self.v_max);
    }
}

impl MobilityModel for RandomWaypoint {
    fn position(&self) -> Vec2 {
        self.pos
    }

    fn advance(&mut self, dt: f64, rng: &mut SimRng) {
        assert_dt(dt);
        let mut budget = dt;
        if self.pause_remaining > 0.0 {
            let used = self.pause_remaining.min(budget);
            self.pause_remaining -= used;
            budget -= used;
            if budget <= 0.0 {
                return;
            }
        }
        while budget > 0.0 {
            let to_target = self.target - self.pos;
            let dist = to_target.length();
            let reach = self.speed * budget;
            if reach < dist {
                self.pos += to_target.normalized() * reach;
                return;
            }
            // Arrive, pause, then head for a fresh waypoint.
            self.pos = self.target;
            budget -= if self.speed > 0.0 {
                dist / self.speed
            } else {
                budget
            };
            self.pick_waypoint(rng);
            if self.max_pause > 0.0 {
                self.pause_remaining = rng.gen_range_f64(0.0, self.max_pause);
                let used = self.pause_remaining.min(budget.max(0.0));
                self.pause_remaining -= used;
                budget -= used;
            }
        }
    }

    fn save_state(&self) -> Vec<f64> {
        vec![
            self.pos.x,
            self.pos.y,
            self.target.x,
            self.target.y,
            self.speed,
            self.pause_remaining,
        ]
    }

    fn load_state(&mut self, state: &[f64]) {
        let [px, py, tx, ty, speed, pause] = *state else {
            panic!(
                "random waypoint expects 6 state values, got {}",
                state.len()
            );
        };
        self.pos = Vec2::new(px, py);
        self.target = Vec2::new(tx, ty);
        self.speed = speed;
        self.pause_remaining = pause;
    }
}

/// Random-walk (random direction) mobility: straight legs with reflection
/// at the area boundary and a fresh heading each epoch.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    area: Bounds,
    pos: Vec2,
    dir: Vec2,
    speed: f64,
    v_min: f64,
    v_max: f64,
    epoch: f64,
    epoch_remaining: f64,
}

impl RandomWalk {
    /// Creates a walker at a uniformly random position with legs of
    /// `epoch` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the speed range or `epoch` is invalid.
    #[must_use]
    pub fn new(area: Bounds, v_min: f64, v_max: f64, epoch: f64, rng: &mut SimRng) -> Self {
        assert!(
            v_min >= 0.0 && v_max >= v_min && v_max.is_finite(),
            "invalid speed range [{v_min}, {v_max}]"
        );
        assert!(epoch > 0.0 && epoch.is_finite(), "invalid epoch {epoch}");
        let pos = Vec2::new(
            rng.gen_range_f64(area.x0, area.x1),
            rng.gen_range_f64(area.y0, area.y1),
        );
        let mut w = RandomWalk {
            area,
            pos,
            dir: Vec2::new(1.0, 0.0),
            speed: 0.0,
            v_min,
            v_max,
            epoch,
            epoch_remaining: 0.0,
        };
        w.redraw(rng);
        w
    }

    fn redraw(&mut self, rng: &mut SimRng) {
        self.dir = Vec2::from_angle(rng.gen_range_f64(0.0, std::f64::consts::TAU));
        self.speed = rng.gen_range_f64(self.v_min, self.v_max);
        self.epoch_remaining = self.epoch;
    }
}

impl MobilityModel for RandomWalk {
    fn position(&self) -> Vec2 {
        self.pos
    }

    fn advance(&mut self, dt: f64, rng: &mut SimRng) {
        assert_dt(dt);
        self.epoch_remaining -= dt;
        if self.epoch_remaining <= 0.0 {
            self.redraw(rng);
        }
        let tentative = self.pos + self.dir * (self.speed * dt);
        let (p, d) = self.area.reflect(tentative, self.dir);
        self.pos = p;
        self.dir = d;
    }

    /// Leg-stepped span advance: one straight move (with fold-out
    /// reflection) per epoch leg instead of one per tick.
    fn advance_span(&mut self, dt: f64, rng: &mut SimRng) {
        assert_dt(dt);
        let mut budget = dt;
        while budget > 0.0 {
            if self.epoch_remaining <= 0.0 {
                self.redraw(rng);
            }
            let step = budget.min(self.epoch_remaining);
            let tentative = self.pos + self.dir * (self.speed * step);
            let (p, d) = self.area.reflect(tentative, self.dir);
            self.pos = p;
            self.dir = d;
            self.epoch_remaining -= step;
            budget -= step;
        }
    }

    fn save_state(&self) -> Vec<f64> {
        vec![
            self.pos.x,
            self.pos.y,
            self.dir.x,
            self.dir.y,
            self.speed,
            self.epoch_remaining,
        ]
    }

    fn load_state(&mut self, state: &[f64]) {
        let [px, py, dx, dy, speed, remaining] = *state else {
            panic!("random walk expects 6 state values, got {}", state.len());
        };
        self.pos = Vec2::new(px, py);
        self.dir = Vec2::new(dx, dy);
        self.speed = speed;
        self.epoch_remaining = remaining;
    }

    fn tick_grant(&self, dt: f64) -> (Vec2, u32) {
        const GUARD_M: f64 = 1e-6;
        let k_epoch = (self.epoch_remaining / dt).floor() - 1.0;
        if k_epoch < 1.0 {
            return (Vec2::ZERO, 0);
        }
        let disp = self.dir * (self.speed * dt);
        let kx = coast_ticks(self.pos.x, disp.x, self.area.x0, self.area.x1, GUARD_M);
        let ky = coast_ticks(self.pos.y, disp.y, self.area.y0, self.area.y1, GUARD_M);
        let k = k_epoch.min(kx).min(ky).min(1e6);
        if k < 1.0 {
            (Vec2::ZERO, 0)
        } else {
            (disp, k as u32)
        }
    }

    fn tick_settle(&mut self, dt: f64, ticks: u32, pos: Vec2) {
        for _ in 0..ticks {
            self.epoch_remaining -= dt;
        }
        debug_assert!(
            ticks == 0 || self.epoch_remaining > 0.0,
            "coast lease outlived its epoch"
        );
        self.pos = pos;
    }
}

/// A node that never moves (sinks at strategic locations, anchors in tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stationary {
    pos: Vec2,
}

impl Stationary {
    /// Creates a fixed node at `pos`.
    #[must_use]
    pub const fn new(pos: Vec2) -> Self {
        Stationary { pos }
    }
}

impl MobilityModel for Stationary {
    fn position(&self) -> Vec2 {
        self.pos
    }

    fn advance(&mut self, _dt: f64, _rng: &mut SimRng) {}

    fn tick_grant(&self, _dt: f64) -> (Vec2, u32) {
        (Vec2::ZERO, u32::MAX)
    }

    fn tick_settle(&mut self, _dt: f64, _ticks: u32, _pos: Vec2) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ZoneGrid {
        ZoneGrid::new(Bounds::new(150.0, 150.0), 5, 5)
    }

    #[test]
    fn zone_mobility_starts_in_home_zone() {
        let mut rng = SimRng::seed_from(1);
        for zone in 0..25 {
            let m = ZoneMobility::new(grid(), ZoneId(zone), 0.0, 5.0, 0.2, &mut rng);
            assert_eq!(m.current_zone(), ZoneId(zone));
        }
    }

    #[test]
    fn zone_mobility_stays_in_area() {
        let mut rng = SimRng::seed_from(2);
        let g = grid();
        let mut m = ZoneMobility::new(g.clone(), ZoneId(0), 0.0, 5.0, 0.2, &mut rng);
        for _ in 0..20_000 {
            m.advance(0.5, &mut rng);
            assert!(
                g.area().contains(m.position()),
                "escaped at {}",
                m.position()
            );
        }
    }

    #[test]
    fn zero_exit_probability_pins_node_to_home_zone() {
        let mut rng = SimRng::seed_from(3);
        let mut m = ZoneMobility::new(grid(), ZoneId(12), 1.0, 5.0, 0.0, &mut rng);
        for _ in 0..5_000 {
            m.advance(0.5, &mut rng);
            assert_eq!(m.current_zone(), ZoneId(12));
        }
    }

    #[test]
    fn unit_exit_probability_lets_node_roam() {
        let mut rng = SimRng::seed_from(4);
        let mut m = ZoneMobility::new(grid(), ZoneId(12), 2.0, 5.0, 1.0, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            m.advance(0.5, &mut rng);
            seen.insert(m.current_zone());
        }
        assert!(seen.len() > 5, "only visited {} zones", seen.len());
    }

    #[test]
    fn home_bias_keeps_node_near_home() {
        // With a 20% exit probability the node should spend far more time
        // in its home zone than the uniform share (1/25 = 4%).
        let mut rng = SimRng::seed_from(5);
        let mut m = ZoneMobility::new(grid(), ZoneId(12), 0.0, 5.0, 0.2, &mut rng);
        let mut at_home = 0usize;
        let steps = 40_000;
        for _ in 0..steps {
            m.advance(0.5, &mut rng);
            if m.current_zone() == ZoneId(12) {
                at_home += 1;
            }
        }
        let frac = at_home as f64 / steps as f64;
        assert!(frac > 0.10, "home fraction only {frac:.3}");
    }

    #[test]
    fn waypoint_reaches_targets_and_stays_in_bounds() {
        let mut rng = SimRng::seed_from(6);
        let area = Bounds::new(100.0, 100.0);
        let mut m = RandomWaypoint::new(area, 1.0, 5.0, 2.0, &mut rng);
        let start = m.position();
        for _ in 0..10_000 {
            m.advance(0.5, &mut rng);
            assert!(area.contains(m.position()));
        }
        assert!(m.position().distance(start) > 0.0 || start == m.position());
    }

    #[test]
    fn waypoint_moves_on_average() {
        let mut rng = SimRng::seed_from(7);
        let area = Bounds::new(100.0, 100.0);
        let mut m = RandomWaypoint::new(area, 2.0, 5.0, 0.0, &mut rng);
        let mut moved = 0.0;
        let mut last = m.position();
        for _ in 0..1_000 {
            m.advance(1.0, &mut rng);
            moved += m.position().distance(last);
            last = m.position();
        }
        assert!(moved > 1_000.0, "moved only {moved:.1} m");
    }

    #[test]
    fn random_walk_stays_in_bounds() {
        let mut rng = SimRng::seed_from(8);
        let area = Bounds::new(50.0, 80.0);
        let mut m = RandomWalk::new(area, 0.0, 10.0, 10.0, &mut rng);
        for _ in 0..20_000 {
            m.advance(0.5, &mut rng);
            assert!(area.contains(m.position()));
        }
    }

    #[test]
    fn stationary_never_moves() {
        let mut rng = SimRng::seed_from(9);
        let p = Vec2::new(7.0, 7.0);
        let mut m = Stationary::new(p);
        for _ in 0..100 {
            m.advance(10.0, &mut rng);
        }
        assert_eq!(m.position(), p);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn non_positive_dt_panics() {
        let mut rng = SimRng::seed_from(10);
        let mut m = RandomWalk::new(Bounds::new(10.0, 10.0), 0.0, 1.0, 5.0, &mut rng);
        m.advance(0.0, &mut rng);
    }

    #[test]
    fn zone_span_advance_stays_in_area_and_keeps_home_bias() {
        let mut rng = SimRng::seed_from(31);
        let g = grid();
        let mut m = ZoneMobility::new(g.clone(), ZoneId(12), 0.0, 5.0, 0.2, &mut rng);
        let mut at_home = 0usize;
        let spans = 4_000;
        for k in 0..spans {
            // Mixed span lengths, like wake-time catch-ups.
            let dt = match k % 4 {
                0 => 0.5,
                1 => 3.0,
                2 => 17.0,
                _ => 61.0,
            };
            m.advance_span(dt, &mut rng);
            assert!(
                g.area().contains(m.position()),
                "escaped at {}",
                m.position()
            );
            if m.current_zone() == ZoneId(12) {
                at_home += 1;
            }
        }
        // Same qualitative bias as the ticked model: far above the 4%
        // uniform share.
        let frac = at_home as f64 / spans as f64;
        assert!(frac > 0.10, "home fraction only {frac:.3}");
    }

    #[test]
    fn zone_span_advance_pins_node_with_zero_exit_probability() {
        let mut rng = SimRng::seed_from(32);
        let mut m = ZoneMobility::new(grid(), ZoneId(7), 1.0, 5.0, 0.0, &mut rng);
        for _ in 0..2_000 {
            m.advance_span(9.0, &mut rng);
            assert_eq!(m.current_zone(), ZoneId(7));
        }
    }

    #[test]
    fn zone_span_advance_is_deterministic_per_stream() {
        let run = |seed: u64| {
            let mut rng = SimRng::seed_from(seed);
            let mut m = ZoneMobility::new(grid(), ZoneId(3), 0.0, 5.0, 0.2, &mut rng);
            for _ in 0..200 {
                m.advance_span(13.0, &mut rng);
            }
            m.position()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn walk_span_advance_stays_in_bounds() {
        let mut rng = SimRng::seed_from(33);
        let area = Bounds::new(50.0, 80.0);
        let mut m = RandomWalk::new(area, 0.0, 10.0, 10.0, &mut rng);
        for _ in 0..3_000 {
            m.advance_span(37.0, &mut rng);
            assert!(area.contains(m.position()));
        }
    }

    #[test]
    fn span_advance_defaults_forward_to_advance() {
        let mut rng = SimRng::seed_from(34);
        let area = Bounds::new(100.0, 100.0);
        let mut a = RandomWaypoint::new(area, 1.0, 5.0, 2.0, &mut rng);
        let mut b = a.clone();
        let mut rng_a = SimRng::seed_from(55);
        let mut rng_b = SimRng::seed_from(55);
        a.advance(40.0, &mut rng_a);
        b.advance_span(40.0, &mut rng_b);
        assert_eq!(a.position(), b.position(), "waypoint span == one advance");
        let mut s = Stationary::new(Vec2::new(3.0, 4.0));
        s.advance_span(1_000.0, &mut rng);
        assert_eq!(s.position(), Vec2::new(3.0, 4.0));
    }

    #[test]
    fn save_load_state_resumes_trajectories_bit_exactly() {
        // Drive a model, snapshot, restore into a fresh twin built from the
        // same construction params (its construction draws differ — load
        // overwrites them), and require identical onward trajectories when
        // both consume the same RNG stream.
        let mut rng = SimRng::seed_from(77);
        let mut zone = ZoneMobility::new(grid(), ZoneId(6), 0.0, 5.0, 0.2, &mut rng);
        for _ in 0..500 {
            zone.advance(0.5, &mut rng);
        }
        let mut zone2 = ZoneMobility::new(grid(), ZoneId(6), 0.0, 5.0, 0.2, &mut rng);
        zone2.load_state(&zone.save_state());
        let mut ra = SimRng::seed_from(5);
        let mut rb = SimRng::seed_from(5);
        for _ in 0..500 {
            zone.advance(0.5, &mut ra);
            zone2.advance(0.5, &mut rb);
            assert_eq!(zone.position(), zone2.position());
        }

        let area = Bounds::new(100.0, 100.0);
        let mut wp = RandomWaypoint::new(area, 1.0, 5.0, 2.0, &mut rng);
        wp.advance(33.0, &mut rng);
        let mut wp2 = RandomWaypoint::new(area, 1.0, 5.0, 2.0, &mut rng);
        wp2.load_state(&wp.save_state());
        let mut ra = SimRng::seed_from(6);
        let mut rb = SimRng::seed_from(6);
        for _ in 0..200 {
            wp.advance(1.0, &mut ra);
            wp2.advance(1.0, &mut rb);
            assert_eq!(wp.position(), wp2.position());
        }

        let mut walk = RandomWalk::new(area, 0.0, 10.0, 10.0, &mut rng);
        walk.advance_span(91.0, &mut rng);
        let mut walk2 = RandomWalk::new(area, 0.0, 10.0, 10.0, &mut rng);
        walk2.load_state(&walk.save_state());
        let mut ra = SimRng::seed_from(7);
        let mut rb = SimRng::seed_from(7);
        for _ in 0..200 {
            walk.advance(0.5, &mut ra);
            walk2.advance(0.5, &mut rb);
            assert_eq!(walk.position(), walk2.position());
        }

        let mut fixed = Stationary::new(Vec2::new(1.0, 2.0));
        assert!(fixed.save_state().is_empty());
        fixed.load_state(&[]);
    }

    #[test]
    #[should_panic(expected = "7 state values")]
    fn zone_load_state_rejects_wrong_arity() {
        let mut rng = SimRng::seed_from(1);
        let mut m = ZoneMobility::new(grid(), ZoneId(0), 0.0, 5.0, 0.2, &mut rng);
        m.load_state(&[1.0, 2.0]);
    }

    /// Drives `leased` through `ticks` ticks of `dt` using the coast-lease
    /// protocol (grant → accumulate externally → settle) while `pure`
    /// advances every tick, and requires bit-identical positions and RNG
    /// consumption throughout.
    fn assert_lease_matches_pure(
        leased: &mut dyn MobilityModel,
        pure: &mut dyn MobilityModel,
        dt: f64,
        ticks: usize,
        seed: u64,
    ) {
        let mut rng_l = SimRng::seed_from(seed);
        let mut rng_p = SimRng::seed_from(seed);
        let mut pos = leased.position();
        let mut disp = Vec2::ZERO;
        let mut left = 0u32;
        let mut pending = 0u32;
        for tick in 0..ticks {
            if left > 0 {
                pos += disp;
                left -= 1;
                pending += 1;
            } else {
                leased.tick_settle(dt, pending, pos);
                pending = 0;
                leased.advance(dt, &mut rng_l);
                pos = leased.position();
                (disp, left) = leased.tick_grant(dt);
            }
            pure.advance(dt, &mut rng_p);
            let want = pure.position();
            assert!(
                pos.x.to_bits() == want.x.to_bits() && pos.y.to_bits() == want.y.to_bits(),
                "tick {tick}: leased {pos:?} != pure {want:?}"
            );
        }
    }

    #[test]
    fn zone_coast_lease_is_bit_identical_to_per_tick_advance() {
        for seed in [3u64, 17, 52, 99] {
            let mut rng = SimRng::seed_from(seed);
            let mut a = ZoneMobility::new(grid(), ZoneId(12), 0.0, 5.0, 0.2, &mut rng);
            let mut b = a.clone();
            assert_lease_matches_pure(&mut a, &mut b, 0.025, 40_000, seed ^ 0xA5);
        }
    }

    #[test]
    fn walk_coast_lease_is_bit_identical_to_per_tick_advance() {
        for seed in [5u64, 21, 64] {
            let mut rng = SimRng::seed_from(seed);
            let area = Bounds::new(80.0, 60.0);
            let mut a = RandomWalk::new(area, 0.0, 8.0, 12.0, &mut rng);
            let mut b = a.clone();
            assert_lease_matches_pure(&mut a, &mut b, 0.025, 40_000, seed ^ 0x5A);
        }
    }

    #[test]
    fn stationary_grants_unbounded_coast() {
        let m = Stationary::new(Vec2::new(3.0, 4.0));
        assert_eq!(m.tick_grant(0.5), (Vec2::ZERO, u32::MAX));
    }

    #[test]
    #[should_panic(expected = "was settled")]
    fn default_settle_rejects_phantom_ticks() {
        let mut rng = SimRng::seed_from(1);
        let mut m = RandomWaypoint::new(Bounds::new(10.0, 10.0), 1.0, 2.0, 0.0, &mut rng);
        m.tick_settle(0.5, 3, Vec2::ZERO);
    }

    #[test]
    fn models_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut rng = SimRng::seed_from(seed);
            let mut m = ZoneMobility::new(grid(), ZoneId(3), 0.0, 5.0, 0.2, &mut rng);
            for _ in 0..500 {
                m.advance(0.5, &mut rng);
            }
            m.position()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
